// Benchmark harness: times factor / refactor (persistent scatter map vs the
// seed binary-search scatter) / triangular solve (P2P vs barrier CSR-LS —
// the paper's §VI apples-to-apples comparison) / SpMV / AMG-PCG vs
// ILU-PCG across the synthetic suite and a sweep of thread counts, and
// emits a BENCH_*.json so the perf trajectory of the repo is measurable PR
// over PR. Schedule statistics (levels, dependency counts before/after
// sparsification, items per thread) and the AMG aggregate-size histogram
// ride along in the JSON.
//
// The sweep pins retarget_oversubscribed = false: each thread-count row must
// measure the PLANNED team, not whatever the autotune clamp would re-plan it
// to on a smaller machine (otherwise every t > cores row measures the same
// retargeted schedule).
//
//   javelin_bench [--scale S] [--threads 1,2,4] [--repeats N] [--fill K]
//                 [--tier small|large] [--streams 1,4,16,64]
//                 [--matrices name1,name2] [--matrix file.mtx] [--out PATH]
//                 [--trace trace.json] [--verify]
//
// --verify runs the static schedule verifier (verify/) on every factor's
// forward and backward schedule at every thread count and emits its
// happens-before coverage accounting into the JSON (schema v5): how many
// cross-thread dependencies are enforced by a DIRECT spin-wait vs covered
// TRANSITIVELY through waits the sparsifier kept — the paper's pruning,
// quantified. Any verifier diagnostic fails the run (exit 1), same as a
// parity failure.
//
// --repeats N (alias: --reps) runs each timed kernel N measured times after
// one warmup-discard run and reports BOTH the minimum and the median — the
// min is the scalability number, the min/median gap is the noise floor of
// the measurement. --trace records one instrumented pass per matrix (at the
// last thread count) into a Chrome trace_event JSON: per-thread per-level
// sweep spans, spin-stall and barrier events, Krylov iteration spans
// (chrome://tracing or https://ui.perfetto.dev).
//
// --matrices also accepts laplacian3d_<s> / laplacian2d_<s> / aniso3d_<s> /
// jump3d_<s> (s×s×s or s×s grids at full scale); --matrix (repeatable)
// benches real SuiteSparse .mtx files alongside the synthetic analogs.
//
// --tier large switches the default matrix list to the production-scale set
// (the synthetic suite plus 128³ ≈ 2.1M-row 3-D problems). Matrices above
// the trim threshold skip the Krylov/AMG races (hours at this scale on one
// node) but keep the latency table, the schedule statistics and the batched
// many-RHS throughput sweep: solves/sec of solve_many at k concurrent
// right-hand sides per thread count, each point bitwise-checked against k
// independent scalar applies.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "javelin/amg/preconditioner.hpp"
#include "javelin/gen/generators.hpp"
#include "javelin/ilu/batch.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/obs/exec_obs.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/solver/robust.hpp"
#include "javelin/sparse/io.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/timer.hpp"
#include "javelin/tune/tune.hpp"
#include "javelin/verify/verify.hpp"

using namespace javelin;

namespace {

/// Matrices at least this large skip the Krylov/AMG races (the latency
/// table, schedule statistics and the batched throughput sweep still run).
constexpr index_t kTrimRows = 500000;

struct BenchConfig {
  double scale = 0.02;
  std::vector<int> threads = {1, 2, 4, 8};
  int reps = 3;
  int fill = 0;
  std::string tier = "small";
  /// Concurrent right-hand-side counts of the throughput sweep.
  std::vector<index_t> streams = {1, 4, 16, 64};
  std::vector<std::string> matrices;      // empty = tier default list
  std::vector<std::string> matrix_files;  // Matrix-Market paths (--matrix)
  std::string out = "BENCH_javelin.json";
  std::string trace;  // Chrome trace output path; empty = tracing off
  /// Run the static schedule verifier on every factor's fwd/bwd schedule and
  /// emit its coverage statistics (direct vs transitive — the sparsification
  /// quantified) into the JSON. A verification failure fails the run.
  bool verify = false;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

BenchConfig parse_args(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      cfg.scale = std::atof(next().c_str());
    } else if (arg == "--threads") {
      cfg.threads.clear();
      for (const std::string& t : split_csv(next())) {
        cfg.threads.push_back(std::atoi(t.c_str()));
      }
    } else if (arg == "--reps" || arg == "--repeats") {
      cfg.reps = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--fill") {
      cfg.fill = std::atoi(next().c_str());
    } else if (arg == "--tier") {
      cfg.tier = next();
      if (cfg.tier != "small" && cfg.tier != "large") {
        std::fprintf(stderr, "--tier must be small or large\n");
        std::exit(2);
      }
    } else if (arg == "--streams") {
      cfg.streams.clear();
      for (const std::string& s : split_csv(next())) {
        cfg.streams.push_back(static_cast<index_t>(std::atoi(s.c_str())));
      }
    } else if (arg == "--matrices") {
      cfg.matrices = split_csv(next());
    } else if (arg == "--matrix") {
      cfg.matrix_files.push_back(next());
    } else if (arg == "--out") {
      cfg.out = next();
    } else if (arg == "--trace") {
      cfg.trace = next();
    } else if (arg == "--verify") {
      cfg.verify = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return cfg;
}

/// Schedule-shape statistics of one direction at one thread count (both
/// backends share the structure; P2P synchronizes on `waits` spin-waits per
/// sweep, barrier CSR-LS on `levels` barriers).
struct SchedStats {
  index_t levels = 0;
  index_t deps_total = 0;  // cross-thread dependencies before pruning
  index_t waits = 0;       // spin-waits kept after sparsification
  index_t items = 0;
  index_t max_items_per_thread = 0;
  // Rows-per-level shape — the critical-path statistic of the level DAG:
  // `levels` is the critical-path LENGTH (barriers per CSR-LS sweep), these
  // are how much parallel work each of its steps carries.
  index_t rows_per_level_min = 0;
  index_t rows_per_level_med = 0;
  index_t rows_per_level_max = 0;
  double rows_per_level_mean = 0;
  // Fraction of rows living in levels narrower than the hybrid tuner's
  // small-level threshold (max(16, 4 × team)) — the share of the sweep the
  // per-level regime dispatch would pull off the P2P protocol.
  double small_level_row_frac = 0;
  index_t small_level_rows = 0;  // the threshold the fraction used
  std::vector<std::uint64_t> rows_per_level_hist;  // log2 buckets, trimmed
};

SchedStats sched_stats(const ExecSchedule& s) {
  SchedStats st;
  st.levels = s.num_levels;
  st.deps_total = s.deps_total;
  st.waits = s.deps_kept;
  st.items = s.num_items();
  st.max_items_per_thread = s.max_items_per_thread();
  st.rows_per_level_mean = s.mean_rows_per_level();
  st.small_level_rows =
      std::max<index_t>(16, static_cast<index_t>(4 * std::max(1, s.threads)));
  st.small_level_row_frac = s.small_level_row_frac(st.small_level_rows);
  if (s.num_levels > 0 &&
      s.level_ptr.size() > static_cast<std::size_t>(s.num_levels)) {
    std::vector<index_t> rows(static_cast<std::size_t>(s.num_levels));
    obs::FixedHistogram h;
    for (index_t l = 0; l < s.num_levels; ++l) {
      const index_t r = s.level_ptr[static_cast<std::size_t>(l) + 1] -
                        s.level_ptr[static_cast<std::size_t>(l)];
      rows[static_cast<std::size_t>(l)] = r;
      h.record(static_cast<std::uint64_t>(r));
    }
    std::sort(rows.begin(), rows.end());
    st.rows_per_level_min = rows.front();
    st.rows_per_level_med = rows[rows.size() / 2];
    st.rows_per_level_max = rows.back();
    st.rows_per_level_hist.resize(static_cast<std::size_t>(h.used_buckets()));
    for (std::size_t b = 0; b < st.rows_per_level_hist.size(); ++b) {
      st.rows_per_level_hist[b] = h.count(static_cast<int>(b));
    }
  }
  return st;
}

/// Verifier result of one schedule at one thread count (--verify only).
/// The direct/transitive split is the payoff statistic: transitive coverage
/// is exactly the synchronization the paper's sparsification deleted without
/// losing safety.
struct VerifyBlock {
  bool present = false;  ///< --verify ran on this schedule
  bool ok = false;
  verify::VerifyStats stats;
};

struct ThreadTimings {
  int threads = 0;
  double factor_s = 0;
  double refactor_s = 0;           // persistent scatter map path
  double scatter_map_s = 0;        // scatter alone, map path
  double scatter_searched_s = 0;   // scatter alone, seed path
  double solve_s = 0;              // one ilu_apply, P2P backend
  double solve_ls_s = 0;           // one ilu_apply, barrier CSR-LS backend
  double spmv_s = 0;               // one partitioned spmv
  // Medians of the same measured repetitions (min above is the scalability
  // number; median - min is the run-to-run noise the min filtered out).
  double factor_med_s = 0;
  double refactor_med_s = 0;
  double solve_med_s = 0;
  double solve_ls_med_s = 0;
  double spmv_med_s = 0;
  // Full ILU-PCG race per backend (symmetric entries; -1 = not run):
  double ilu_pcg_ls_s = -1;
  SchedStats fwd, bwd;             // schedule shape at this thread count
  VerifyBlock verify_fwd, verify_bwd;  // --verify results (absent otherwise)
  // Fused vs unfused Krylov inner loop: wall time per iteration of the same
  // restructured driver consuming ilu_apply_spmv (fused) vs apply-then-spmv
  // as two kernels (unfused). -1 = not run (pcg_* on symmetric entries only).
  double pcg_fused_iter_s = -1;
  double pcg_unfused_iter_s = -1;
  double gmres_fused_iter_s = -1;
  double gmres_unfused_iter_s = -1;
  // AMG vs ILU comparison (symmetric-pattern entries only; -1 = not run):
  double amg_setup_s = -1;         // hierarchy construction
  double amg_cycle_s = -1;         // one V-cycle apply
  double amg_pcg_s = -1;           // full AMG-PCG solve to 1e-8
  double ilu_pcg_s = -1;           // full ILU-PCG solve to 1e-8
};

/// One point of the batched-serving throughput sweep: solve_many over k
/// concurrent right-hand sides, timed as one serving batch.
struct StreamPoint {
  index_t k = 0;
  double batch_s = 0;        ///< wall time of one solve_many(k) batch
  double solves_per_s = 0;   ///< k / batch_s
  bool batched_parity = true;  ///< bitwise equal to k independent applies
};

/// Throughput rows run under the SERVING configuration (retarget on): a
/// planned team that oversubscribes the machine re-plans to the core count,
/// which is what a deployed many-RHS server would do.
struct ThroughputRow {
  int threads = 0;
  double solve_1_s = 0;  ///< single-RHS scalar apply in the same config
  std::vector<StreamPoint> points;
};

/// Stall telemetry of one instrumented sweep region (schema-v4
/// `stall_profile`): where a sweep's wall time went — computing rows vs
/// spin-stalled on producers (P2P) vs crossing barriers (CSR-LS).
struct RegionProfile {
  bool present = false;
  std::uint64_t sweeps = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t critical_path_ns = 0;
  double occupancy = 0;
  double sync_wait_frac = 0;
  obs::WaitCounters total;
  /// Per-level wait / (busy + wait). Averaged into at most 256 bins for
  /// deep level structures (binned = true) to bound the JSON size.
  std::vector<double> level_wait_frac;
  bool binned = false;
};

constexpr std::size_t kMaxProfileLevels = 256;

RegionProfile region_profile(const obs::ExecStats& st) {
  RegionProfile p;
  if (st.sweeps == 0) return p;
  p.present = true;
  p.sweeps = st.sweeps;
  p.wall_ns = st.wall_ns;
  p.critical_path_ns = st.critical_path_ns;
  p.occupancy = st.occupancy();
  p.sync_wait_frac = st.sync_wait_frac();
  p.total = st.total;
  std::vector<double> lw = st.level_wait_frac();
  if (lw.size() > kMaxProfileLevels) {
    p.binned = true;
    std::vector<double> binned(kMaxProfileLevels, 0.0);
    std::vector<int> counts(kMaxProfileLevels, 0);
    for (std::size_t l = 0; l < lw.size(); ++l) {
      const std::size_t b = l * kMaxProfileLevels / lw.size();
      binned[b] += lw[l];
      counts[b] += 1;
    }
    for (std::size_t b = 0; b < binned.size(); ++b) {
      if (counts[b] > 0) binned[b] /= counts[b];
    }
    p.level_wait_frac = std::move(binned);
  } else {
    p.level_wait_frac = std::move(lw);
  }
  return p;
}

/// Per-matrix stall telemetry: the forward and backward sweep regions of one
/// instrumented ilu_apply pass per backend. threads == 0 means not collected
/// (robust-only rows).
struct StallProfile {
  int threads = 0;
  int reps = 0;
  RegionProfile p2p_fwd, p2p_bwd;
  RegionProfile ls_fwd, ls_bwd;
};

/// Factor-time autotuner decision on one matrix (schema-v6 `autotune`
/// block + the console `auto` row): the wall-clock candidate grid, the
/// pinned winner re-measured on the real solve path, and the bitwise parity
/// of the tuned sweep against the serial reference.
struct AutotuneBlock {
  bool present = false;
  /// --verify runs: candidates ranked by the deterministic cost model (the
  /// grid's `seconds` are dimensionless scores and ratio_vs_best_fixed is
  /// withheld), so the decision replays bit-for-bit.
  bool deterministic = false;
  int threads = 0;  ///< widest sweep team — the grid's cap and OMP setting
  std::string chosen;
  int chosen_threads = 0;
  bool chosen_hybrid = false;
  index_t chosen_chunk_rows = 0;
  bool hybrid_applied = false;
  double auto_solve_s = 0;   ///< pinned winner, re-measured (min of reps)
  double serial_s = 0;       ///< the grid's serial candidate
  std::string best_fixed;    ///< cheapest non-hybrid candidate (incl. serial)
  double best_fixed_s = 0;
  double ratio_vs_serial = -1;      ///< auto_solve_s / serial_s
  double ratio_vs_best_fixed = -1;  ///< auto_solve_s / best_fixed_s
  bool parity = true;  ///< tuned ilu_apply bitwise == serial reference
  struct Candidate {
    std::string name;
    double seconds = 0;
  };
  std::vector<Candidate> candidates;  ///< grid in evaluation order
};

struct MatrixReport {
  std::string name;
  index_t n = 0;
  index_t nnz = 0;
  index_t levels = 0;
  index_t rows_moved = 0;
  std::string method;
  int pcg_iterations = -1;   // ILU-Krylov on the 1st thread count (P2P)
  int pcg_iterations_ls = -1;  // same solve under the barrier backend
  int amg_iterations = -1;   // AMG-PCG (iteration counts are thread-invariant)
  int amg_levels = 0;
  double amg_operator_complexity = 0;
  /// Finest-level aggregate-size histogram: entry k = number of aggregates
  /// with k+1 fine rows (aggregation-quality ROADMAP metric).
  std::vector<index_t> amg_aggregate_hist;
  /// Fused and unfused solver trajectories bitwise-identical, at every
  /// thread count and against the first thread count's solution.
  bool fused_parity = true;
  /// P2P and barrier backends bitwise-identical (ilu_apply output and full
  /// ILU-Krylov solution) at every thread count.
  bool backend_parity = true;
  /// Every throughput point bitwise equal to k independent scalar applies
  /// (AND of the per-point flags, for quick regression grepping).
  bool batched_parity = true;
  /// Static schedule verification (--verify): -1 = not run, 1 = every
  /// fwd/bwd schedule at every thread count verified clean, 0 = at least one
  /// diagnostic. Part of the exit gate alongside the parity flags.
  int schedule_verified = -1;
  /// Krylov/AMG races skipped (matrix at or above the trim threshold).
  bool trimmed = false;
  /// Process peak RSS after this matrix finished, from getrusage ru_maxrss.
  /// A process high-water mark: monotone over the run, so the first matrix
  /// that spikes it owns the spike.
  double peak_rss_mb = 0;
  // Breakdown/retry statistics of one solve_robust run against a consistent
  // rhs: how many ladder rungs ran, the winning shift and preconditioner
  // level, and the failure cause when nothing converged. -1 attempts = not
  // run (trimmed matrices).
  int robust_attempts = -1;
  double robust_shift = 0;
  std::string robust_level = "ilu";
  std::string robust_cause = "none";
  bool robust_converged = false;
  /// Degenerate (group D) fixture: only the robust pipeline ran — the
  /// timing sweep requires a factorable matrix, and the parity gate skips
  /// these rows.
  bool robust_only = false;
  std::vector<ThreadTimings> timings;
  std::vector<ThroughputRow> throughput;
  StallProfile stall;  ///< instrumented pass at the last thread count
  AutotuneBlock autotune;  ///< tuner decision at the widest thread count
};

double peak_rss_mb_now() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::vector<value_t> random_vector(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

/// One solve_robust run against a consistent rhs (b = A·x_true): records the
/// breakdown/retry trail into the report. Healthy matrices cost one Krylov
/// solve (attempts == 1, shift == 0); degenerate ones walk the ladder.
SolveReport run_robust(MatrixReport& rep, const CsrMatrix& a) {
  const auto xt = random_vector(a.rows(), 0x5EED);
  std::vector<value_t> b(xt.size());
  spmv(a, xt, b);
  std::vector<value_t> x(xt.size(), 0.0);
  RobustOptions ropts;
  ropts.solver.max_iterations = 2000;
  SolveReport sr = solve_robust(a, b, x, ropts);
  rep.robust_attempts = static_cast<int>(sr.attempts.size());
  rep.robust_shift = sr.shift_used;
  rep.robust_level = to_string(sr.level_used);
  rep.robust_cause = to_string(sr.cause);
  rep.robust_converged = sr.converged;
  return sr;
}

/// Instrumented pass at one thread count: ilu_apply under each backend with
/// an ExecObs attached (fresh factor copies — the timing sweep above must
/// never run instrumented instantiations). Doubles as the traced pass when
/// --trace is set: the session is enabled around it, so the sweep spans,
/// stall/barrier events and — via a short instrumented Krylov run — the
/// per-iteration spans all land in the trace buffers.
void collect_stall_profile(MatrixReport& rep, const Factorization& f,
                           const CsrMatrix& a, bool sym, int t,
                           const BenchConfig& cfg) {
  const bool tracing = !cfg.trace.empty();
  if (tracing) obs::TraceSession::instance().enable();

  rep.stall.threads = t;
  rep.stall.reps = cfg.reps;
  const auto r = random_vector(a.rows(), 0x0B5);
  std::vector<value_t> z(r.size());
  for (const ExecBackend be : {ExecBackend::kP2P, ExecBackend::kBarrier}) {
    Factorization fb = f;
    set_exec_backend(fb, be);
    obs::ExecObs eo;
    fb.opts.exec_obs = &eo;
    SolveWorkspace ws;
    ilu_apply(fb, r, z, ws);  // warm (workspace + retarget caches)
    eo.reset();
    for (int i = 0; i < cfg.reps; ++i) ilu_apply(fb, r, z, ws);
    RegionProfile fwd = region_profile(eo.stats(obs::Region::kForward));
    RegionProfile bwd = region_profile(eo.stats(obs::Region::kBackward));
    if (be == ExecBackend::kP2P) {
      rep.stall.p2p_fwd = std::move(fwd);
      rep.stall.p2p_bwd = std::move(bwd);
    } else {
      rep.stall.ls_fwd = std::move(fwd);
      rep.stall.ls_bwd = std::move(bwd);
    }
  }

  if (tracing) {
    // Krylov iteration spans: a short instrumented solve (tolerance 0 runs
    // the full budget, so the trace gets a fixed number of iteration spans
    // each wrapping the fwd/bwd sweep spans of its preconditioner apply).
    Factorization fk = f;
    obs::ExecObs eo;
    fk.opts.exec_obs = &eo;
    SolverOptions so;
    so.max_iterations = 5;
    so.tolerance = 0;
    IluPreconditioner m(std::move(fk));
    std::vector<value_t> x(r.size(), 0);
    if (sym) {
      pcg(a, r, x, m.fn(), so);
    } else {
      gmres(a, r, x, m.fn(), so);
    }
    obs::TraceSession::instance().disable();
  }
}

/// Factor-time autotuning at the widest sweep team: fresh factor, wall-clock
/// grid over backend × team × blocking granule × hybrid regime mix (the
/// serial candidate is the grid's anchor), winner pinned into the factor and
/// re-measured on the real solve path. The tuned sweep is bitwise-checked
/// against the serial reference — `autotune_parity` joins the exit gate, so
/// a policy that changed results fails the run like any other parity break.
void run_autotune(MatrixReport& rep, const CsrMatrix& a,
                  const BenchConfig& cfg) {
  const int t_max =
      *std::max_element(cfg.threads.begin(), cfg.threads.end());
  ThreadCountGuard guard(t_max);
  IluOptions opts;
  opts.num_threads = t_max;
  opts.fill_level = cfg.fill;
  opts.retarget_oversubscribed = false;
  // --verify switches the tuner to deterministic-policy mode: the injected
  // cost model ranks candidates from the schedule shape alone (no clocks),
  // so the decision — and therefore the whole JSON — is reproducible, and
  // every candidate's schedules pass the static verifier as they are tried.
  opts.verify_schedules = cfg.verify;
  Factorization f = ilu_factor(a, opts);

  tune::TuneOptions topt;
  topt.reps = cfg.reps;
  topt.max_threads = t_max;
  topt.chunk_candidates = {16, 64};
  if (cfg.verify) topt.cost_model = tune::deterministic_cost_model();
  const tune::TuneReport tr = tune::autotune(f, topt);

  AutotuneBlock& ab = rep.autotune;
  ab.present = true;
  ab.deterministic = cfg.verify;
  ab.threads = t_max;
  ab.chosen = tr.chosen.name();
  ab.chosen_threads = tr.chosen.threads;
  ab.chosen_hybrid = tr.chosen.hybrid;
  ab.chosen_chunk_rows = tr.chosen.chunk_rows;
  ab.hybrid_applied = tr.hybrid_applied;
  ab.serial_s = tr.serial_seconds;
  for (const tune::TuneMeasurement& m : tr.measured) {
    ab.candidates.push_back({m.cand.name(), m.seconds});
    if (!m.cand.hybrid &&
        (ab.best_fixed.empty() || m.seconds < ab.best_fixed_s)) {
      ab.best_fixed = m.cand.name();
      ab.best_fixed_s = m.seconds;
    }
  }

  const auto r = random_vector(a.rows(), 0xA07);
  std::vector<value_t> z(r.size()), z_ref(r.size());
  SolveWorkspace ws;
  ilu_apply(f, r, z, ws);  // warm the tuned policy's caches
  ab.auto_solve_s =
      min_time_seconds([&] { ilu_apply(f, r, z, ws); }, cfg.reps, 1);
  ilu_apply_serial(f, r, z_ref, ws);
  ab.parity = z == z_ref;
  // In deterministic-policy mode the grid numbers are model scores, not
  // seconds — re-measure the serial wall time for a real ratio, and leave
  // the best-fixed ratio to wall-clock runs (the CI autotune gate).
  if (ab.deterministic) {
    ab.serial_s = min_time_seconds(
        [&] { ilu_apply_serial(f, r, z_ref, ws); }, cfg.reps, 1);
  }
  ab.ratio_vs_serial = ab.serial_s > 0 ? ab.auto_solve_s / ab.serial_s : -1;
  if (!ab.deterministic) {
    ab.ratio_vs_best_fixed =
        ab.best_fixed_s > 0 ? ab.auto_solve_s / ab.best_fixed_s : -1;
  }

  std::printf(
      "  %-18s auto  chose %s  solve %.5fs  serial %.5fs (%.2fx)  best fixed "
      "%s %s%s\n",
      rep.name.c_str(), ab.chosen.c_str(), ab.auto_solve_s, ab.serial_s,
      ab.ratio_vs_serial, ab.best_fixed.c_str(),
      ab.hybrid_applied ? " [hybrid]" : "",
      ab.parity ? "" : " PARITY-FAIL");
}

/// Degenerate fixtures run ONLY the robust pipeline: the timing sweep
/// factors with the throwing entry point, which these matrices defeat by
/// construction.
MatrixReport bench_degenerate(const gen::SuiteEntry& e) {
  MatrixReport rep;
  rep.name = e.name;
  rep.n = e.matrix.rows();
  rep.nnz = e.matrix.nnz();
  rep.robust_only = true;
  const SolveReport sr = run_robust(rep, e.matrix);
  rep.peak_rss_mb = peak_rss_mb_now();
  // The full per-attempt ladder trail: these fixtures exist to exercise the
  // breakdown path, so what each rung did IS the result worth reading.
  std::printf("  %-18s robust: %s\n", e.name.c_str(), sr.summary().c_str());
  return rep;
}

MatrixReport bench_matrix(const gen::SuiteEntry& e, const BenchConfig& cfg) {
  MatrixReport rep;
  rep.name = e.name;
  const CsrMatrix& a = e.matrix;
  rep.n = a.rows();
  rep.nnz = a.nnz();
  rep.trimmed = a.rows() >= kTrimRows;

  // First-thread-count fused solutions; every later thread count and every
  // unfused run must reproduce them bitwise.
  std::vector<value_t> ref_pcg_x, ref_gmres_x;

  for (std::size_t ti = 0; ti < cfg.threads.size(); ++ti) {
    const int t = cfg.threads[ti];
    ThreadCountGuard guard(t);
    IluOptions opts;
    opts.num_threads = t;
    opts.fill_level = cfg.fill;
    // Each row of the sweep must measure the PLANNED team (see file header).
    opts.retarget_oversubscribed = false;

    ThreadTimings tt;
    tt.threads = t;
    {
      const RepTimes rt =
          rep_times_seconds([&] { ilu_factor(a, opts); }, cfg.reps, 1);
      tt.factor_s = rt.min_s;
      tt.factor_med_s = rt.median_s;
    }

    Factorization f = ilu_factor(a, opts);
    tt.fwd = sched_stats(f.fwd);
    tt.bwd = sched_stats(f.bwd);
    if (cfg.verify) {
      // Static happens-before analysis of the exact schedules this row
      // times. Uncached deps closures: verification reads the factor's own
      // sparsity, the same way retarget() does.
      const auto check = [&](VerifyBlock& vb, const ExecSchedule& s,
                             const DepsFn& deps, const char* dir) {
        const verify::VerifyReport vr = verify::verify_schedule(s, deps);
        vb.present = true;
        vb.ok = vr.ok();
        vb.stats = vr.stats;
        if (!vb.ok) {
          std::fprintf(stderr, "VERIFY FAILURE on %s %s t=%d: %s\n",
                       rep.name.c_str(), dir, t, vr.summary().c_str());
        }
      };
      check(tt.verify_fwd, f.fwd, lower_triangular_deps(f.lu), "fwd");
      check(tt.verify_bwd, f.bwd, upper_triangular_deps(f.lu), "bwd");
      const bool row_ok = tt.verify_fwd.ok && tt.verify_bwd.ok;
      if (rep.schedule_verified < 0) rep.schedule_verified = 1;
      if (!row_ok) rep.schedule_verified = 0;
    }
    if (ti == 0) {
      rep.levels = f.plan.total_levels;
      rep.rows_moved = f.plan.rows_moved;
      rep.method = lower_method_name(f.plan.method);
    }
    {
      const RepTimes rt =
          rep_times_seconds([&] { ilu_refactor(f, a); }, cfg.reps, 1);
      tt.refactor_s = rt.min_s;
      tt.refactor_med_s = rt.median_s;
    }
    tt.scatter_map_s =
        min_time_seconds([&] { scatter_values(f, a); }, cfg.reps, 1);
    tt.scatter_searched_s =
        min_time_seconds([&] { scatter_values_searched(f, a); }, cfg.reps, 1);
    // scatter_values_searched leaves unfactored values; restore the factor
    // before timing the solve.
    ilu_refactor(f, a);

    const auto r = random_vector(a.rows(), 0xB0B);
    std::vector<value_t> z(r.size());
    SolveWorkspace ws;
    ilu_apply(f, r, z, ws);  // warm the workspace
    {
      const RepTimes rt =
          rep_times_seconds([&] { ilu_apply(f, r, z, ws); }, cfg.reps, 1);
      tt.solve_s = rt.min_s;
      tt.solve_med_s = rt.median_s;
    }

    // Barrier (CSR-LS) baseline on the SAME factor — flip the backend tag
    // (structure is shared), re-time the apply, and check bitwise parity
    // against the P2P sweep. This is the paper's §VI per-sweep comparison.
    {
      Factorization fb = f;  // schedule copy; retarget caches reset
      set_exec_backend(fb, ExecBackend::kBarrier);
      std::vector<value_t> zb(r.size());
      SolveWorkspace wsb;
      ilu_apply(fb, r, zb, wsb);  // warm
      const RepTimes rt =
          rep_times_seconds([&] { ilu_apply(fb, r, zb, wsb); }, cfg.reps, 1);
      tt.solve_ls_s = rt.min_s;
      tt.solve_ls_med_s = rt.median_s;
      if (zb != z) rep.backend_parity = false;
    }

    // Instrumented pass (stall_profile + optional trace) at the LAST thread
    // count — after the uninstrumented timings above, on fresh factor
    // copies, so the numbers it perturbs are its own.
    if (ti + 1 == cfg.threads.size()) {
      collect_stall_profile(rep, f, a, e.paper_sym_pattern, t, cfg);
    }

    const RowPartition part = RowPartition::build(a, t);
    std::vector<value_t> y(r.size());
    {
      const RepTimes rt =
          rep_times_seconds([&] { spmv(a, part, r, y); }, cfg.reps, 1);
      tt.spmv_s = rt.min_s;
      tt.spmv_med_s = rt.median_s;
    }

    // Batched many-RHS serving throughput: solve_many over k concurrent
    // right-hand sides under the SERVING configuration (retarget on — a
    // planned team that oversubscribes the machine re-plans to the core
    // count instead of spinning, exactly what a deployed server does). Each
    // point is bitwise-checked against k independent scalar applies of the
    // SAME factor; k / batch_s is the solves/sec the batch sustained.
    {
      const bool saved_retarget = f.opts.retarget_oversubscribed;
      f.opts.retarget_oversubscribed = true;
      ThroughputRow row;
      row.threads = t;
      SolveWorkspace wt;
      std::vector<value_t> z1(r.size());
      ilu_apply(f, r, z1, wt);  // warm the retarget caches
      row.solve_1_s =
          min_time_seconds([&] { ilu_apply(f, r, z1, wt); }, cfg.reps, 1);

      index_t k_max = 1;
      for (index_t k : cfg.streams) k_max = std::max(k_max, k);
      const std::size_t un = static_cast<std::size_t>(a.rows());
      std::vector<value_t> rp(un * static_cast<std::size_t>(k_max));
      for (index_t j = 0; j < k_max; ++j) {
        const auto col =
            random_vector(a.rows(), 0xD00D + static_cast<std::uint64_t>(j));
        std::copy(col.begin(), col.end(),
                  rp.begin() + static_cast<std::size_t>(j) * un);
      }
      // Scalar reference, prefix-closed: the first k columns of the k_max
      // reference ARE the k-RHS reference (columns are independent).
      std::vector<value_t> z_ref(rp.size());
      for (index_t j = 0; j < k_max; ++j) {
        ilu_apply(f,
                  std::span<const value_t>(rp).subspan(
                      static_cast<std::size_t>(j) * un, un),
                  std::span<value_t>(z_ref).subspan(
                      static_cast<std::size_t>(j) * un, un),
                  wt);
      }
      std::vector<value_t> zp(rp.size());
      for (index_t k : cfg.streams) {
        if (k < 1 || k > k_max) continue;
        const std::size_t nk = un * static_cast<std::size_t>(k);
        StreamPoint pt;
        pt.k = k;
        pt.batch_s = min_time_seconds(
            [&] {
              solve_many(f, std::span<const value_t>(rp).first(nk),
                         std::span<value_t>(zp).first(nk), k, wt);
            },
            cfg.reps, 1);
        pt.solves_per_s =
            pt.batch_s > 0 ? static_cast<double>(k) / pt.batch_s : 0;
        pt.batched_parity =
            std::equal(zp.begin(), zp.begin() + static_cast<std::ptrdiff_t>(nk),
                       z_ref.begin());
        if (!pt.batched_parity) rep.batched_parity = false;
        row.points.push_back(pt);
      }
      rep.throughput.push_back(std::move(row));
      f.opts.retarget_oversubscribed = saved_retarget;
    }

    // Fused vs unfused Krylov inner loop: the SAME restructured drivers, the
    // only difference being one scheduled pass (ilu_apply_spmv) vs two
    // kernel launches (ilu_apply then spmv) per iteration. tolerance 0 runs
    // the full iteration budget so the quotient is a per-iteration wall
    // time, and the solutions double as the bitwise parity check — fused vs
    // unfused, and against the first thread count. Trimmed (production-
    // scale) matrices skip the Krylov/AMG races below — they would run for
    // hours at this scale — but keep everything above plus the throughput
    // sweep.
    if (!rep.trimmed) {
      SolverOptions fo;
      fo.max_iterations = 30;
      fo.tolerance = 0;
      FusedIluOperator fop(a, Factorization(f));
      const KrylovOperator uop = unfused_operator(a, fop.fn());
      std::vector<value_t> xf(r.size()), xu(r.size());
      // One checked run per mode for parity + iteration count, then
      // min-of-reps for the wall time (min filters scheduler noise, which
      // dominates when the team oversubscribes the machine).
      const auto time_iter = [&](auto&& solve, std::vector<value_t>& x) {
        std::fill(x.begin(), x.end(), 0);
        const SolverResult res = solve(x);
        const double wall = min_time_seconds(
            [&] {
              std::fill(x.begin(), x.end(), 0);
              solve(x);
            },
            cfg.reps, 1);
        return wall / std::max(1, res.iterations);
      };
      if (e.paper_sym_pattern) {
        tt.pcg_fused_iter_s = time_iter(
            [&](std::span<value_t> x) { return pcg_fused(a, r, x, fop.op(), fo); },
            xf);
        tt.pcg_unfused_iter_s = time_iter(
            [&](std::span<value_t> x) { return pcg_fused(a, r, x, uop, fo); },
            xu);
        if (xf != xu) rep.fused_parity = false;
        if (ref_pcg_x.empty()) {
          ref_pcg_x = xf;
        } else if (xf != ref_pcg_x) {
          rep.fused_parity = false;
        }
      }
      tt.gmres_fused_iter_s = time_iter(
          [&](std::span<value_t> x) { return gmres_fused(a, r, x, fop.op(), fo); },
          xf);
      tt.gmres_unfused_iter_s = time_iter(
          [&](std::span<value_t> x) { return gmres_fused(a, r, x, uop, fo); },
          xu);
      if (xf != xu) rep.fused_parity = false;
      if (ref_gmres_x.empty()) {
        ref_gmres_x = xf;
      } else if (xf != ref_gmres_x) {
        rep.fused_parity = false;
      }
    }

    SolverOptions sopts;
    sopts.max_iterations = 400;
    sopts.tolerance = 1e-8;
    if (!rep.trimmed && e.paper_sym_pattern) {
      // Symmetric-pattern entries: full AMG-PCG vs ILU-PCG wall-time race at
      // every thread count (iteration counts are deterministic, so they are
      // recorded once), with the ILU-PCG run under BOTH backends — same
      // factor, same trajectory, only the sweep synchronization differs.
      std::vector<value_t> x(r.size(), 0), x_ls(r.size(), 0);
      {
        Factorization fb = f;
        set_exec_backend(fb, ExecBackend::kBarrier);
        IluPreconditioner mb(std::move(fb));
        Timer ls_t;
        const SolverResult lres = pcg(a, r, x_ls, mb.fn(), sopts);
        tt.ilu_pcg_ls_s = ls_t.seconds();
        if (ti == 0) {
          rep.pcg_iterations_ls =
              lres.converged ? lres.iterations : -lres.iterations;
        }
      }
      IluPreconditioner m(std::move(f));  // last use of f this iteration
      Timer ilu_t;
      const SolverResult ires = pcg(a, r, x, m.fn(), sopts);
      tt.ilu_pcg_s = ilu_t.seconds();
      if (x != x_ls) rep.backend_parity = false;
      if (ti == 0) {
        rep.pcg_iterations = ires.converged ? ires.iterations : -ires.iterations;
      }
      try {
        AmgOptions aopts;
        aopts.num_threads = t;
        Timer setup_t;
        AmgPreconditioner amg(a, aopts);
        tt.amg_setup_s = setup_t.seconds();
        if (ti == 0) {
          rep.amg_levels = amg.hierarchy().num_levels();
          rep.amg_operator_complexity = amg.hierarchy().operator_complexity();
          rep.amg_aggregate_hist =
              amg.hierarchy().levels.front().aggregate_hist;
        }
        std::vector<value_t> zc(r.size());
        amg.apply(r, zc);  // warm the hierarchy scratch
        tt.amg_cycle_s =
            min_time_seconds([&] { amg.apply(r, zc); }, cfg.reps, 1);
        std::fill(x.begin(), x.end(), 0);
        Timer amg_t;
        const SolverResult ares = pcg(a, r, x, amg.fn(), sopts);
        tt.amg_pcg_s = amg_t.seconds();
        if (ti == 0) {
          rep.amg_iterations =
              ares.converged ? ares.iterations : -ares.iterations;
        }
      } catch (const Error& err) {
        if (ti == 0) std::printf("  amg skipped: %s\n", err.what());
      }
    } else if (!rep.trimmed && ti == 0) {
      // Unsymmetric entries: GMRES iteration counts + bitwise backend parity
      // recorded once (the per-sweep timing race above already runs at every
      // thread count).
      Factorization fb = f;
      set_exec_backend(fb, ExecBackend::kBarrier);
      IluPreconditioner mb(std::move(fb));
      IluPreconditioner m(std::move(f));
      std::vector<value_t> x(r.size(), 0), x_ls(r.size(), 0);
      const SolverResult res = gmres(a, r, x, m.fn(), sopts);
      const SolverResult lres = gmres(a, r, x_ls, mb.fn(), sopts);
      rep.pcg_iterations = res.converged ? res.iterations : -res.iterations;
      rep.pcg_iterations_ls =
          lres.converged ? lres.iterations : -lres.iterations;
      if (x != x_ls) rep.backend_parity = false;
    }

    rep.timings.push_back(tt);
    std::printf(
        "  %-18s t=%d  factor %.4fs  refactor %.4fs  scatter map/searched "
        "%.5f/%.5fs  solve p2p/ls %.5f/%.5fs (%.2fx)  spmv %.5fs",
        e.name.c_str(), t, tt.factor_s, tt.refactor_s, tt.scatter_map_s,
        tt.scatter_searched_s, tt.solve_s, tt.solve_ls_s,
        tt.solve_s > 0 ? tt.solve_ls_s / tt.solve_s : 0.0, tt.spmv_s);
    if (tt.pcg_fused_iter_s >= 0) {
      std::printf("  pcg-it fused/unfused %.5f/%.5fs (%.2fx)",
                  tt.pcg_fused_iter_s, tt.pcg_unfused_iter_s,
                  tt.pcg_unfused_iter_s / tt.pcg_fused_iter_s);
    }
    if (tt.gmres_fused_iter_s >= 0) {
      std::printf("  gmres-it fused/unfused %.5f/%.5fs (%.2fx)",
                  tt.gmres_fused_iter_s, tt.gmres_unfused_iter_s,
                  tt.gmres_unfused_iter_s / tt.gmres_fused_iter_s);
    }
    if (tt.amg_pcg_s >= 0) {
      std::printf("  pcg ilu/amg %.4f/%.4fs (it %d/%d)", tt.ilu_pcg_s,
                  tt.amg_pcg_s, rep.pcg_iterations, rep.amg_iterations);
    }
    if (!rep.throughput.empty() && !rep.throughput.back().points.empty()) {
      const ThroughputRow& row = rep.throughput.back();
      std::printf("  serve 1-RHS %.2f/s",
                  row.solve_1_s > 0 ? 1.0 / row.solve_1_s : 0.0);
      for (const StreamPoint& pt : row.points) {
        std::printf("  k=%d %.2f/s%s", static_cast<int>(pt.k),
                    pt.solves_per_s, pt.batched_parity ? "" : " PARITY-FAIL");
      }
    }
    std::printf("\n");
  }
  // Factor-time autotuner decision (schema-v6 `autotune` block) — after the
  // fixed-policy sweep so the grid measurements can't perturb it.
  run_autotune(rep, a, cfg);
  // Robust-pipeline statistics (skipped at production scale: one more full
  // Krylov solve). On this healthy suite the expectation is a one-attempt,
  // zero-shift trail — anything else is a regression worth seeing in the
  // JSON diff.
  if (!rep.trimmed) run_robust(rep, a);
  rep.peak_rss_mb = peak_rss_mb_now();
  return rep;
}

void write_json(const BenchConfig& cfg, const std::vector<MatrixReport>& reps) {
  std::ofstream os(cfg.out);
  // schema_version 6: + per-matrix `autotune` block (the factor-time tuner's
  // candidate grid, the pinned winner re-measured as auto_solve_s, its ratios
  // against the serial and best-fixed candidates, and the bitwise
  // autotune_parity flag that joins the exit gate), regime-coverage
  // deps_covered_regime in the --verify blocks, and
  // rows_per_level_mean / small_level_row{s,_frac} in sched_fwd/sched_bwd.
  // schema_version 5 added per-matrix schedule_verified (null when --verify
  // is off) and, under --verify, verify_fwd/verify_bwd blocks in every
  // timings row — the static analyzer's happens-before coverage accounting,
  // whose direct/transitive split quantifies the wait sparsification.
  // schema_version 4 added per-matrix stall_profile (spin-wait / barrier
  // telemetry of one instrumented pass per backend at the last thread
  // count), *_med_s median timings next to the min-of-reps numbers, and
  // rows_per_level_{min,med,max,hist} in the sched_fwd/sched_bwd blocks;
  // 3 added the robust_* breakdown-retry trail and robust_only; 2 added
  // tier / streams headers, the throughput table, peak_rss_mb and trimmed.
  // See README "Benchmark JSON schema".
  os << "{\n  \"schema_version\": 6,\n  \"tier\": \"" << cfg.tier
     << "\",\n  \"suite_scale\": " << cfg.scale
     << ",\n  \"fill_level\": " << cfg.fill << ",\n  \"reps\": " << cfg.reps
     << ",\n  \"threads\": [";
  for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
    os << (i ? ", " : "") << cfg.threads[i];
  }
  os << "],\n  \"streams\": [";
  for (std::size_t i = 0; i < cfg.streams.size(); ++i) {
    os << (i ? ", " : "") << cfg.streams[i];
  }
  os << "],\n  \"results\": [\n";
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const MatrixReport& r = reps[i];
    os << "    {\"matrix\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"nnz\": " << r.nnz << ", \"levels\": " << r.levels
       << ", \"rows_moved\": " << r.rows_moved << ", \"method\": \""
       << r.method << "\", \"krylov_iterations\": " << r.pcg_iterations
       << ", \"krylov_iterations_ls\": " << r.pcg_iterations_ls
       << ", \"amg_iterations\": " << r.amg_iterations
       << ", \"amg_levels\": " << r.amg_levels
       << ", \"amg_operator_complexity\": " << r.amg_operator_complexity
       << ", \"fused_parity\": " << (r.fused_parity ? "true" : "false")
       << ", \"backend_parity\": " << (r.backend_parity ? "true" : "false")
       << ", \"batched_parity\": " << (r.batched_parity ? "true" : "false")
       << ", \"schedule_verified\": "
       << (r.schedule_verified < 0 ? "null"
                                   : (r.schedule_verified ? "true" : "false"))
       << ", \"trimmed\": " << (r.trimmed ? "true" : "false")
       << ", \"peak_rss_mb\": " << r.peak_rss_mb
       << ",\n     \"robust_only\": " << (r.robust_only ? "true" : "false")
       << ", \"robust_attempts\": " << r.robust_attempts
       << ", \"shift_used\": " << r.robust_shift
       << ", \"robust_level\": \"" << r.robust_level
       << "\", \"robust_cause\": \"" << r.robust_cause
       << "\", \"robust_converged\": " << (r.robust_converged ? "true" : "false")
       << ",\n     \"amg_aggregate_hist\": [";
    for (std::size_t j = 0; j < r.amg_aggregate_hist.size(); ++j) {
      os << (j ? ", " : "") << r.amg_aggregate_hist[j];
    }
    os << "],\n     \"timings\": [\n";
    const auto sched = [&os](const char* key, const SchedStats& s) {
      os << ", \"" << key << "\": {\"levels\": " << s.levels
         << ", \"deps_total\": " << s.deps_total << ", \"waits\": " << s.waits
         << ", \"items\": " << s.items
         << ", \"max_items_per_thread\": " << s.max_items_per_thread
         << ", \"rows_per_level_min\": " << s.rows_per_level_min
         << ", \"rows_per_level_med\": " << s.rows_per_level_med
         << ", \"rows_per_level_max\": " << s.rows_per_level_max
         << ", \"rows_per_level_mean\": " << s.rows_per_level_mean
         << ", \"small_level_rows\": " << s.small_level_rows
         << ", \"small_level_row_frac\": " << s.small_level_row_frac
         << ", \"rows_per_level_hist\": [";
      for (std::size_t b = 0; b < s.rows_per_level_hist.size(); ++b) {
        os << (b ? ", " : "") << s.rows_per_level_hist[b];
      }
      os << "]}";
    };
    const auto verify_block = [&os](const char* key, const VerifyBlock& v) {
      if (!v.present) return;  // key absent entirely when --verify is off
      os << ", \"" << key << "\": {\"ok\": " << (v.ok ? "true" : "false")
         << ", \"items\": " << v.stats.items
         << ", \"levels\": " << v.stats.levels
         << ", \"waits_total\": " << v.stats.waits_total
         << ", \"deps_external\": " << v.stats.deps_external
         << ", \"deps_same_thread\": " << v.stats.deps_same_thread
         << ", \"deps_cross_thread\": " << v.stats.deps_cross_thread
         << ", \"deps_covered_direct\": " << v.stats.deps_covered_direct
         << ", \"deps_covered_regime\": " << v.stats.deps_covered_regime
         << ", \"deps_covered_transitive\": "
         << v.stats.deps_covered_transitive
         << ", \"deps_uncovered\": " << v.stats.deps_uncovered << "}";
    };
    for (std::size_t j = 0; j < r.timings.size(); ++j) {
      const ThreadTimings& t = r.timings[j];
      os << "       {\"threads\": " << t.threads << ", \"factor_s\": "
         << t.factor_s << ", \"factor_med_s\": " << t.factor_med_s
         << ", \"refactor_s\": " << t.refactor_s
         << ", \"refactor_med_s\": " << t.refactor_med_s
         << ", \"scatter_map_s\": " << t.scatter_map_s
         << ", \"scatter_searched_s\": " << t.scatter_searched_s
         << ", \"solve_s\": " << t.solve_s
         << ", \"solve_med_s\": " << t.solve_med_s
         << ", \"solve_ls_s\": " << t.solve_ls_s
         << ", \"solve_ls_med_s\": " << t.solve_ls_med_s
         << ", \"ls_over_p2p_solve\": "
         << (t.solve_s > 0 ? t.solve_ls_s / t.solve_s : -1)
         << ", \"spmv_s\": " << t.spmv_s
         << ", \"spmv_med_s\": " << t.spmv_med_s
         << ", \"pcg_fused_iter_s\": " << t.pcg_fused_iter_s
         << ", \"pcg_unfused_iter_s\": " << t.pcg_unfused_iter_s
         << ", \"gmres_fused_iter_s\": " << t.gmres_fused_iter_s
         << ", \"gmres_unfused_iter_s\": " << t.gmres_unfused_iter_s
         << ", \"amg_setup_s\": " << t.amg_setup_s
         << ", \"amg_cycle_s\": " << t.amg_cycle_s
         << ", \"amg_pcg_s\": " << t.amg_pcg_s
         << ", \"ilu_pcg_s\": " << t.ilu_pcg_s
         << ", \"ilu_pcg_ls_s\": " << t.ilu_pcg_ls_s;
      sched("sched_fwd", t.fwd);
      sched("sched_bwd", t.bwd);
      verify_block("verify_fwd", t.verify_fwd);
      verify_block("verify_bwd", t.verify_bwd);
      os << "}" << (j + 1 < r.timings.size() ? "," : "") << "\n";
    }
    os << "     ],\n     \"throughput\": [\n";
    for (std::size_t j = 0; j < r.throughput.size(); ++j) {
      const ThroughputRow& row = r.throughput[j];
      os << "       {\"threads\": " << row.threads
         << ", \"solve_1_s\": " << row.solve_1_s << ", \"streams\": [";
      for (std::size_t p = 0; p < row.points.size(); ++p) {
        const StreamPoint& pt = row.points[p];
        os << (p ? ", " : "") << "{\"k\": " << pt.k
           << ", \"batch_s\": " << pt.batch_s
           << ", \"solves_per_s\": " << pt.solves_per_s
           << ", \"batched_parity\": " << (pt.batched_parity ? "true" : "false")
           << "}";
      }
      os << "]}" << (j + 1 < r.throughput.size() ? "," : "") << "\n";
    }
    os << "     ],\n     \"stall_profile\": ";
    if (r.stall.threads == 0) {
      os << "null";
    } else {
      const auto region = [&os](const char* key, const RegionProfile& p) {
        os << "\"" << key << "\": ";
        if (!p.present) {
          os << "null";
          return;
        }
        os << "{\"sweeps\": " << p.sweeps << ", \"wall_ns\": " << p.wall_ns
           << ", \"critical_path_ns\": " << p.critical_path_ns
           << ", \"occupancy\": " << p.occupancy
           << ", \"sync_wait_frac\": " << p.sync_wait_frac
           << ", \"waits\": " << p.total.waits
           << ", \"waits_immediate\": " << p.total.waits_immediate
           << ", \"waits_stalled\": " << p.total.waits_stalled
           << ", \"spins\": " << p.total.spins
           << ", \"yields\": " << p.total.yields
           << ", \"barrier_waits\": " << p.total.barrier_waits
           << ", \"busy_ns\": " << p.total.busy_ns
           << ", \"wait_ns\": " << p.total.wait_ns
           << ", \"barrier_ns\": " << p.total.barrier_ns
           << ", \"level_wait_frac_binned\": "
           << (p.binned ? "true" : "false") << ", \"level_wait_frac\": [";
        for (std::size_t l = 0; l < p.level_wait_frac.size(); ++l) {
          os << (l ? ", " : "") << p.level_wait_frac[l];
        }
        os << "]}";
      };
      os << "{\"threads\": " << r.stall.threads
         << ", \"reps\": " << r.stall.reps << ",\n      \"p2p\": {";
      region("fwd", r.stall.p2p_fwd);
      os << ", ";
      region("bwd", r.stall.p2p_bwd);
      os << "},\n      \"barrier\": {";
      region("fwd", r.stall.ls_fwd);
      os << ", ";
      region("bwd", r.stall.ls_bwd);
      os << "}}";
    }
    os << ",\n     \"autotune\": ";
    if (!r.autotune.present) {
      os << "null";
    } else {
      const AutotuneBlock& ab = r.autotune;
      os << "{\"threads\": " << ab.threads << ", \"mode\": \""
         << (ab.deterministic ? "cost_model" : "wallclock")
         << "\", \"chosen\": \"" << ab.chosen
         << "\", \"chosen_threads\": " << ab.chosen_threads
         << ", \"chosen_hybrid\": " << (ab.chosen_hybrid ? "true" : "false")
         << ", \"chosen_chunk_rows\": " << ab.chosen_chunk_rows
         << ", \"hybrid_applied\": " << (ab.hybrid_applied ? "true" : "false")
         << ", \"auto_solve_s\": " << ab.auto_solve_s
         << ", \"serial_s\": " << ab.serial_s << ", \"best_fixed\": \""
         << ab.best_fixed << "\", \"best_fixed_s\": " << ab.best_fixed_s
         << ", \"ratio_vs_serial\": " << ab.ratio_vs_serial
         << ", \"ratio_vs_best_fixed\": " << ab.ratio_vs_best_fixed
         << ", \"autotune_parity\": " << (ab.parity ? "true" : "false")
         << ",\n      \"candidates\": [";
      for (std::size_t c = 0; c < ab.candidates.size(); ++c) {
        os << (c ? ", " : "") << "{\"name\": \"" << ab.candidates[c].name
           << "\", \"seconds\": " << ab.candidates[c].seconds << "}";
      }
      os << "]}";
    }
    os << "}" << (i + 1 < reps.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Resolve a bench entry name: `laplacian3d_<s>` / `laplacian2d_<s>` build
/// an s×s×s / s×s grid Laplacian directly (scale-independent, so the
/// acceptance-grade AMG-vs-ILU comparison always runs at full size);
/// anything else is a synthetic-suite name.
gen::SuiteEntry make_bench_entry(const std::string& name,
                                 const gen::SuiteOptions& sopts) {
  const auto grid_side = [&](const char* prefix) -> index_t {
    const std::size_t plen = std::strlen(prefix);
    if (name.rfind(prefix, 0) != 0) return 0;
    const int s = std::atoi(name.c_str() + plen);
    JAVELIN_CHECK(s > 1, "bad grid side in bench entry name: " + name);
    return static_cast<index_t>(s);
  };
  if (const index_t s = grid_side("laplacian3d_")) {
    gen::SuiteEntry e;
    e.name = name;
    e.matrix = gen::laplacian3d(s, s, s, 7);
    e.paper_sym_pattern = true;
    return e;
  }
  if (const index_t s = grid_side("laplacian2d_")) {
    gen::SuiteEntry e;
    e.name = name;
    e.matrix = gen::laplacian2d(s, s, 5);
    e.paper_sym_pattern = true;
    return e;
  }
  if (const index_t s = grid_side("aniso3d_")) {
    gen::SuiteEntry e;
    e.name = name;
    e.matrix = gen::anisotropic3d(s, s, s, 0.1, 0.01);
    e.paper_sym_pattern = true;
    return e;
  }
  if (const index_t s = grid_side("jump3d_")) {
    gen::SuiteEntry e;
    e.name = name;
    // 8³-cell coefficient blocks, 4 decades of contrast: SPE-style jumps.
    e.matrix = gen::jump3d(s, s, s, 8, 1e4, 0x1A3);
    e.paper_sym_pattern = true;
    return e;
  }
  return gen::make_suite_matrix(name, sopts);
}

/// Load a Matrix-Market file as a bench entry; the Krylov driver (pcg vs
/// gmres) follows the file's actual numeric symmetry.
gen::SuiteEntry make_file_entry(const std::string& path) {
  gen::SuiteEntry e;
  const std::size_t slash = path.find_last_of('/');
  e.name = slash == std::string::npos ? path : path.substr(slash + 1);
  e.matrix = read_matrix_market_file(path);
  e.matrix.validate();
  // Numerically symmetric (over the union pattern) is exactly what the pcg
  // path needs; one transpose suffices.
  e.paper_sym_pattern =
      max_abs_difference(e.matrix, transpose(e.matrix)) == 0;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = parse_args(argc, argv);

  gen::SuiteOptions sopts;
  sopts.scale = cfg.scale;
  std::vector<std::string> names = cfg.matrices;
  if (names.empty() && cfg.matrix_files.empty()) {
    names = gen::suite_names();
    // The acceptance-grade AMG matrix: big enough that ILU-PCG iteration
    // counts hurt and the O(n) hierarchy pulls ahead.
    names.push_back("laplacian3d_40");
    if (cfg.tier == "large") {
      // Production-scale tier: 128³ ≈ 2.1M-row 3-D problems (isotropic,
      // anisotropic, jumpy-coefficient). Krylov/AMG races are trimmed at
      // this size; the latency table and the batched throughput sweep run.
      names.push_back("laplacian3d_128");
      names.push_back("aniso3d_128");
      names.push_back("jump3d_128");
    }
  }

  std::printf("javelin bench: tier=%s scale=%.3g fill=%d reps=%d\n",
              cfg.tier.c_str(), cfg.scale, cfg.fill, cfg.reps);
  std::vector<MatrixReport> reports;
  const std::vector<std::string> degenerate = gen::degenerate_names();
  for (const std::string& name : names) {
    try {
      gen::SuiteEntry e = make_bench_entry(name, sopts);
      std::printf("%s (n=%d, nnz=%d)\n", name.c_str(), e.matrix.rows(),
                  e.matrix.nnz());
      // Degenerate fixtures defeat the throwing factor path by construction;
      // they bench the robust pipeline instead of the timing sweep.
      const bool is_degenerate =
          std::find(degenerate.begin(), degenerate.end(), name) !=
          degenerate.end();
      reports.push_back(is_degenerate ? bench_degenerate(e)
                                      : bench_matrix(e, cfg));
    } catch (const Error& err) {
      std::printf("%s SKIPPED: %s\n", name.c_str(), err.what());
    }
  }
  for (const std::string& path : cfg.matrix_files) {
    try {
      gen::SuiteEntry e = make_file_entry(path);
      std::printf("%s (n=%d, nnz=%d, %s)\n", e.name.c_str(), e.matrix.rows(),
                  e.matrix.nnz(), e.paper_sym_pattern ? "sym" : "unsym");
      reports.push_back(bench_matrix(e, cfg));
    } catch (const Error& err) {
      std::printf("%s SKIPPED: %s\n", path.c_str(), err.what());
    }
  }

  // Degenerate group-D fixtures ride along as robust-only rows (only when
  // the run uses the default matrix list — an explicit --matrices selection
  // stays exactly what the caller asked for).
  if (cfg.matrices.empty() && cfg.matrix_files.empty() &&
      cfg.tier == "small") {
    std::printf("degenerate fixtures (robust pipeline only)\n");
    for (const std::string& name : gen::degenerate_names()) {
      try {
        reports.push_back(bench_degenerate(gen::make_suite_matrix(name, sopts)));
      } catch (const Error& err) {
        std::printf("%s SKIPPED: %s\n", name.c_str(), err.what());
      }
    }
  }

  write_json(cfg, reports);
  std::printf("wrote %s\n", cfg.out.c_str());

  if (!cfg.trace.empty()) {
    obs::TraceSession& ts = obs::TraceSession::instance();
    if (ts.write_file(cfg.trace)) {
      std::printf("wrote %s (%zu trace events)\n", cfg.trace.c_str(),
                  ts.event_count());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", cfg.trace.c_str());
      return 1;
    }
  }

  // Standing gate: the parity guarantees must stay green on every
  // non-degenerate matrix — a bench run that produced a parity failure is a
  // correctness regression, not a perf data point, and must fail loudly.
  bool parity_ok = true;
  for (const MatrixReport& r : reports) {
    if (r.robust_only) continue;
    if (!r.backend_parity || !r.batched_parity || !r.fused_parity ||
        (r.autotune.present && !r.autotune.parity)) {
      std::fprintf(
          stderr,
          "PARITY FAILURE on %s: backend=%d batched=%d fused=%d autotune=%d\n",
          r.name.c_str(), r.backend_parity ? 1 : 0, r.batched_parity ? 1 : 0,
          r.fused_parity ? 1 : 0,
          r.autotune.present && !r.autotune.parity ? 0 : 1);
      parity_ok = false;
    }
    // --verify failures already printed row-precise diagnostics inline; the
    // summary line here names the matrix for the CI log grep.
    if (r.schedule_verified == 0) {
      std::fprintf(stderr, "VERIFY FAILURE on %s\n", r.name.c_str());
      parity_ok = false;
    }
  }
  return parity_ok ? 0 : 1;
}
