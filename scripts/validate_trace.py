#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON emitted by javelin_bench --trace.

Checks, in order:
  1. the file parses as JSON and has a non-empty traceEvents array;
  2. every event carries the required trace_event fields (name/ph/ts/pid/tid)
     and a known phase ('B', 'E' or 'X');
  3. per (pid, tid), 'B'/'E' events balance like parentheses with matching
     names — an unbalanced stream renders as garbage in Perfetto;
  4. per (pid, tid), 'B'/'E' timestamps are monotone non-decreasing in
     recorded order ('X' events carry their own start and are exempt).

Exit code 0 on success, 1 on any violation (CI gates on it).

Usage: validate_trace.py trace.json
"""

import collections
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py trace.json")
    path = sys.argv[1]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if not events:
        fail("traceEvents is empty (tracing enabled but nothing recorded)")

    stacks = collections.defaultdict(list)
    last_ts = {}
    phases = collections.Counter()
    for i, e in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing field {field!r}: {e}")
        ph = e["ph"]
        phases[ph] += 1
        if ph not in ("B", "E", "X"):
            fail(f"event {i} has unknown phase {ph!r}")
        if ph == "X":
            if e.get("dur", -1) < 0:
                fail(f"event {i} ('X' {e['name']}) missing/negative dur")
            continue
        key = (e["pid"], e["tid"])
        ts = float(e["ts"])
        if key in last_ts and ts < last_ts[key]:
            fail(
                f"event {i} ({ph} {e['name']}): non-monotone ts on tid "
                f"{e['tid']} ({ts} < {last_ts[key]})"
            )
        last_ts[key] = ts
        if ph == "B":
            stacks[key].append(e["name"])
        else:
            if not stacks[key]:
                fail(f"event {i}: E({e['name']}) with empty span stack")
            top = stacks[key].pop()
            if top != e["name"]:
                fail(f"event {i}: E({e['name']}) closes B({top})")

    for (pid, tid), stack in stacks.items():
        if stack:
            fail(f"tid {tid}: {len(stack)} unclosed B events: {stack[:5]}")

    tids = sorted({e["tid"] for e in events})
    print(
        f"validate_trace: OK: {len(events)} events on {len(tids)} threads "
        f"(B={phases['B']} E={phases['E']} X={phases['X']})"
    )


if __name__ == "__main__":
    main()
