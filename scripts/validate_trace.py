#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON emitted by javelin_bench --trace.

Checks, in order:
  1. the file parses as JSON and has a non-empty traceEvents array;
  2. every event carries the required trace_event fields (name/ph/ts/pid/tid)
     and a known phase ('B', 'E' or 'X');
  3. per (pid, tid), 'B'/'E' events balance like parentheses with matching
     names — an unbalanced stream renders as garbage in Perfetto;
  4. per (pid, tid), 'B'/'E' timestamps are monotone non-decreasing in
     recorded order ('X' events carry their own start and are exempt).

With --bench BENCH.json (a schema >= 5 file from the same run, produced with
both --trace and --verify), the dynamic telemetry is additionally
cross-checked against the static analysis:
  5. in every stall_profile, waits_immediate + waits_stalled == waits
     (the spin-wait counters partition);
  6. for every matrix whose stall_profile and verifier stats are both
     present, the observed P2P wait count equals sweeps x waits_total as
     predicted by the verifier — the executed synchronization is exactly
     the statically proven wait set, no more and no less;
  7. (schema >= 6) verifier coverage splits exactly: direct + regime +
     transitive == cross-thread deps, nothing uncovered — regime coverage
     is how hybrid (per-level backend) schedules account for the waits
     their serial/barrier segments made redundant;
  8. (schema >= 6) every autotune block is self-consistent: parity true,
     the chosen candidate is in the measured grid, and the serial anchor
     candidate is present.

Exit code 0 on success, 1 on any violation (CI gates on it).

Usage: validate_trace.py trace.json [--bench BENCH.json]
"""

import collections
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_bench(path):
    """Static-vs-dynamic cross-check: verifier-predicted wait counts against
    the stall-profile counters of the instrumented pass."""
    doc = load_json(path)
    schema = doc.get("schema_version", 0)
    if schema < 5:
        fail(f"{path}: --bench needs schema_version >= 5 (--verify runs)")
    checked = 0
    autotuned = 0
    for r in doc.get("results", []):
        if schema >= 6:
            # Verifier coverage identity, hybrid-aware: every cross-thread
            # dependency is covered directly, by a regime sync point, or
            # transitively — and the split is exact.
            for row in r.get("timings", []):
                for direction in ("fwd", "bwd"):
                    vb = row.get(f"verify_{direction}")
                    if not vb:
                        continue
                    covered = (
                        vb["deps_covered_direct"]
                        + vb.get("deps_covered_regime", 0)
                        + vb["deps_covered_transitive"]
                    )
                    if covered != vb["deps_cross_thread"]:
                        fail(
                            f"{r['matrix']} {direction} t={row['threads']}: "
                            f"coverage split {covered} != cross-thread "
                            f"{vb['deps_cross_thread']}"
                        )
                    if vb["deps_uncovered"] != 0:
                        fail(
                            f"{r['matrix']} {direction} t={row['threads']}: "
                            f"{vb['deps_uncovered']} uncovered deps"
                        )
            ab = r.get("autotune")
            if ab:
                names = [c["name"] for c in ab.get("candidates", [])]
                if not ab["autotune_parity"]:
                    fail(f"{r['matrix']}: autotune_parity is false")
                if ab["chosen"] not in names:
                    fail(
                        f"{r['matrix']}: chosen '{ab['chosen']}' not in the "
                        f"measured grid"
                    )
                if "serial" not in names:
                    fail(f"{r['matrix']}: autotune grid has no serial anchor")
                autotuned += 1
        stall = r.get("stall_profile")
        if not stall:
            continue
        for backend in ("p2p", "barrier"):
            for direction in ("fwd", "bwd"):
                prof = stall[backend][direction]
                if not prof:
                    continue
                w, wi, ws = (
                    prof["waits"],
                    prof["waits_immediate"],
                    prof["waits_stalled"],
                )
                if wi + ws != w:
                    fail(
                        f"{r['matrix']} {backend} {direction}: "
                        f"waits_immediate + waits_stalled != waits "
                        f"({wi} + {ws} != {w})"
                    )
        # Verifier prediction: the instrumented P2P pass executes exactly
        # sweeps x waits_total spin-waits (the statically proven wait set).
        row = next(
            (t for t in r["timings"] if t["threads"] == stall["threads"]),
            None,
        )
        if row is None or "verify_fwd" not in row:
            continue
        for direction in ("fwd", "bwd"):
            prof = stall["p2p"][direction]
            if not prof:
                continue
            predicted = prof["sweeps"] * row[f"verify_{direction}"][
                "waits_total"
            ]
            observed = prof["waits"]
            if observed != predicted:
                fail(
                    f"{r['matrix']} p2p {direction}: observed {observed} "
                    f"waits, verifier predicts {prof['sweeps']} sweeps x "
                    f"{row[f'verify_{direction}']['waits_total']} = "
                    f"{predicted}"
                )
            checked += 1
    print(
        f"validate_trace: bench OK: {checked} stall-profile regions match "
        f"the verifier's predicted wait counts, {autotuned} autotune blocks "
        f"consistent"
    )


def main():
    argv = sys.argv[1:]
    bench = None
    if "--bench" in argv:
        i = argv.index("--bench")
        if i + 1 >= len(argv):
            fail("--bench needs a path")
        bench = argv[i + 1]
        del argv[i : i + 2]
    if len(argv) != 1:
        fail("usage: validate_trace.py trace.json [--bench BENCH.json]")
    path = argv[0]

    doc = load_json(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if not events:
        fail("traceEvents is empty (tracing enabled but nothing recorded)")

    stacks = collections.defaultdict(list)
    last_ts = {}
    phases = collections.Counter()
    for i, e in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(f"event {i} missing field {field!r}: {e}")
        ph = e["ph"]
        phases[ph] += 1
        if ph not in ("B", "E", "X"):
            fail(f"event {i} has unknown phase {ph!r}")
        if ph == "X":
            if e.get("dur", -1) < 0:
                fail(f"event {i} ('X' {e['name']}) missing/negative dur")
            continue
        key = (e["pid"], e["tid"])
        ts = float(e["ts"])
        if key in last_ts and ts < last_ts[key]:
            fail(
                f"event {i} ({ph} {e['name']}): non-monotone ts on tid "
                f"{e['tid']} ({ts} < {last_ts[key]})"
            )
        last_ts[key] = ts
        if ph == "B":
            stacks[key].append(e["name"])
        else:
            if not stacks[key]:
                fail(f"event {i}: E({e['name']}) with empty span stack")
            top = stacks[key].pop()
            if top != e["name"]:
                fail(f"event {i}: E({e['name']}) closes B({top})")

    for (pid, tid), stack in stacks.items():
        if stack:
            fail(f"tid {tid}: {len(stack)} unclosed B events: {stack[:5]}")

    tids = sorted({e["tid"] for e in events})
    print(
        f"validate_trace: OK: {len(events)} events on {len(tids)} threads "
        f"(B={phases['B']} E={phases['E']} X={phases['X']})"
    )
    if bench is not None:
        check_bench(bench)


if __name__ == "__main__":
    main()
