#!/usr/bin/env bash
# Format gate, in two tiers:
#
#   1. hard whitespace invariants, checked ALWAYS (no tool dependency):
#      no tab indentation, no trailing whitespace, every file ends in
#      exactly one newline;
#   2. clang-format --dry-run --Werror against the checked-in .clang-format,
#      when clang-format is installed (CI installs it; a dev box without it
#      still gets tier 1 instead of a useless hard failure).
#
# Exit 0 = clean, 1 = violations (printed per file), 2 = usage error.
set -u

cd "$(dirname "$0")/.." || exit 2

# Everything we format: C++ sources/headers in the three source trees.
mapfile -t files < <(find src bench tests -type f \
  \( -name '*.cpp' -o -name '*.hpp' \) | sort)
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no sources found (run from the repo)" >&2
  exit 2
fi

fail=0

# Tier 1: whitespace invariants.
for f in "${files[@]}"; do
  if grep -n -P '\t' "$f" /dev/null | head -3 | grep .; then
    echo "check_format: $f: tab characters (shown above)" >&2
    fail=1
  fi
  if grep -n ' $' "$f" /dev/null | head -3 | grep -q .; then
    echo "check_format: $f: trailing whitespace" >&2
    fail=1
  fi
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "check_format: $f: missing final newline" >&2
    fail=1
  fi
done

# Tier 2: clang-format, when available. JAVELIN_FORMAT_SOFT=1 reports
# violations (and writes format.patch for the CI artifact) without failing:
# the tree predates the .clang-format config and a bulk reformat needs
# clang-format on the committing machine, so until that lands CI gates on
# the whitespace invariants and surfaces clang-format drift as an artifact
# instead of going permanently red.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run --Werror "${files[@]}" 2>format_violations.log
  then
    if [ "${JAVELIN_FORMAT_SOFT:-0}" = "1" ]; then
      n=$(grep -c 'warning:\|error:' format_violations.log || true)
      echo "check_format: $n clang-format findings (soft mode; see" \
           "format.patch)" >&2
      for f in "${files[@]}"; do
        diff -u "$f" <(clang-format "$f") \
          --label "a/$f" --label "b/$f" >>format.patch || true
      done
    else
      cat format_violations.log >&2
      echo "check_format: clang-format violations (fix: clang-format -i)" >&2
      fail=1
    fi
  fi
  rm -f format_violations.log
else
  echo "check_format: clang-format not installed; whitespace tier only" >&2
fi

if [ "$fail" -eq 0 ]; then
  echo "check_format: OK (${#files[@]} files)"
fi
exit "$fail"
