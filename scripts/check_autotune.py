#!/usr/bin/env python3
"""Gate the factor-time autotuner's decision quality from a bench JSON.

For every non-degenerate matrix row carrying an `autotune` block
(schema >= 6):

  * `autotune_parity` must be true — the pinned policy is required to be a
    bitwise-neutral transformation of the serial sweep (the bench's own exit
    code also enforces this; the gate re-checks so a doctored JSON can't
    pass);
  * in wall-clock mode, the re-measured auto solve must not regress the best
    FIXED candidate (serial or any uniform backend/team/granule point) by
    more than --slack (default 10%), with a small absolute epsilon so
    sub-100us solves on a noisy oversubscribed runner cannot flap the gate;
  * in cost-model mode (--verify runs) the timing gate is skipped — the
    grid numbers are dimensionless scores — but the block must still be
    present, parity-clean and self-consistent.

Exit code 0 on success, 1 on any violation (CI gates on it).

Usage: check_autotune.py BENCH.json [--slack 0.10] [--epsilon-s 50e-6]
"""

import json
import sys


def fail(msg):
    print(f"check_autotune: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    argv = sys.argv[1:]
    slack = 0.10
    epsilon_s = 50e-6
    if "--slack" in argv:
        i = argv.index("--slack")
        slack = float(argv[i + 1])
        del argv[i : i + 2]
    if "--epsilon-s" in argv:
        i = argv.index("--epsilon-s")
        epsilon_s = float(argv[i + 1])
        del argv[i : i + 2]
    if len(argv) != 1:
        fail("usage: check_autotune.py BENCH.json [--slack S] [--epsilon-s E]")

    try:
        with open(argv[0]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{argv[0]}: {e}")
    if doc.get("schema_version", 0) < 6:
        fail(f"{argv[0]}: needs schema_version >= 6 (autotune blocks)")

    checked = 0
    for r in doc.get("results", []):
        ab = r.get("autotune")
        if not ab:
            if not r.get("robust_only", False) and not r.get("trimmed", False):
                fail(f"{r['matrix']}: timing row without an autotune block")
            continue
        name = r["matrix"]
        if not ab["autotune_parity"]:
            fail(f"{name}: autotuned solve is not bitwise-equal to serial")
        cands = ab.get("candidates", [])
        if not cands:
            fail(f"{name}: empty candidate grid")
        names = [c["name"] for c in cands]
        if "serial" not in names:
            fail(f"{name}: grid is missing the serial anchor candidate")
        if ab["chosen"] not in names:
            fail(f"{name}: chosen '{ab['chosen']}' not in the measured grid")
        if ab["mode"] == "wallclock":
            auto_s, best_s = ab["auto_solve_s"], ab["best_fixed_s"]
            bound = best_s * (1.0 + slack) + epsilon_s
            if auto_s > bound:
                fail(
                    f"{name}: auto solve {auto_s:.3e}s regresses best fixed "
                    f"'{ab['best_fixed']}' {best_s:.3e}s beyond "
                    f"{slack:.0%} + {epsilon_s:.0e}s"
                )
            print(
                f"check_autotune: {name}: chose {ab['chosen']} "
                f"({auto_s:.3e}s vs best fixed {ab['best_fixed']} "
                f"{best_s:.3e}s, ratio {ab['ratio_vs_best_fixed']:.3f})"
            )
        else:
            if ab.get("ratio_vs_best_fixed", -1) != -1:
                fail(f"{name}: cost-model run reports a wall-clock ratio")
            print(
                f"check_autotune: {name}: deterministic decision "
                f"{ab['chosen']} (cost-model mode, timing gate skipped)"
            )
        checked += 1

    if checked == 0:
        fail("no autotune blocks found (nothing gated)")
    print(f"check_autotune: OK: {checked} autotune decisions gated")


if __name__ == "__main__":
    main()
