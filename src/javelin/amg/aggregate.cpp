#include "javelin/amg/aggregate.hpp"

#include <cmath>

#include "javelin/graph/bfs.hpp"

namespace javelin {

namespace {

/// BFS visit order over every component: George–Liu pseudo-peripheral start
/// per component, components discovered in natural order.
std::vector<index_t> bfs_visit_order(const CsrMatrix& s) {
  const index_t n = s.rows();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> reached(static_cast<std::size_t>(n), 0);
  for (index_t v = 0; v < n; ++v) {
    if (reached[static_cast<std::size_t>(v)]) continue;
    const index_t src = pseudo_peripheral_vertex(s, v);
    const BfsResult b = bfs(s, src);
    for (index_t u : b.order) {
      reached[static_cast<std::size_t>(u)] = 1;
      order.push_back(u);
    }
  }
  return order;
}

}  // namespace

Aggregates aggregate(const CsrMatrix& s) {
  JAVELIN_CHECK(s.square(), "aggregate requires a square strength graph");
  const index_t n = s.rows();
  Aggregates agg;
  agg.id.assign(static_cast<std::size_t>(n), kInvalidIndex);

  const std::vector<index_t> order = bfs_visit_order(s);

  // Phase 1: a vertex whose strong neighbourhood is entirely unassigned
  // becomes the root of a new aggregate and absorbs that neighbourhood.
  for (index_t v : order) {
    if (agg.id[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    bool free = true;
    for (index_t c : s.row_cols(v)) {
      if (c != v && agg.id[static_cast<std::size_t>(c)] != kInvalidIndex) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    const index_t g = agg.count++;
    agg.id[static_cast<std::size_t>(v)] = g;
    for (index_t c : s.row_cols(v)) {
      if (c != v) agg.id[static_cast<std::size_t>(c)] = g;
    }
  }

  // Phase 2: leftovers join the phase-1 aggregate of their strongest
  // neighbour. Decisions read the phase-1 snapshot so one pass is enough and
  // assignments cannot cascade along a chain within the pass.
  const std::vector<index_t> phase1 = agg.id;
  for (index_t v : order) {
    if (agg.id[static_cast<std::size_t>(v)] != kInvalidIndex) continue;
    index_t best = kInvalidIndex;
    value_t best_w = -1;
    auto cols = s.row_cols(v);
    auto vals = s.row_vals(v);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == v) continue;
      const index_t g = phase1[static_cast<std::size_t>(cols[k])];
      if (g == kInvalidIndex) continue;
      const value_t w = std::abs(vals[k]);
      if (w > best_w) {
        best_w = w;
        best = g;
      }
    }
    agg.id[static_cast<std::size_t>(v)] = best;  // may stay unassigned
  }

  // Phase 3: isolated vertices (no strong connections at all) become
  // singleton aggregates — the smoother handles them alone, but keeping the
  // partition total means P has no zero rows and hierarchy invariants stay
  // simple.
  for (index_t v : order) {
    if (agg.id[static_cast<std::size_t>(v)] == kInvalidIndex) {
      agg.id[static_cast<std::size_t>(v)] = agg.count++;
    }
  }
  return agg;
}

}  // namespace javelin
