// Smoothed-aggregation AMG hierarchy: strength graph → BFS-ordered plain
// aggregation → Jacobi-smoothed prolongation P = (I − ω D_f⁻¹ A_f) T →
// Galerkin coarse operator A_c = Rᵀ A P (R = Pᵀ) via the sparse/ops SpGEMM,
// recursing until the coarsest grid is small enough for a dense LU solve.
// Every stage is deterministic, so the V-cycle built on top is a *fixed*
// preconditioner — safe inside plain PCG without flexible variants.
#pragma once

#include <memory>
#include <vector>

#include "javelin/amg/aggregate.hpp"
#include "javelin/amg/options.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/sparse/spmv.hpp"

namespace javelin {

/// The tentative (piecewise-constant) prolongation of an aggregation:
/// T[i, agg.id[i]] = 1. One nonzero per row, rows sorted trivially.
CsrMatrix tentative_prolongation(const Aggregates& agg);

/// One level of the hierarchy. `p`/`r` map between this level and the next
/// coarser one (empty on the coarsest level). The scratch vectors and the
/// ILU smoother workspace make repeated V-cycles allocation-free.
struct AmgLevel {
  CsrMatrix a;  ///< system operator at this level
  CsrMatrix p;  ///< prolongation: n_this × n_coarser
  CsrMatrix r;  ///< restriction Pᵀ: n_coarser × n_this

  /// Precomputed nnz-balanced partitions for the three spmv hot paths.
  RowPartition part_a, part_p, part_r;

  /// ω/a_ii per row for the damped Jacobi sweeps (damping baked in).
  std::vector<value_t> scaled_inv_diag;
  /// ILU(0) smoother factor (null when this level relaxes with Jacobi).
  std::unique_ptr<Factorization> ilu;
  SolveWorkspace ilu_ws;

  /// V-cycle scratch: rhs/x are this level's restriction target and coarse
  /// correction (unused on the finest level, which works on caller spans).
  std::vector<value_t> x, rhs, resid, tmp;

  /// Aggregate-size histogram of the aggregation that coarsened THIS level
  /// (empty on the coarsest level): aggregate_hist[k] = number of
  /// aggregates with k+1 fine rows. The classic aggregation-quality
  /// metric — a healthy smoothed-aggregation pass clusters around the
  /// stencil size; a spike at 1 (singletons) flags stalled coarsening.
  std::vector<index_t> aggregate_hist;

  index_t n() const noexcept { return a.rows(); }
};

struct AmgHierarchy {
  AmgOptions opts;
  std::vector<AmgLevel> levels;

  /// Coarsest-grid solver: dense LU with partial pivoting when the coarsest
  /// operator densifies comfortably, else a serial ILU(0) apply (stalled
  /// coarsening can leave a large coarsest level; an approximate coarse
  /// solve degrades the cycle gracefully instead of cubing a huge n).
  bool dense_coarse = false;
  std::vector<value_t> dense_lu;   ///< n×n row-major LU factors in place
  std::vector<index_t> dense_piv;  ///< partial-pivoting row swaps
  std::unique_ptr<Factorization> coarse_ilu;
  SolveWorkspace coarse_ws;

  index_t n() const noexcept {
    return levels.empty() ? 0 : levels.front().n();
  }
  int num_levels() const noexcept { return static_cast<int>(levels.size()); }

  /// Σ n_l / n_0 — how much extra vector storage the hierarchy carries.
  double grid_complexity() const noexcept;
  /// Σ nnz(A_l) / nnz(A_0) — how much extra operator storage (the classic
  /// AMG health metric; ~1.1–1.5 is healthy for smoothed aggregation).
  double operator_complexity() const noexcept;
};

/// Build the hierarchy. Requires a square matrix with a structurally present,
/// nonzero diagonal on every Galerkin level (guaranteed for SPD inputs).
AmgHierarchy amg_setup(const CsrMatrix& a, const AmgOptions& opts = {});

}  // namespace javelin
