#include "javelin/amg/hierarchy.hpp"

#include <cmath>
#include <utility>

#include "javelin/amg/strength.hpp"
#include "javelin/sparse/ops.hpp"

namespace javelin {

namespace {

/// In-place dense LU with partial pivoting; `lu` is n×n row-major. Throws on
/// a (numerically) singular coarse operator.
void dense_lu_factor(index_t n, std::vector<value_t>& lu,
                     std::vector<index_t>& piv) {
  piv.resize(static_cast<std::size_t>(n));
  const auto at = [&](index_t r, index_t c) -> value_t& {
    return lu[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(c)];
  };
  for (index_t k = 0; k < n; ++k) {
    index_t p = k;
    value_t best = std::abs(at(k, k));
    for (index_t r = k + 1; r < n; ++r) {
      const value_t m = std::abs(at(r, k));
      if (m > best) {
        best = m;
        p = r;
      }
    }
    JAVELIN_CHECK(best > 0, "singular coarse-grid operator in AMG dense LU");
    piv[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (index_t c = 0; c < n; ++c) std::swap(at(k, c), at(p, c));
    }
    const value_t pivot = at(k, k);
    for (index_t r = k + 1; r < n; ++r) {
      const value_t m = at(r, k) / pivot;
      at(r, k) = m;
      for (index_t c = k + 1; c < n; ++c) at(r, c) -= m * at(k, c);
    }
  }
}

std::vector<value_t> scaled_inverse_diagonal(const CsrMatrix& a,
                                             double omega) {
  std::vector<value_t> d(static_cast<std::size_t>(a.rows()));
  bool bad = false;
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows(); ++r) {
    const value_t v = a.at(r, r);
    if (v == 0) {
#pragma omp atomic write
      bad = true;
      continue;
    }
    d[static_cast<std::size_t>(r)] = static_cast<value_t>(omega) / v;
  }
  JAVELIN_CHECK(!bad, "AMG smoother requires a nonzero diagonal");
  return d;
}

}  // namespace

const char* amg_smoother_name(AmgSmoother s) {
  switch (s) {
    case AmgSmoother::kJacobi:
      return "jacobi";
    case AmgSmoother::kIlu:
      return "ilu";
  }
  return "?";
}

CsrMatrix tentative_prolongation(const Aggregates& agg) {
  const index_t n = static_cast<index_t>(agg.id.size());
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> ci(static_cast<std::size_t>(n));
  std::vector<value_t> vv(static_cast<std::size_t>(n), value_t{1});
  for (index_t i = 0; i <= n; ++i) rp[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) {
    const index_t g = agg.id[static_cast<std::size_t>(i)];
    JAVELIN_CHECK(g >= 0 && g < agg.count,
                  "tentative_prolongation: row outside the aggregation");
    ci[static_cast<std::size_t>(i)] = g;
  }
  return CsrMatrix(n, agg.count, std::move(rp), std::move(ci), std::move(vv));
}

double AmgHierarchy::grid_complexity() const noexcept {
  if (levels.empty() || levels.front().n() == 0) return 0;
  double s = 0;
  for (const AmgLevel& l : levels) s += static_cast<double>(l.n());
  return s / static_cast<double>(levels.front().n());
}

double AmgHierarchy::operator_complexity() const noexcept {
  if (levels.empty() || levels.front().a.nnz() == 0) return 0;
  double s = 0;
  for (const AmgLevel& l : levels) s += static_cast<double>(l.a.nnz());
  return s / static_cast<double>(levels.front().a.nnz());
}

AmgHierarchy amg_setup(const CsrMatrix& a, const AmgOptions& opts) {
  JAVELIN_CHECK(a.square(), "amg_setup requires a square matrix");
  JAVELIN_CHECK(a.rows() > 0, "amg_setup requires a nonempty matrix");

  AmgHierarchy h;
  h.opts = opts;

  CsrMatrix cur = a;
  double eps = opts.strength_threshold;
  for (int lvl = 0;; ++lvl, eps *= opts.strength_decay) {
    h.levels.emplace_back();
    AmgLevel& L = h.levels.back();
    L.a = std::move(cur);
    const index_t n = L.a.rows();

    bool coarsest =
        n <= opts.coarse_grid_size || lvl + 1 >= opts.max_levels;
    CsrMatrix ac;
    if (!coarsest) {
      // One strength classification drives both aggregation (on its
      // symmetrized pattern) and the prolongation filter (row-wise).
      const CsrMatrix strength = strong_connections(L.a, eps);
      const bool strength_sym = pattern_symmetric(strength);
      const CsrMatrix strength_symmetrized =
          strength_sym ? CsrMatrix() : pattern_symmetrize(strength);
      const Aggregates agg =
          aggregate(strength_sym ? strength : strength_symmetrized);
      if (static_cast<double>(agg.count) >=
          opts.min_coarsening_ratio * static_cast<double>(n)) {
        coarsest = true;  // coarsening stalled; solve this level directly
      } else {
        // Aggregation-quality metric surfaced to the bench: sizes per
        // aggregate, folded into a histogram indexed by size - 1.
        std::vector<index_t> size(static_cast<std::size_t>(agg.count), 0);
        for (index_t g : agg.id) ++size[static_cast<std::size_t>(g)];
        for (index_t s : size) {
          if (static_cast<std::size_t>(s) > L.aggregate_hist.size()) {
            L.aggregate_hist.resize(static_cast<std::size_t>(s), 0);
          }
          ++L.aggregate_hist[static_cast<std::size_t>(s) - 1];
        }
        const CsrMatrix t = tentative_prolongation(agg);
        const CsrMatrix s = prolongation_smoother(
            filter_matrix(L.a, strength), opts.prolongation_omega);
        L.p = spgemm(s, t);
        L.r = transpose(L.p);
        ac = spgemm(L.r, spgemm(L.a, L.p));
      }
    }

    // Per-level runtime state. The coarsest level needs no smoother or
    // inter-grid partitions — it is solved directly. The finest level's
    // x/rhs stay empty: the V-cycle works on the caller's spans there, and
    // resid/tmp are only touched by smoothing (non-coarsest levels).
    L.part_a = RowPartition::build(L.a);
    const std::size_t un = static_cast<std::size_t>(n);
    if (lvl > 0) {
      L.x.assign(un, 0);
      L.rhs.assign(un, 0);
    }
    if (!coarsest) {
      L.resid.assign(un, 0);
      L.tmp.assign(un, 0);
      L.part_p = RowPartition::build(L.p);
      L.part_r = RowPartition::build(L.r);
      if (opts.smoother == AmgSmoother::kIlu) {
        IluOptions io = opts.smoother_ilu;
        io.fill_level = 0;
        io.num_threads = opts.num_threads;
        try {
          L.ilu = std::make_unique<Factorization>(ilu_factor(L.a, io));
        } catch (const Error&) {
          L.ilu = nullptr;  // zero pivot etc. — this level relaxes w/ Jacobi
        }
      }
      if (!L.ilu) {
        L.scaled_inv_diag =
            scaled_inverse_diagonal(L.a, opts.jacobi_omega);
      }
      cur = std::move(ac);
      continue;
    }

    // Coarsest-grid solver.
    const index_t dense_cap = std::max<index_t>(opts.coarse_grid_size, 1000);
    if (n <= dense_cap) {
      h.dense_coarse = true;
      h.dense_lu = to_dense(L.a);
      dense_lu_factor(n, h.dense_lu, h.dense_piv);
    } else {
      IluOptions io = opts.smoother_ilu;
      io.fill_level = 0;
      io.num_threads = 1;  // serial plan: exact sweeps, no spin machinery
      h.coarse_ilu = std::make_unique<Factorization>(ilu_factor(L.a, io));
    }
    break;
  }
  return h;
}

}  // namespace javelin
