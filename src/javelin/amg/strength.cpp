#include "javelin/amg/strength.hpp"

#include <cmath>
#include <vector>

#include "javelin/support/scan.hpp"

namespace javelin {

namespace {

/// |a_ii| per row (0 when the diagonal is structurally absent).
std::vector<value_t> abs_diagonal(const CsrMatrix& a) {
  std::vector<value_t> d(static_cast<std::size_t>(a.rows()), value_t{0});
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < a.rows(); ++r) {
    d[static_cast<std::size_t>(r)] = std::abs(a.at(r, r));
  }
  return d;
}

inline bool is_strong(value_t aij, value_t dii, value_t djj, double eps) {
  return std::abs(aij) >
         static_cast<value_t>(eps) * std::sqrt(dii * djj);
}

}  // namespace

CsrMatrix strong_connections(const CsrMatrix& a, double eps) {
  JAVELIN_CHECK(a.square(), "strong_connections requires a square matrix");
  const index_t n = a.rows();
  const std::vector<value_t> d = abs_diagonal(a);

  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    index_t cnt = 0;
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) continue;
      if (is_strong(vals[k], d[static_cast<std::size_t>(r)],
                    d[static_cast<std::size_t>(cols[k])], eps)) {
        ++cnt;
      }
    }
    rp[static_cast<std::size_t>(r) + 1] = cnt;
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));

  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<value_t> vv(static_cast<std::size_t>(rp.back()));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    index_t w = rp[static_cast<std::size_t>(r)];
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r) continue;
      if (!is_strong(vals[k], d[static_cast<std::size_t>(r)],
                     d[static_cast<std::size_t>(cols[k])], eps)) {
        continue;
      }
      ci[static_cast<std::size_t>(w)] = cols[k];
      vv[static_cast<std::size_t>(w)] = vals[k];
      ++w;
    }
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

CsrMatrix filter_matrix(const CsrMatrix& a, const CsrMatrix& strength) {
  JAVELIN_CHECK(a.square(), "filter_matrix requires a square matrix");
  JAVELIN_CHECK(strength.rows() == a.rows(),
                "filter_matrix: strength graph dimension mismatch");
  const index_t n = a.rows();

  // Each output row keeps exactly its strong off-diagonals plus the diagonal.
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    rp[static_cast<std::size_t>(r) + 1] = strength.row_nnz(r) + 1;
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));

  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<value_t> vv(static_cast<std::size_t>(rp.back()));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    auto scols = strength.row_cols(r);
    // Both rows are sorted, so membership in the strength row is a
    // two-pointer walk. Weak off-diagonals are lumped onto the diagonal
    // first; the write pass then emits one sorted row with the diagonal
    // slotted at its position.
    value_t diag = 0;
    {
      std::size_t sp = 0;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == r) {
          diag += vals[k];
          continue;
        }
        if (sp < scols.size() && scols[sp] == cols[k]) {
          ++sp;  // strong: kept as-is below
        } else {
          diag += vals[k];  // weak: lumped
        }
      }
    }
    index_t w = rp[static_cast<std::size_t>(r)];
    bool diag_written = false;
    std::size_t sp = 0;
    for (std::size_t k = 0; k < cols.size() && sp < scols.size(); ++k) {
      if (cols[k] != scols[sp]) continue;
      ++sp;
      if (!diag_written && cols[k] > r) {
        ci[static_cast<std::size_t>(w)] = r;
        vv[static_cast<std::size_t>(w)] = diag;
        ++w;
        diag_written = true;
      }
      ci[static_cast<std::size_t>(w)] = cols[k];
      vv[static_cast<std::size_t>(w)] = vals[k];
      ++w;
    }
    if (!diag_written) {
      ci[static_cast<std::size_t>(w)] = r;
      vv[static_cast<std::size_t>(w)] = diag;
    }
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

CsrMatrix prolongation_smoother(const CsrMatrix& a_f, double omega) {
  const index_t n = a_f.rows();
  CsrMatrix s = a_f;  // same pattern; rewrite the values in place
  const auto ci = s.col_idx();
  auto vv = s.values_mut();
  bool zero_diag = false;  // throwing out of a parallel region is UB
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    const value_t diag = a_f.at(r, r);
    if (diag == 0) {
#pragma omp atomic write
      zero_diag = true;
      continue;
    }
    const value_t scale = static_cast<value_t>(omega) / diag;
    for (index_t k = s.row_begin(r); k < s.row_end(r); ++k) {
      const value_t sv = -scale * vv[static_cast<std::size_t>(k)];
      vv[static_cast<std::size_t>(k)] =
          ci[static_cast<std::size_t>(k)] == r ? value_t{1} + sv : sv;
    }
  }
  JAVELIN_CHECK(!zero_diag, "prolongation_smoother: zero filtered diagonal");
  return s;
}

}  // namespace javelin
