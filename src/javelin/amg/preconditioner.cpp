#include "javelin/amg/preconditioner.hpp"

namespace javelin {

namespace {

/// Solve the coarsest level with the prefactored dense LU (permuted forward
/// substitution, then backward).
void dense_coarse_solve(const AmgHierarchy& h, std::span<const value_t> rhs,
                        std::span<value_t> x) {
  const index_t n = static_cast<index_t>(h.dense_piv.size());
  const auto at = [&](index_t r, index_t c) -> value_t {
    return h.dense_lu[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(c)];
  };
  for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)];
  for (index_t k = 0; k < n; ++k) {
    const index_t p = h.dense_piv[static_cast<std::size_t>(k)];
    if (p != k) std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
    for (index_t r = k + 1; r < n; ++r) {
      x[static_cast<std::size_t>(r)] -= at(r, k) * x[static_cast<std::size_t>(k)];
    }
  }
  for (index_t r = n; r-- > 0;) {
    value_t s = x[static_cast<std::size_t>(r)];
    for (index_t c = r + 1; c < n; ++c) {
      s -= at(r, c) * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = s / at(r, r);
  }
}

void coarse_solve(AmgHierarchy& h, std::span<const value_t> rhs,
                  std::span<value_t> x) {
  if (h.dense_coarse) {
    dense_coarse_solve(h, rhs, x);
  } else {
    // Approximate coarse solve: one serial ILU(0) apply (stalled-coarsening
    // fallback; see amg_setup).
    ilu_apply(*h.coarse_ilu, rhs, x, h.coarse_ws);
  }
}

/// One relaxation sweep: x += M⁻¹ (rhs − A x). `x_is_zero` skips the
/// residual spmv on the first pre-sweep (x = 0 ⇒ resid = rhs).
void smooth(AmgLevel& l, std::span<const value_t> rhs, std::span<value_t> x,
            bool x_is_zero) {
  const std::size_t un = static_cast<std::size_t>(l.n());
  std::span<value_t> resid(l.resid);
  if (x_is_zero) {
    for (std::size_t i = 0; i < un; ++i) resid[i] = rhs[i];
  } else {
    spmv(l.a, l.part_a, x, resid);
    for (std::size_t i = 0; i < un; ++i) resid[i] = rhs[i] - resid[i];
  }
  if (l.ilu) {
    ilu_apply(*l.ilu, resid, l.tmp, l.ilu_ws);
    for (std::size_t i = 0; i < un; ++i) x[i] += l.tmp[i];
  } else {
    for (std::size_t i = 0; i < un; ++i) {
      x[i] += l.scaled_inv_diag[i] * resid[i];
    }
  }
}

void cycle(AmgHierarchy& h, std::size_t lvl, std::span<const value_t> rhs,
           std::span<value_t> x) {
  if (lvl + 1 == h.levels.size()) {
    coarse_solve(h, rhs, x);
    return;
  }
  AmgLevel& l = h.levels[lvl];
  AmgLevel& c = h.levels[lvl + 1];
  const std::size_t un = static_cast<std::size_t>(l.n());

  fill(x.subspan(0, un), 0);
  for (int s = 0; s < h.opts.pre_sweeps; ++s) smooth(l, rhs, x, s == 0);

  // Restrict the residual: c.rhs = R (rhs − A x).
  std::span<value_t> resid(l.resid);
  spmv(l.a, l.part_a, x, resid);
  for (std::size_t i = 0; i < un; ++i) resid[i] = rhs[i] - resid[i];
  spmv(l.r, l.part_r, resid, c.rhs);

  cycle(h, lvl + 1, c.rhs, c.x);

  // Prolongate and correct: x += P x_c.
  spmv(l.p, l.part_p, c.x, l.tmp);
  for (std::size_t i = 0; i < un; ++i) x[i] += l.tmp[i];

  for (int s = 0; s < h.opts.post_sweeps; ++s) smooth(l, rhs, x, false);
}

}  // namespace

void amg_vcycle(AmgHierarchy& h, std::span<const value_t> r,
                std::span<value_t> z) {
  JAVELIN_CHECK(!h.levels.empty(), "amg_vcycle on an empty hierarchy");
  cycle(h, 0, r, z);
}

}  // namespace javelin
