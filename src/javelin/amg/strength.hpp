// Strength-of-connection classification (smoothed aggregation, Vaněk et al.):
// an off-diagonal (i,j) is strong iff |a_ij| > ε·sqrt(|a_ii|·|a_jj|). The
// strong graph drives aggregation; the filtered matrix (weak entries lumped
// onto the diagonal) drives prolongation smoothing.
#pragma once

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Strong off-diagonal connections of `a` (diagonal excluded, values kept).
/// Row-parallel, output uniquely determined by the input.
CsrMatrix strong_connections(const CsrMatrix& a, double eps);

/// Filtered matrix A_f: diagonal plus strong off-diagonals, with every weak
/// off-diagonal value added to its row's diagonal (lumping preserves row
/// sums, so the smoothed prolongation reproduces constants exactly on
/// M-matrices). `strength` is the strong_connections(a, ε) graph — the one
/// classification drives both aggregation and filtering, so the strength
/// rule has a single definition.
CsrMatrix filter_matrix(const CsrMatrix& a, const CsrMatrix& strength);

/// The Jacobi prolongation smoother operator S = I − ω D_f⁻¹ A_f assembled
/// as CSR (same pattern as A_f). Throws on a zero filtered diagonal.
CsrMatrix prolongation_smoother(const CsrMatrix& a_f, double omega);

}  // namespace javelin
