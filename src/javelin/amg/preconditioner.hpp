// V-cycle application and the AmgPreconditioner packaging that sits behind
// the same PrecondFn interface as IluPreconditioner, so pcg/gmres and the
// bench driver swap preconditioners without code changes (the amgcl wrapping
// pattern solver/krylov.hpp already mirrors).
#pragma once

#include <span>

#include "javelin/amg/hierarchy.hpp"
#include "javelin/solver/krylov.hpp"

namespace javelin {

/// One V(pre_sweeps, post_sweeps) cycle: z = B r with B the AMG operator.
/// r and z have the fine dimension and must not alias. Mutates only the
/// hierarchy's scratch state, so the operator itself is fixed: identical r
/// yields bitwise-identical z (all smoothers ride the deterministic
/// spmv/ilu_apply kernels).
void amg_vcycle(AmgHierarchy& h, std::span<const value_t> r,
                std::span<value_t> z);

/// Setup-once / apply-thousands packaging of the AMG hierarchy, mirroring
/// IluPreconditioner. Not safe for concurrent apply() on one instance.
class AmgPreconditioner {
 public:
  AmgPreconditioner(const CsrMatrix& a, const AmgOptions& opts = {})
      : h_(amg_setup(a, opts)) {}
  explicit AmgPreconditioner(AmgHierarchy h) : h_(std::move(h)) {}

  void apply(std::span<const value_t> r, std::span<value_t> z) const {
    amg_vcycle(h_, r, z);
  }

  /// Adapter for the solver drivers.
  PrecondFn fn() const {
    return [this](std::span<const value_t> r, std::span<value_t> z) {
      apply(r, z);
    };
  }

  const AmgHierarchy& hierarchy() const noexcept { return h_; }
  AmgHierarchy& hierarchy() noexcept { return h_; }

 private:
  mutable AmgHierarchy h_;  // scratch vectors and spin counters mutate
};

}  // namespace javelin
