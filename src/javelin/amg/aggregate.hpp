// Plain (unsmoothed) aggregation over the strength-of-connection graph.
// Vertices are visited in BFS order from a pseudo-peripheral vertex of each
// component (reusing the graph/ utilities that already feed RCM), which
// keeps aggregates compact and the coarse numbering bandwidth-friendly —
// the coarse operators feed straight back into the ILU planner, whose level
// structure rewards locality.
#pragma once

#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

struct Aggregates {
  /// Aggregate id per fine row; every row is assigned (isolated vertices
  /// become singletons), so `id` is a partition of [0, n) into `count` sets.
  std::vector<index_t> id;
  index_t count = 0;
};

/// Greedy aggregation on `strength` (treated as undirected; callers pass a
/// pattern-symmetrized strength graph). Three phases in BFS visit order:
/// root aggregates around vertices with no aggregated strong neighbour,
/// leftover vertices joining their strongest phase-1 neighbour, and
/// singletons for anything still unassigned. Serial and deterministic.
Aggregates aggregate(const CsrMatrix& strength);

}  // namespace javelin
