// User-facing options of the smoothed-aggregation AMG preconditioner.
//
// The hierarchy composes every existing Javelin layer: strength-filtered
// aggregation over the graph/ BFS utilities, Galerkin coarse operators via
// the sparse/ops SpGEMM, and smoothing sweeps that are either damped Jacobi
// (partitioned spmv) or the paper's own P2P ilu_apply — the ILU machinery
// becoming one level of an O(n) preconditioner (amgcl's architecture,
// Javelin's kernels).
#pragma once

#include "javelin/ilu/options.hpp"
#include "javelin/support/types.hpp"

namespace javelin {

/// Relaxation used for the pre/post sweeps of the V-cycle.
enum class AmgSmoother {
  kJacobi,  ///< damped Jacobi: x += ω D⁻¹ (r − A x)
  kIlu,     ///< ILU(0) sweep: x += (L U)⁻¹ (r − A x) via the P2P stri path
};

const char* amg_smoother_name(AmgSmoother s);

struct AmgOptions {
  // --- coarsening ----------------------------------------------------------
  /// Strength-of-connection threshold ε: (i,j) is strong iff
  /// |a_ij| > ε·sqrt(|a_ii|·|a_jj|). Smaller keeps more edges (slower
  /// coarsening, stronger interpolation).
  double strength_threshold = 0.08;
  /// Per-level multiplier on ε (amgcl convention): Galerkin operators pick
  /// up small smoothing tails, so a fixed threshold stalls coarsening one
  /// level down — relaxing it geometrically keeps aggregation moving.
  double strength_decay = 0.5;
  /// Damping ω of the Jacobi prolongation smoother P = (I − ω D_f⁻¹ A_f) T.
  double prolongation_omega = 2.0 / 3.0;
  /// Stop coarsening once a level has at most this many rows; that level is
  /// solved directly (dense LU with partial pivoting).
  index_t coarse_grid_size = 200;
  /// Hard cap on hierarchy depth.
  int max_levels = 20;
  /// Abort coarsening (treat the current level as coarsest) when aggregation
  /// shrinks the level by less than this factor — stalled coarsening on
  /// graphs with no strong connections must not recurse forever.
  double min_coarsening_ratio = 0.9;

  // --- smoothing -----------------------------------------------------------
  AmgSmoother smoother = AmgSmoother::kIlu;
  /// Damping ω of the Jacobi relaxation sweeps.
  double jacobi_omega = 2.0 / 3.0;
  int pre_sweeps = 1;
  int post_sweeps = 1;
  /// Options forwarded to the per-level ILU(0) smoother factorizations
  /// (fill_level is forced to 0; the smoother is a relaxation, not a solve).
  /// This includes the execution backend and retarget policy, so AMG
  /// smoothing sweeps ride the same exec/ layer as the standalone solves.
  IluOptions smoother_ilu;
  /// Thread count the per-level ILU plans are built for; <= 0 means the
  /// OpenMP default.
  int num_threads = 0;
};

}  // namespace javelin
