// Greedy minimum-degree ordering on the quotient (elimination) graph.
//
// A faithful AMD has supervariable detection and approximate degree updates;
// this implementation keeps the classic exact external-degree algorithm with
// element absorption, which produces orderings of the same family/quality
// class at O(n log n + fill) cost — sufficient for the Table II iteration
// count study (what matters there is the *fill character* of the ordering,
// not its construction speed).
#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "javelin/order/orderings.hpp"
#include "javelin/sparse/ops.hpp"

namespace javelin {

namespace {

struct MinDegGraph {
  // Quotient graph: each vertex keeps a set of adjacent *variables* and a set
  // of adjacent *elements* (eliminated cliques). Element vertices keep the
  // list of their boundary variables.
  std::vector<std::vector<index_t>> var_adj;   // variable -> variables
  std::vector<std::vector<index_t>> elem_adj;  // variable -> elements
  std::vector<std::vector<index_t>> elem_vars; // element -> boundary variables
};

void sort_unique(std::vector<index_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<index_t> min_degree_order(const CsrMatrix& a) {
  JAVELIN_CHECK(a.square(), "ordering requires a square matrix");
  const CsrMatrix sym = pattern_symmetric(a) ? a : pattern_symmetrize(a);
  const index_t n = sym.rows();

  MinDegGraph g;
  g.var_adj.resize(static_cast<std::size_t>(n));
  g.elem_adj.resize(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    for (index_t c : sym.row_cols(v)) {
      if (c != v) g.var_adj[static_cast<std::size_t>(v)].push_back(c);
    }
  }

  std::vector<bool> eliminated(static_cast<std::size_t>(n), false);
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  // (degree, vertex) priority set; exact updates keep it consistent.
  std::set<std::pair<index_t, index_t>> heap;
  for (index_t v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] =
        static_cast<index_t>(g.var_adj[static_cast<std::size_t>(v)].size());
    heap.emplace(degree[static_cast<std::size_t>(v)], v);
  }

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> boundary;  // scratch: neighbourhood of the pivot
  std::vector<bool> in_boundary(static_cast<std::size_t>(n), false);

  while (!heap.empty()) {
    const auto [deg, p] = *heap.begin();
    heap.erase(heap.begin());
    if (eliminated[static_cast<std::size_t>(p)] ||
        deg != degree[static_cast<std::size_t>(p)]) {
      continue;  // stale heap entry
    }
    eliminated[static_cast<std::size_t>(p)] = true;
    order.push_back(p);

    // Reachable set of p = adjacent variables ∪ boundary vars of adjacent
    // elements, minus eliminated vertices and p itself.
    boundary.clear();
    for (index_t v : g.var_adj[static_cast<std::size_t>(p)]) {
      if (!eliminated[static_cast<std::size_t>(v)] && !in_boundary[static_cast<std::size_t>(v)]) {
        in_boundary[static_cast<std::size_t>(v)] = true;
        boundary.push_back(v);
      }
    }
    for (index_t e : g.elem_adj[static_cast<std::size_t>(p)]) {
      for (index_t v : g.elem_vars[static_cast<std::size_t>(e)]) {
        if (v != p && !eliminated[static_cast<std::size_t>(v)] &&
            !in_boundary[static_cast<std::size_t>(v)]) {
          in_boundary[static_cast<std::size_t>(v)] = true;
          boundary.push_back(v);
        }
      }
      g.elem_vars[static_cast<std::size_t>(e)].clear();  // absorbed into new element
    }

    // Create the new element for p.
    const index_t elem_id = static_cast<index_t>(g.elem_vars.size());
    g.elem_vars.push_back(boundary);

    // Update every boundary variable: drop p and absorbed elements, add the
    // new element, recompute exact external degree.
    for (index_t v : boundary) {
      auto& vadj = g.var_adj[static_cast<std::size_t>(v)];
      vadj.erase(std::remove_if(vadj.begin(), vadj.end(),
                                [&](index_t u) {
                                  return u == p || eliminated[static_cast<std::size_t>(u)];
                                }),
                 vadj.end());
      auto& eadj = g.elem_adj[static_cast<std::size_t>(v)];
      eadj.erase(std::remove_if(eadj.begin(), eadj.end(),
                                [&](index_t e) {
                                  return g.elem_vars[static_cast<std::size_t>(e)].empty();
                                }),
                 eadj.end());
      eadj.push_back(elem_id);

      // Exact external degree: |vars| + |union of element boundaries| minus
      // overlaps. Compute via a local mark pass.
      std::vector<index_t> reach = vadj;
      for (index_t e : eadj) {
        for (index_t u : g.elem_vars[static_cast<std::size_t>(e)]) {
          if (u != v && !eliminated[static_cast<std::size_t>(u)]) reach.push_back(u);
        }
      }
      sort_unique(reach);
      const index_t nd = static_cast<index_t>(reach.size());
      if (nd != degree[static_cast<std::size_t>(v)]) {
        degree[static_cast<std::size_t>(v)] = nd;
      }
      heap.emplace(nd, v);  // may create a stale duplicate; filtered on pop
    }
    for (index_t v : boundary) in_boundary[static_cast<std::size_t>(v)] = false;
    g.var_adj[static_cast<std::size_t>(p)].clear();
    g.elem_adj[static_cast<std::size_t>(p)].clear();
  }

  JAVELIN_CHECK(static_cast<index_t>(order.size()) == n,
                "min-degree did not order all vertices");
  return order;
}

}  // namespace javelin
