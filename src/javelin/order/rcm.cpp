#include <algorithm>

#include "javelin/graph/bfs.hpp"
#include "javelin/order/orderings.hpp"
#include "javelin/sparse/ops.hpp"

namespace javelin {

namespace {

std::vector<index_t> cuthill_mckee(const CsrMatrix& sym) {
  const index_t n = sym.rows();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) degree[static_cast<std::size_t>(v)] = sym.row_nnz(v);

  std::vector<index_t> nbrs;
  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const index_t start = pseudo_peripheral_vertex(sym, seed);
    // BFS with degree-sorted neighbour expansion.
    std::size_t head = order.size();
    order.push_back(start);
    visited[static_cast<std::size_t>(start)] = true;
    while (head < order.size()) {
      const index_t v = order[head++];
      nbrs.clear();
      for (index_t c : sym.row_cols(v)) {
        if (c != v && !visited[static_cast<std::size_t>(c)]) {
          visited[static_cast<std::size_t>(c)] = true;
          nbrs.push_back(c);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        const index_t dx = degree[static_cast<std::size_t>(x)];
        const index_t dy = degree[static_cast<std::size_t>(y)];
        return dx != dy ? dx < dy : x < y;
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }
  return order;
}

}  // namespace

std::vector<index_t> cm_order(const CsrMatrix& a) {
  JAVELIN_CHECK(a.square(), "ordering requires a square matrix");
  const CsrMatrix sym = pattern_symmetric(a) ? a : pattern_symmetrize(a);
  return cuthill_mckee(sym);
}

std::vector<index_t> rcm_order(const CsrMatrix& a) {
  std::vector<index_t> order = cm_order(a);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<index_t> natural_order(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  return p;
}

const char* ordering_name(OrderingKind k) {
  switch (k) {
    case OrderingKind::kNatural: return "NAT";
    case OrderingKind::kRcm: return "RCM";
    case OrderingKind::kMinDegree: return "AMD";
    case OrderingKind::kNestedDissection: return "ND";
  }
  return "?";
}

std::vector<index_t> make_ordering(const CsrMatrix& a, OrderingKind k) {
  switch (k) {
    case OrderingKind::kNatural: return natural_order(a.rows());
    case OrderingKind::kRcm: return rcm_order(a);
    case OrderingKind::kMinDegree: return min_degree_order(a);
    case OrderingKind::kNestedDissection: return nested_dissection_order(a);
  }
  throw Error("unknown ordering kind");
}

}  // namespace javelin
