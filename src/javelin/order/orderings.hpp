// Fill-reducing and bandwidth-reducing orderings (paper §IV "Preordering",
// §VII Table II). All orderings return a NEW-TO-OLD permutation: row r of the
// permuted matrix is row perm[r] of the input. Apply with permute_symmetric.
//
// The paper uses SYMAMD, RCM, METIS nested dissection, natural order, and a
// Dulmage–Mendelsohn step to cover the diagonal; all are implemented here
// from scratch (see DESIGN.md substitution table).
#pragma once

#include <span>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Reverse Cuthill–McKee on the symmetrized pattern. Processes every
/// connected component from a pseudo-peripheral start; neighbours are visited
/// in increasing-degree order; the final order is reversed.
std::vector<index_t> rcm_order(const CsrMatrix& a);

/// Plain Cuthill–McKee (unreversed) — exposed for tests/ablation.
std::vector<index_t> cm_order(const CsrMatrix& a);

/// Minimum-degree ordering (quotient-graph flavour with mass elimination of
/// indistinguishable supervariables omitted; external-degree greedy). Stands
/// in for SYMAMD/AMD in Table II.
std::vector<index_t> min_degree_order(const CsrMatrix& a);

/// Options for nested dissection.
struct NdOptions {
  index_t leaf_size = 64;   ///< stop recursing below this many vertices
  int max_depth = 48;       ///< recursion guard
};

/// Recursive nested dissection: BFS-halving edge separator converted to a
/// vertex separator; parts ordered recursively, separator last. Stands in for
/// METIS ND.
std::vector<index_t> nested_dissection_order(const CsrMatrix& a,
                                             const NdOptions& opts = {});

/// Natural ordering (identity permutation of size n).
std::vector<index_t> natural_order(index_t n);

/// Maximum-transversal row permutation (Dulmage–Mendelsohn first phase):
/// permutes rows so every diagonal entry is structurally nonzero, via
/// Hopcroft–Karp maximum bipartite matching on the pattern. Throws Error if
/// the matrix is structurally singular. Returns new-to-old row permutation.
std::vector<index_t> dulmage_mendelsohn_rows(const CsrMatrix& a);

/// Maximum bipartite matching (rows -> cols) by Hopcroft–Karp; returns for
/// each column the matched row (kInvalidIndex if unmatched) and the matching
/// size. Exposed for tests.
struct Matching {
  std::vector<index_t> row_of_col;
  std::vector<index_t> col_of_row;
  index_t size = 0;
};
Matching hopcroft_karp(const CsrMatrix& a);

/// Names used by the Table-II bench and the sensitivity example.
enum class OrderingKind { kNatural, kRcm, kMinDegree, kNestedDissection };

const char* ordering_name(OrderingKind k);

std::vector<index_t> make_ordering(const CsrMatrix& a, OrderingKind k);

}  // namespace javelin
