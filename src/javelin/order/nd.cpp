// Recursive nested dissection.
//
// Separator construction: BFS from a pseudo-peripheral vertex, split the
// level structure at the median vertex count (edge separator), then take the
// smaller-side endpoints of cut edges as the vertex separator. Parts are
// ordered recursively; separator vertices come last (so elimination of the
// parts is independent) — the standard ND layout parallel factorization
// expects (paper §IV cites METIS ND as the default preorder).
#include <algorithm>
#include <vector>

#include "javelin/graph/bfs.hpp"
#include "javelin/order/orderings.hpp"
#include "javelin/sparse/ops.hpp"

namespace javelin {

namespace {

struct NdContext {
  const CsrMatrix* sym = nullptr;
  NdOptions opts;
  std::vector<index_t> result;      // filled back-to-front is awkward; append
  std::vector<index_t> local2global;
};

/// Extract the subgraph induced by `verts` (global ids) as CSR pattern with
/// local ids; returns the local adjacency and writes the local->global map.
CsrMatrix induced_subgraph(const CsrMatrix& sym, std::span<const index_t> verts,
                           std::vector<index_t>& local2global,
                           std::vector<index_t>& global2local) {
  local2global.assign(verts.begin(), verts.end());
  for (std::size_t i = 0; i < verts.size(); ++i) {
    global2local[static_cast<std::size_t>(verts[i])] = static_cast<index_t>(i);
  }
  const index_t ln = static_cast<index_t>(verts.size());
  std::vector<index_t> rp(static_cast<std::size_t>(ln) + 1, 0);
  std::vector<index_t> ci;
  for (index_t lv = 0; lv < ln; ++lv) {
    const index_t gv = local2global[static_cast<std::size_t>(lv)];
    for (index_t gc : sym.row_cols(gv)) {
      if (gc == gv) continue;
      const index_t lc = global2local[static_cast<std::size_t>(gc)];
      if (lc != kInvalidIndex) ci.push_back(lc);
    }
    rp[static_cast<std::size_t>(lv) + 1] = static_cast<index_t>(ci.size());
  }
  std::vector<value_t> vv(ci.size(), value_t{1});
  CsrMatrix sub(ln, ln, std::move(rp), std::move(ci), std::move(vv));
  // Reset the scatter map for the caller's next use.
  for (index_t v : verts) global2local[static_cast<std::size_t>(v)] = kInvalidIndex;
  return sub;
}

void nd_recurse(const CsrMatrix& graph, std::span<const index_t> to_global,
                const NdOptions& opts, int depth, std::vector<index_t>& out,
                std::vector<index_t>& global2local_scratch) {
  const index_t n = graph.rows();
  if (n <= opts.leaf_size || depth >= opts.max_depth) {
    // Leaf: order by (reversed) Cuthill–McKee locally for cache behaviour.
    std::vector<index_t> local = rcm_order(graph);
    for (index_t lv : local) out.push_back(to_global[static_cast<std::size_t>(lv)]);
    return;
  }

  // BFS level structure from a pseudo-peripheral vertex of the largest
  // component. Unreached vertices (other components) go to part B.
  const index_t start = pseudo_peripheral_vertex(graph, 0);
  const BfsResult b = bfs(graph, start);

  // Choose the split level so part A holds ~half the reached vertices.
  std::vector<char> side(static_cast<std::size_t>(n), 2);  // 0=A, 1=B, 2=unreached->B
  index_t reached = 0;
  for (index_t v = 0; v < n; ++v) {
    if (b.distance[static_cast<std::size_t>(v)] != kInvalidIndex) ++reached;
  }
  // Histogram distances.
  std::vector<index_t> by_dist(static_cast<std::size_t>(b.eccentricity) + 2, 0);
  for (index_t v = 0; v < n; ++v) {
    const index_t d = b.distance[static_cast<std::size_t>(v)];
    if (d != kInvalidIndex) ++by_dist[static_cast<std::size_t>(d)];
  }
  index_t half = reached / 2;
  index_t split = 0;
  index_t acc = 0;
  for (std::size_t d = 0; d < by_dist.size(); ++d) {
    acc += by_dist[d];
    if (acc >= half) {
      split = static_cast<index_t>(d);
      break;
    }
  }
  for (index_t v = 0; v < n; ++v) {
    const index_t d = b.distance[static_cast<std::size_t>(v)];
    side[static_cast<std::size_t>(v)] = (d != kInvalidIndex && d <= split) ? 0 : 1;
  }

  // Vertex separator: A-side endpoints of A–B cut edges.
  std::vector<char> in_sep(static_cast<std::size_t>(n), 0);
  for (index_t v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] != 0) continue;
    for (index_t c : graph.row_cols(v)) {
      if (c != v && side[static_cast<std::size_t>(c)] == 1) {
        in_sep[static_cast<std::size_t>(v)] = 1;
        break;
      }
    }
  }

  std::vector<index_t> part_a, part_b, sep;
  for (index_t v = 0; v < n; ++v) {
    if (in_sep[static_cast<std::size_t>(v)]) {
      sep.push_back(v);
    } else if (side[static_cast<std::size_t>(v)] == 0) {
      part_a.push_back(v);
    } else {
      part_b.push_back(v);
    }
  }

  // Degenerate split (e.g. a clique): fall back to RCM to guarantee progress.
  if (part_a.empty() || part_b.empty()) {
    std::vector<index_t> local = rcm_order(graph);
    for (index_t lv : local) out.push_back(to_global[static_cast<std::size_t>(lv)]);
    return;
  }

  for (std::span<const index_t> part : {std::span<const index_t>(part_a),
                                        std::span<const index_t>(part_b)}) {
    std::vector<index_t> sub2local;
    const CsrMatrix sub =
        induced_subgraph(graph, part, sub2local, global2local_scratch);
    std::vector<index_t> sub2global(sub2local.size());
    for (std::size_t i = 0; i < sub2local.size(); ++i) {
      sub2global[i] = to_global[static_cast<std::size_t>(sub2local[i])];
    }
    nd_recurse(sub, sub2global, opts, depth + 1, out, global2local_scratch);
  }
  for (index_t v : sep) out.push_back(to_global[static_cast<std::size_t>(v)]);
}

}  // namespace

std::vector<index_t> nested_dissection_order(const CsrMatrix& a,
                                             const NdOptions& opts) {
  JAVELIN_CHECK(a.square(), "ordering requires a square matrix");
  const CsrMatrix sym = pattern_symmetric(a) ? a : pattern_symmetrize(a);
  const index_t n = sym.rows();
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> ident = natural_order(n);
  std::vector<index_t> scratch(static_cast<std::size_t>(n), kInvalidIndex);
  nd_recurse(sym, ident, opts, 0, out, scratch);
  JAVELIN_CHECK(static_cast<index_t>(out.size()) == n,
                "nested dissection did not order all vertices");
  return out;
}

}  // namespace javelin
