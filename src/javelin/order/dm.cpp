// Maximum transversal via Hopcroft–Karp and the Dulmage–Mendelsohn row
// permutation that moves a structural maximum matching onto the diagonal
// (paper §IV: "A Dulmage-Mendelsohn ordering is used to move nonzeros to the
// diagonal of the matrix").
#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "javelin/order/orderings.hpp"

namespace javelin {

namespace {
constexpr index_t kInf = std::numeric_limits<index_t>::max();
}

Matching hopcroft_karp(const CsrMatrix& a) {
  const index_t nr = a.rows();
  const index_t nc = a.cols();
  Matching m;
  m.col_of_row.assign(static_cast<std::size_t>(nr), kInvalidIndex);
  m.row_of_col.assign(static_cast<std::size_t>(nc), kInvalidIndex);

  std::vector<index_t> dist(static_cast<std::size_t>(nr));
  std::vector<index_t> queue_buf;
  queue_buf.reserve(static_cast<std::size_t>(nr));

  // BFS phase: layers of alternating paths from free rows.
  const auto bfs_phase = [&]() -> bool {
    queue_buf.clear();
    for (index_t r = 0; r < nr; ++r) {
      if (m.col_of_row[static_cast<std::size_t>(r)] == kInvalidIndex) {
        dist[static_cast<std::size_t>(r)] = 0;
        queue_buf.push_back(r);
      } else {
        dist[static_cast<std::size_t>(r)] = kInf;
      }
    }
    bool found_free_col = false;
    std::size_t head = 0;
    while (head < queue_buf.size()) {
      const index_t r = queue_buf[head++];
      for (index_t c : a.row_cols(r)) {
        const index_t r2 = m.row_of_col[static_cast<std::size_t>(c)];
        if (r2 == kInvalidIndex) {
          found_free_col = true;
        } else if (dist[static_cast<std::size_t>(r2)] == kInf) {
          dist[static_cast<std::size_t>(r2)] = dist[static_cast<std::size_t>(r)] + 1;
          queue_buf.push_back(r2);
        }
      }
    }
    return found_free_col;
  };

  // DFS phase: augment along layered paths.
  const std::function<bool(index_t)> try_augment = [&](index_t r) -> bool {
    for (index_t c : a.row_cols(r)) {
      const index_t r2 = m.row_of_col[static_cast<std::size_t>(c)];
      if (r2 == kInvalidIndex ||
          (dist[static_cast<std::size_t>(r2)] == dist[static_cast<std::size_t>(r)] + 1 &&
           try_augment(r2))) {
        m.col_of_row[static_cast<std::size_t>(r)] = c;
        m.row_of_col[static_cast<std::size_t>(c)] = r;
        return true;
      }
    }
    dist[static_cast<std::size_t>(r)] = kInf;
    return false;
  };

  while (bfs_phase()) {
    for (index_t r = 0; r < nr; ++r) {
      if (m.col_of_row[static_cast<std::size_t>(r)] == kInvalidIndex &&
          try_augment(r)) {
        ++m.size;
      }
    }
  }
  return m;
}

std::vector<index_t> dulmage_mendelsohn_rows(const CsrMatrix& a) {
  JAVELIN_CHECK(a.square(), "DM row permutation requires a square matrix");
  const Matching m = hopcroft_karp(a);
  JAVELIN_CHECK(m.size == a.rows(),
                "matrix is structurally singular: no full transversal");
  // Row r of the permuted matrix should be the input row matched to column r,
  // so that entry (row_of_col[r], r) lands on the diagonal.
  return m.row_of_col;
}

}  // namespace javelin
