#include "javelin/graph/bfs.hpp"

#include <algorithm>
#include <limits>

namespace javelin {

BfsResult bfs(const CsrMatrix& a, index_t source) {
  const index_t n = a.rows();
  JAVELIN_CHECK(source >= 0 && source < n, "BFS source out of range");
  BfsResult res;
  res.distance.assign(static_cast<std::size_t>(n), kInvalidIndex);
  res.order.reserve(static_cast<std::size_t>(n));
  res.distance[static_cast<std::size_t>(source)] = 0;
  res.order.push_back(source);
  std::size_t head = 0;
  index_t current_level = 0;
  res.last_level_begin = 0;
  while (head < res.order.size()) {
    const index_t v = res.order[head++];
    const index_t dv = res.distance[static_cast<std::size_t>(v)];
    if (dv > current_level) {
      current_level = dv;
      res.last_level_begin = static_cast<index_t>(head) - 1;
    }
    for (index_t c : a.row_cols(v)) {
      if (c == v) continue;
      if (res.distance[static_cast<std::size_t>(c)] == kInvalidIndex) {
        res.distance[static_cast<std::size_t>(c)] = dv + 1;
        res.order.push_back(c);
      }
    }
  }
  res.eccentricity = current_level;
  // If the frontier grew past the loop (vertices discovered at a deeper level
  // than any dequeued), recompute last level boundary precisely.
  if (!res.order.empty()) {
    const index_t deepest = res.distance[static_cast<std::size_t>(res.order.back())];
    res.eccentricity = deepest;
    index_t i = static_cast<index_t>(res.order.size()) - 1;
    while (i > 0 &&
           res.distance[static_cast<std::size_t>(res.order[static_cast<std::size_t>(i) - 1])] == deepest) {
      --i;
    }
    res.last_level_begin = i;
  }
  return res;
}

index_t pseudo_peripheral_vertex(const CsrMatrix& a, index_t start) {
  index_t v = start;
  BfsResult r = bfs(a, v);
  for (int iter = 0; iter < 8; ++iter) {  // bounded: converges in a few steps
    // Pick the minimum-degree vertex of the last level.
    index_t best = v;
    index_t best_deg = std::numeric_limits<index_t>::max();
    for (std::size_t i = static_cast<std::size_t>(r.last_level_begin); i < r.order.size(); ++i) {
      const index_t u = r.order[i];
      const index_t deg = a.row_nnz(u);
      if (deg < best_deg) {
        best_deg = deg;
        best = u;
      }
    }
    if (best == v) break;
    BfsResult r2 = bfs(a, best);
    if (r2.eccentricity <= r.eccentricity) break;
    v = best;
    r = std::move(r2);
  }
  return v;
}

Components connected_components(const CsrMatrix& a) {
  const index_t n = a.rows();
  Components comps;
  comps.component.assign(static_cast<std::size_t>(n), kInvalidIndex);
  std::vector<index_t> stack;
  for (index_t s = 0; s < n; ++s) {
    if (comps.component[static_cast<std::size_t>(s)] != kInvalidIndex) continue;
    const index_t id = comps.count++;
    stack.push_back(s);
    comps.component[static_cast<std::size_t>(s)] = id;
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (index_t c : a.row_cols(v)) {
        if (c != v && comps.component[static_cast<std::size_t>(c)] == kInvalidIndex) {
          comps.component[static_cast<std::size_t>(c)] = id;
          stack.push_back(c);
        }
      }
    }
  }
  return comps;
}

}  // namespace javelin
