// Breadth-first traversal utilities over the symmetric adjacency of a CSR
// pattern: distances, pseudo-peripheral vertex search (George–Liu), and
// connected components. These feed the RCM and nested-dissection orderings.
#pragma once

#include <span>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Undirected adjacency of a square pattern. If the pattern is already
/// symmetric the matrix is used as-is; otherwise callers should symmetrize
/// first (the orderings do).
struct BfsResult {
  std::vector<index_t> distance;  ///< -1 for unreached vertices
  std::vector<index_t> order;     ///< vertices in visit order
  index_t eccentricity = 0;       ///< max finite distance
  index_t last_level_begin = 0;   ///< index into `order` of the last level
};

/// BFS from `source` over the pattern of `a` (treated as undirected; both
/// (r,c) and (c,r) edges must be present for symmetric traversal).
BfsResult bfs(const CsrMatrix& a, index_t source);

/// George–Liu pseudo-peripheral vertex: repeatedly BFS and jump to a
/// smallest-degree vertex of the last level until eccentricity stops growing.
index_t pseudo_peripheral_vertex(const CsrMatrix& a, index_t start);

/// Connected components of the undirected pattern; returns component id per
/// vertex and the number of components.
struct Components {
  std::vector<index_t> component;
  index_t count = 0;
};
Components connected_components(const CsrMatrix& a);

}  // namespace javelin
