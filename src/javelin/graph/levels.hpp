// Level-set (level scheduling) computation on triangular dependency patterns.
//
// For a lower-triangular pattern L, level(i) = 1 + max{ level(j) : j < i and
// L(i, j) != 0 }, with level 0 for rows with no strictly-lower off-diagonals.
// Rows in the same level are mutually independent and can be factored/solved
// concurrently (paper §II "level scheduling", Fig. 2).
//
// Javelin computes levels either for lower(A) or lower(A + Aᵀ); the latter is
// the default because it additionally guarantees that columns inside a level
// have no U-side coupling, which the SR lower stage requires (paper §III-B).
#pragma once

#include <span>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Which pattern drives the level computation (paper §III, §VII Table IV).
enum class LevelPattern {
  kLowerA,          ///< strictly-lower pattern of A itself
  kLowerASymmetric  ///< strictly-lower pattern of A + Aᵀ (default)
};

/// The result of level scheduling.
struct LevelSets {
  /// level[i] = level of row i (in the *input* row numbering).
  std::vector<index_t> level;
  /// Rows grouped by level: rows_by_level[level_ptr[l] .. level_ptr[l+1]) are
  /// the rows of level l, listed in ascending row order.
  std::vector<index_t> level_ptr;
  std::vector<index_t> rows_by_level;

  index_t num_levels() const noexcept {
    return static_cast<index_t>(level_ptr.size()) - 1;
  }
  index_t level_size(index_t l) const noexcept {
    return level_ptr[static_cast<std::size_t>(l) + 1] - level_ptr[static_cast<std::size_t>(l)];
  }
  std::span<const index_t> level_rows(index_t l) const noexcept {
    return std::span<const index_t>(rows_by_level)
        .subspan(static_cast<std::size_t>(level_ptr[static_cast<std::size_t>(l)]),
                 static_cast<std::size_t>(level_size(l)));
  }

  /// Summary statistics over level sizes (paper Tables III/IV columns).
  struct Stats {
    index_t num_levels = 0;
    index_t min_rows = 0;
    index_t max_rows = 0;
    double median_rows = 0;
  };
  Stats stats() const;
};

/// Compute level sets of the strictly-lower triangular dependency pattern of
/// `a` (pattern selected by `pattern`). The matrix must be square.
LevelSets compute_level_sets(const CsrMatrix& a,
                             LevelPattern pattern = LevelPattern::kLowerASymmetric);

/// Level sets for a matrix that is *already* strictly lower triangular (or
/// for any matrix where only entries with col < row should be considered).
LevelSets compute_level_sets_lower(const CsrMatrix& lower);

/// Level sets of the strictly-UPPER pattern processed in reverse row order —
/// the dependency structure of the backward (U) triangular solve.
LevelSets compute_level_sets_upper(const CsrMatrix& upper);

/// New-to-old permutation that orders rows by (level, row). This is the
/// level-set ordering ("LS-*" orderings of paper Table II).
std::vector<index_t> level_order_permutation(const LevelSets& ls);

}  // namespace javelin
