#include "javelin/graph/levels.hpp"

#include <algorithm>

#include "javelin/sparse/ops.hpp"
#include "javelin/support/scan.hpp"
#include "javelin/support/stats.hpp"

namespace javelin {

namespace {

/// Shared worker: levels from a "for each row r, iterate dependency columns
/// c < r" accessor.
template <class DepCols>
LevelSets levels_from_deps(index_t n, DepCols dep_cols) {
  LevelSets ls;
  ls.level.assign(static_cast<std::size_t>(n), 0);
  index_t max_level = -1;
  for (index_t r = 0; r < n; ++r) {
    index_t lv = 0;
    for (index_t c : dep_cols(r)) {
      // Callers guarantee c < r, so level[c] is final.
      lv = std::max(lv, ls.level[static_cast<std::size_t>(c)] + 1);
    }
    ls.level[static_cast<std::size_t>(r)] = lv;
    max_level = std::max(max_level, lv);
  }
  const index_t nlev = max_level + 1;
  ls.level_ptr.assign(static_cast<std::size_t>(std::max<index_t>(nlev, 0)) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    ++ls.level_ptr[static_cast<std::size_t>(ls.level[static_cast<std::size_t>(r)]) + 1];
  }
  inclusive_scan_inplace(std::span<index_t>(ls.level_ptr).subspan(1));
  ls.rows_by_level.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(ls.level_ptr.begin(), ls.level_ptr.end() - 1);
  for (index_t r = 0; r < n; ++r) {
    ls.rows_by_level[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(ls.level[static_cast<std::size_t>(r)])]++)] = r;
  }
  return ls;
}

}  // namespace

LevelSets::Stats LevelSets::stats() const {
  Stats s;
  s.num_levels = num_levels();
  if (s.num_levels == 0) return s;
  std::vector<index_t> sizes(static_cast<std::size_t>(s.num_levels));
  for (index_t l = 0; l < s.num_levels; ++l) sizes[static_cast<std::size_t>(l)] = level_size(l);
  s.min_rows = min_value(std::span<const index_t>(sizes));
  s.max_rows = max_value(std::span<const index_t>(sizes));
  s.median_rows = median(std::span<const index_t>(sizes));
  return s;
}

LevelSets compute_level_sets(const CsrMatrix& a, LevelPattern pattern) {
  JAVELIN_CHECK(a.square(), "level scheduling requires a square matrix");
  if (pattern == LevelPattern::kLowerA) {
    return levels_from_deps(a.rows(), [&](index_t r) {
      auto cols = a.row_cols(r);
      // Columns are sorted; keep only c < r.
      const auto it = std::lower_bound(cols.begin(), cols.end(), r);
      return std::span<const index_t>(cols.begin(), it);
    });
  }
  const CsrMatrix sym = pattern_symmetrize(a);
  return levels_from_deps(sym.rows(), [&](index_t r) {
    auto cols = sym.row_cols(r);
    const auto it = std::lower_bound(cols.begin(), cols.end(), r);
    return std::span<const index_t>(cols.begin(), it);
  });
}

LevelSets compute_level_sets_lower(const CsrMatrix& lower) {
  JAVELIN_CHECK(lower.square(), "level scheduling requires a square matrix");
  return levels_from_deps(lower.rows(), [&](index_t r) {
    auto cols = lower.row_cols(r);
    const auto it = std::lower_bound(cols.begin(), cols.end(), r);
    return std::span<const index_t>(cols.begin(), it);
  });
}

LevelSets compute_level_sets_upper(const CsrMatrix& upper) {
  JAVELIN_CHECK(upper.square(), "level scheduling requires a square matrix");
  const index_t n = upper.rows();
  // Dependencies of the backward solve: row r depends on rows c > r. Process
  // rows in reverse so dependencies are final when read.
  LevelSets ls;
  ls.level.assign(static_cast<std::size_t>(n), 0);
  index_t max_level = -1;
  for (index_t r = n - 1; r >= 0; --r) {
    index_t lv = 0;
    auto cols = upper.row_cols(r);
    const auto it = std::upper_bound(cols.begin(), cols.end(), r);
    for (auto p = it; p != cols.end(); ++p) {
      lv = std::max(lv, ls.level[static_cast<std::size_t>(*p)] + 1);
    }
    ls.level[static_cast<std::size_t>(r)] = lv;
    max_level = std::max(max_level, lv);
  }
  const index_t nlev = max_level + 1;
  ls.level_ptr.assign(static_cast<std::size_t>(std::max<index_t>(nlev, 0)) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    ++ls.level_ptr[static_cast<std::size_t>(ls.level[static_cast<std::size_t>(r)]) + 1];
  }
  inclusive_scan_inplace(std::span<index_t>(ls.level_ptr).subspan(1));
  ls.rows_by_level.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(ls.level_ptr.begin(), ls.level_ptr.end() - 1);
  // Fill in *descending* row order within each level: the backward solve
  // walks rows high-to-low, and keeping that order makes the implied-order
  // pruning of the point-to-point schedule valid for U as well.
  for (index_t r = n - 1; r >= 0; --r) {
    ls.rows_by_level[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(ls.level[static_cast<std::size_t>(r)])]++)] = r;
  }
  return ls;
}

std::vector<index_t> level_order_permutation(const LevelSets& ls) {
  // rows_by_level is already (level-major, ascending-row) — exactly the
  // new-to-old permutation we want.
  return ls.rows_by_level;
}

}  // namespace javelin
