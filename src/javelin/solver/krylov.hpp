// Preconditioned Krylov drivers that exercise the Javelin apply path
// end-to-end: spmv + ilu_apply per iteration, thousands of applies per
// factorization — exactly the usage profile the paper optimizes for (§VI).
//
// Mirrors how amgcl wraps its preconditioners: the solver takes the matrix
// and an opaque apply callable, and IluPreconditioner packages a
// Factorization plus its reusable SolveWorkspace behind that interface.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/sparse/spmv.hpp"

namespace javelin {

/// z = M^{-1} r. Spans have the system dimension and never alias.
using PrecondFn =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

struct SolverOptions {
  int max_iterations = 500;
  /// Convergence when ||r||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-8;
  /// GMRES restart length m.
  int restart = 30;
};

struct SolverResult {
  bool converged = false;
  int iterations = 0;          ///< matrix applications performed
  double relative_residual = 0.0;
};

/// Preconditioned conjugate gradients (SPD systems). `x` holds the initial
/// guess on entry and the solution on exit.
SolverResult pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, const PrecondFn& precond,
                 const SolverOptions& opts = {});

/// Right-preconditioned restarted GMRES(m): solves A M^{-1} u = b and
/// returns x = M^{-1} u, so the reported residual is the TRUE residual of
/// A x = b (the advantage of right preconditioning).
SolverResult gmres(const CsrMatrix& a, std::span<const value_t> b,
                   std::span<value_t> x, const PrecondFn& precond,
                   const SolverOptions& opts = {});

/// z = r (no preconditioning).
PrecondFn identity_preconditioner();

/// Factor-once / apply-thousands packaging of the Javelin ILU: owns the
/// Factorization and a SolveWorkspace so repeated applies never allocate.
/// Not safe for concurrent apply() calls on one instance (clone instead).
class IluPreconditioner {
 public:
  IluPreconditioner(const CsrMatrix& a, const IluOptions& opts = {})
      : f_(ilu_factor(a, opts)) {}
  explicit IluPreconditioner(Factorization f) : f_(std::move(f)) {}

  void apply(std::span<const value_t> r, std::span<value_t> z) const {
    ilu_apply(f_, r, z, ws_);
  }

  /// Adapter for the solver drivers.
  PrecondFn fn() const {
    return [this](std::span<const value_t> r, std::span<value_t> z) {
      apply(r, z);
    };
  }

  const Factorization& factorization() const noexcept { return f_; }
  Factorization& factorization() noexcept { return f_; }

 private:
  Factorization f_;
  mutable SolveWorkspace ws_;
};

}  // namespace javelin
