// Preconditioned Krylov drivers that exercise the Javelin apply path
// end-to-end: spmv + ilu_apply per iteration, thousands of applies per
// factorization — exactly the usage profile the paper optimizes for (§VI).
//
// Mirrors how amgcl wraps its preconditioners: the solver takes the matrix
// and an opaque apply callable, and IluPreconditioner packages a
// Factorization plus its reusable SolveWorkspace behind that interface.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/sparse/spmv.hpp"

namespace javelin {

/// z = M^{-1} r. Spans have the system dimension and never alias.
using PrecondFn =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

/// z = M^{-1} r and t = A z in one call — the Krylov inner loop's hot pair.
/// Spans have the system dimension and never alias.
using ApplySpmvFn = std::function<void(
    std::span<const value_t>, std::span<value_t>, std::span<value_t>)>;

/// What the restructured Krylov inner loops consume: the fused apply+matvec
/// for every iteration, plus the plain apply for the places a matvec is not
/// wanted (the GMRES restart correction). Both views MUST apply the same M —
/// the drivers assume op.apply_spmv's z equals op.precond's z bitwise.
struct KrylovOperator {
  PrecondFn precond;
  ApplySpmvFn apply_spmv;
  /// Partition of A shared with the drivers' own SpMVs (initial/restart/exit
  /// true residuals) so they don't rebuild one per call. Optional: drivers
  /// build a private partition when null. The partition only changes which
  /// thread computes a row, never the row's accumulation order, so results
  /// are partition-invariant bitwise.
  std::shared_ptr<const RowPartition> part;
};

/// The bitwise-parity reference operator: the same M and the same A, applied
/// as two separate kernel launches (apply, then partitioned SpMV). `a` must
/// outlive the returned operator.
KrylovOperator unfused_operator(const CsrMatrix& a, PrecondFn m);

struct SolverOptions {
  int max_iterations = 500;
  /// Convergence when ||r||_2 <= tolerance * ||b||_2.
  double tolerance = 1e-8;
  /// GMRES restart length m.
  int restart = 30;
  /// Iterations without a new best relative residual before the driver gives
  /// up with SolverStop::kStagnation (0 disables the guard — the historical
  /// behavior of burning the full max_iterations budget on a plateau).
  int stagnation_window = 0;
};

/// Why a Krylov driver stopped. Every exit is classified — breakdown and
/// non-finite arithmetic retire the solve with an honest (recomputed) true
/// residual instead of silently exhausting max_iterations on garbage.
enum class SolverStop : std::uint8_t {
  kConverged,      ///< relative residual reached the tolerance
  kMaxIterations,  ///< iteration budget exhausted
  kBreakdown,      ///< Krylov breakdown ((r,z) or (p,Ap) non-positive: indefinite A or M)
  kNonFinite,      ///< NaN/Inf appeared in the recurrence
  kStagnation,     ///< no residual progress within stagnation_window
};

const char* to_string(SolverStop stop) noexcept;

struct SolverResult {
  bool converged = false;
  int iterations = 0;          ///< matrix applications performed
  double relative_residual = 0.0;
  SolverStop stop = SolverStop::kMaxIterations;  ///< why the driver returned
};

namespace detail {

/// Plateau detector shared by the scalar and batched drivers (one
/// implementation so the per-column retirement of pcg_many cannot drift from
/// scalar pcg): stagnated when `window` iterations pass without a new best
/// relative residual. Aggregate so ColumnState can hold one per column.
struct StagnationGuard {
  int window = 0;
  value_t best = std::numeric_limits<value_t>::infinity();
  int best_it = 0;

  bool stagnated(int it, value_t rel) noexcept {
    if (window <= 0) return false;
    if (rel < best) {
      best = rel;
      best_it = it;
      return false;
    }
    return it - best_it >= window;
  }
};

}  // namespace detail

/// Preconditioned conjugate gradients (SPD systems). `x` holds the initial
/// guess on entry and the solution on exit.
SolverResult pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, const PrecondFn& precond,
                 const SolverOptions& opts = {});

/// Right-preconditioned restarted GMRES(m): solves A M^{-1} u = b and
/// returns x = M^{-1} u, so the reported residual is the TRUE residual of
/// A x = b (the advantage of right preconditioning).
SolverResult gmres(const CsrMatrix& a, std::span<const value_t> b,
                   std::span<value_t> x, const PrecondFn& precond,
                   const SolverOptions& opts = {});

/// PCG restructured around the fused apply+matvec: each iteration makes ONE
/// call z = M^{-1} r, t = A z, then maintains p = z + β p and q = A p via
/// the recurrence q = t + β q (exact algebra; the q update replaces the
/// separate matvec of p). Because the recurrence can drift over many
/// iterations, the TRUE residual b - A x is recomputed at every exit and is
/// what `relative_residual` / `converged` report. Identical operations in
/// identical order whether `op` is fused or unfused, so the two are
/// bitwise-interchangeable at any thread count.
SolverResult pcg_fused(const CsrMatrix& a, std::span<const value_t> b,
                       std::span<value_t> x, const KrylovOperator& op,
                       const SolverOptions& opts = {});

/// Right-preconditioned GMRES(m) whose Arnoldi step consumes the fused
/// operator: w = A M^{-1} v_j is one op.apply_spmv call. `gmres` above is
/// exactly this driver over `unfused_operator(a, precond)`.
SolverResult gmres_fused(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<value_t> x, const KrylovOperator& op,
                         const SolverOptions& opts = {});

/// z = r (no preconditioning).
PrecondFn identity_preconditioner();

/// Factor-once / apply-thousands packaging of the Javelin ILU: owns the
/// Factorization and a SolveWorkspace so repeated applies never allocate.
/// The execution backend (P2P vs barrier CSR-LS) and the runtime-retarget
/// policy flow in through IluOptions; a solve-time team mismatch re-plans
/// inside the workspace instead of falling back to a serial sweep.
/// Not safe for concurrent apply() calls on one instance (clone instead).
class IluPreconditioner {
 public:
  IluPreconditioner(const CsrMatrix& a, const IluOptions& opts = {})
      : f_(ilu_factor(a, opts)) {}
  explicit IluPreconditioner(Factorization f) : f_(std::move(f)) {}

  void apply(std::span<const value_t> r, std::span<value_t> z) const {
    ilu_apply(f_, r, z, ws_);
  }

  /// Adapter for the solver drivers.
  PrecondFn fn() const {
    return [this](std::span<const value_t> r, std::span<value_t> z) {
      apply(r, z);
    };
  }

  const Factorization& factorization() const noexcept { return f_; }
  Factorization& factorization() noexcept { return f_; }

 private:
  Factorization f_;
  mutable SolveWorkspace ws_;
};

/// Factor-once packaging of the FUSED Javelin apply+SpMV path: owns the
/// Factorization, the fused SpMV schedule built against `a`, and a
/// SolveWorkspace, behind the KrylovOperator interface the restructured
/// drivers consume. `a` must outlive this object (the fused pass multiplies
/// it every iteration). Not safe for concurrent calls on one instance.
class FusedIluOperator {
 public:
  FusedIluOperator(const CsrMatrix& a, const IluOptions& opts = {})
      : a_(&a),
        f_(ilu_factor(a, opts)),
        fs_(build_fused_apply_spmv(f_, a)),
        part_(std::make_shared<const RowPartition>(RowPartition::build(a))) {}
  /// Adopt an existing factorization of `a` (e.g. after ilu_refactor).
  FusedIluOperator(const CsrMatrix& a, Factorization f)
      : a_(&a),
        f_(std::move(f)),
        fs_(build_fused_apply_spmv(f_, a)),
        part_(std::make_shared<const RowPartition>(RowPartition::build(a))) {}

  /// Plain apply z = M^{-1} r (the GMRES restart correction).
  void apply(std::span<const value_t> r, std::span<value_t> z) const {
    ilu_apply(f_, r, z, ws_);
  }

  /// Fused z = M^{-1} r, t = A z — one scheduled pass.
  void apply_spmv(std::span<const value_t> r, std::span<value_t> z,
                  std::span<value_t> t) const {
    ilu_apply_spmv(f_, *a_, fs_, r, z, t, ws_);
  }

  /// Adapter for pcg_fused / gmres_fused.
  KrylovOperator op() const {
    KrylovOperator o;
    o.precond = [this](std::span<const value_t> r, std::span<value_t> z) {
      apply(r, z);
    };
    o.apply_spmv = [this](std::span<const value_t> r, std::span<value_t> z,
                          std::span<value_t> t) { apply_spmv(r, z, t); };
    o.part = part_;
    return o;
  }

  /// Plain-preconditioner adapter (for the unfused reference drivers).
  PrecondFn fn() const {
    return [this](std::span<const value_t> r, std::span<value_t> z) {
      apply(r, z);
    };
  }

  const Factorization& factorization() const noexcept { return f_; }
  const FusedApplySpmv& fused_schedule() const noexcept { return fs_; }

 private:
  const CsrMatrix* a_;
  Factorization f_;
  FusedApplySpmv fs_;
  std::shared_ptr<const RowPartition> part_;
  mutable SolveWorkspace ws_;
};

}  // namespace javelin
