#include "javelin/solver/batch.hpp"

#include <cmath>
#include <string>

namespace javelin {

namespace {

/// Per-column live state of the panel iteration. A retired column's panel
/// data is frozen exactly where the scalar solver would have returned.
struct ColumnState {
  value_t bnorm = 0;
  value_t rz = 0;
  bool active = false;
  detail::StagnationGuard stagnation;
};

/// True relative residual of column j, recomputed exactly the way scalar
/// pcg's breakdown/exit paths do (same partitioned SpMV, same subtraction
/// order, same deterministic norm) so the reported values match bitwise.
value_t true_relative_residual_col(const CsrMatrix& a, const RowPartition& part,
                                   std::span<const value_t> bj,
                                   std::span<const value_t> xj,
                                   std::span<value_t> scratch, value_t bnorm) {
  spmv(a, part, xj, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = bj[i] - scratch[i];
  }
  return norm2(scratch) / bnorm;
}

}  // namespace

PanelPrecondFn ilu_panel_preconditioner(const Factorization& f,
                                        WorkspacePool& pool) {
  return [&f, &pool](std::span<const value_t> r, std::span<value_t> z,
                     index_t k) {
    WorkspacePool::Lease lease = pool.acquire();
    ilu_apply_panel(f, r, z, k, *lease);
  };
}

PanelPrecondFn identity_panel_preconditioner() {
  return [](std::span<const value_t> r, std::span<value_t> z, index_t) {
    copy(r.subspan(0, z.size()), z);
  };
}

std::vector<SolverResult> pcg_many(const CsrMatrix& a,
                                   std::span<const value_t> b,
                                   std::span<value_t> x, index_t k,
                                   const PanelPrecondFn& precond,
                                   const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg_many requires a square matrix");
  JAVELIN_CHECK(k >= 1, "pcg_many requires k >= 1 right-hand sides");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t need = un * static_cast<std::size_t>(k);
  JAVELIN_CHECK(b.size() >= need, "pcg_many: rhs panel smaller than n x k");
  JAVELIN_CHECK(x.size() >= need,
                "pcg_many: solution panel smaller than n x k");
  const RowPartition part = RowPartition::build(a);

  std::vector<value_t> r(need), z(need), p(need), q(need), scratch(un);
  std::vector<SolverResult> res(static_cast<std::size_t>(k));
  std::vector<ColumnState> st(static_cast<std::size_t>(k));

  const auto bcol = [&](index_t j) {
    return b.subspan(static_cast<std::size_t>(j) * un, un);
  };
  const auto xcol = [&](index_t j) {
    return x.subspan(static_cast<std::size_t>(j) * un, un);
  };
  const auto col = [un](std::vector<value_t>& v, index_t j) {
    return std::span<value_t>(v).subspan(static_cast<std::size_t>(j) * un, un);
  };

  // --- head: per-column warm-start handling, panel initial residual --------
  for (index_t j = 0; j < k; ++j) {
    ColumnState& s = st[static_cast<std::size_t>(j)];
    s.bnorm = norm2(bcol(j));
    s.stagnation.window = opts.stagnation_window;
    if (s.bnorm == 0) {
      fill(xcol(j), 0);
      res[static_cast<std::size_t>(j)].converged = true;
      res[static_cast<std::size_t>(j)].stop = SolverStop::kConverged;
      continue;  // retired before the iteration starts, like scalar pcg
    }
    s.active = true;
  }
  // r = b - A x, panel-wide (column j of spmv_panel is bitwise the scalar
  // spmv of column j; retired columns hold x = 0, harmlessly recomputed).
  spmv_panel(a, part, x.subspan(0, need), std::span<value_t>(r), k);
  for (index_t j = 0; j < k; ++j) {
    ColumnState& s = st[static_cast<std::size_t>(j)];
    if (!s.active) continue;
    auto rj = col(r, j);
    const auto bj = bcol(j);
    for (std::size_t i = 0; i < un; ++i) rj[i] = bj[i] - rj[i];
    SolverResult& rr = res[static_cast<std::size_t>(j)];
    rr.relative_residual = norm2(rj) / s.bnorm;
    if (rr.relative_residual <= opts.tolerance) {
      rr.converged = true;  // warm start already solves this column
      rr.stop = SolverStop::kConverged;
      s.active = false;
    }
  }

  const auto any_active = [&]() {
    for (const ColumnState& s : st) {
      if (s.active) return true;
    }
    return false;
  };
  if (!any_active()) return res;

  // Mirrors scalar pcg's `retire`: an abnormal column exit reports the TRUE
  // residual of the x that column actually returns, and `converged` stays
  // the single source of truth (a guard exit meeting the tolerance reports
  // kConverged). Only this column retires — its panel neighbors keep
  // iterating, so a breakdown degrades per-column, never per-panel.
  const auto retire_col = [&](index_t j, SolverStop cause) {
    ColumnState& s = st[static_cast<std::size_t>(j)];
    SolverResult& rr = res[static_cast<std::size_t>(j)];
    rr.relative_residual = true_relative_residual_col(a, part, bcol(j), xcol(j),
                                                      scratch, s.bnorm);
    rr.converged = rr.relative_residual <= opts.tolerance;
    rr.stop = rr.converged ? SolverStop::kConverged : cause;
    s.active = false;
  };

  precond(r, z, k);
  for (index_t j = 0; j < k; ++j) {
    ColumnState& s = st[static_cast<std::size_t>(j)];
    if (!s.active) continue;
    copy(std::span<const value_t>(col(z, j)), col(p, j));
    s.rz = dot(col(r, j), col(z, j));
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    // rz breakdown/non-finite check at the iteration head, exactly like
    // scalar pcg.
    for (index_t j = 0; j < k; ++j) {
      ColumnState& s = st[static_cast<std::size_t>(j)];
      if (!s.active) continue;
      if (s.rz <= 0 || !std::isfinite(s.rz)) {
        retire_col(j, std::isfinite(s.rz) ? SolverStop::kBreakdown
                                          : SolverStop::kNonFinite);
      }
    }
    if (!any_active()) return res;

    // q = A p, panel-wide (retired columns' p is frozen; their q is unused).
    spmv_panel(a, part, std::span<const value_t>(p), std::span<value_t>(q), k);
    for (index_t j = 0; j < k; ++j) {
      ColumnState& s = st[static_cast<std::size_t>(j)];
      if (!s.active) continue;
      SolverResult& rr = res[static_cast<std::size_t>(j)];
      const value_t pq = dot(col(p, j), col(q, j));
      if (pq <= 0 || !std::isfinite(pq)) {
        retire_col(j, std::isfinite(pq) ? SolverStop::kBreakdown
                                        : SolverStop::kNonFinite);
        continue;
      }
      const value_t alpha = s.rz / pq;
      axpy(alpha, col(p, j), xcol(j));
      axpy(-alpha, col(q, j), col(r, j));
      rr.iterations = it + 1;
      rr.relative_residual = norm2(col(r, j)) / s.bnorm;
      if (!std::isfinite(rr.relative_residual)) {
        retire_col(j, SolverStop::kNonFinite);
        continue;
      }
      if (rr.relative_residual <= opts.tolerance) {
        rr.converged = true;
        rr.stop = SolverStop::kConverged;
        s.active = false;
        continue;
      }
      if (s.stagnation.stagnated(rr.iterations, rr.relative_residual)) {
        retire_col(j, SolverStop::kStagnation);
      }
    }
    if (!any_active()) return res;

    precond(r, z, k);
    for (index_t j = 0; j < k; ++j) {
      ColumnState& s = st[static_cast<std::size_t>(j)];
      if (!s.active) continue;
      const value_t rz_next = dot(col(r, j), col(z, j));
      const value_t beta = rz_next / s.rz;
      s.rz = rz_next;
      xpby(std::span<const value_t>(col(z, j)), beta, col(p, j));
    }
  }
  return res;
}

}  // namespace javelin
