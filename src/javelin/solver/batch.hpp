// Batched Krylov serving: pcg_many drives k conjugate-gradient solves
// simultaneously over column-major n×k panels, so every SpMV and every
// preconditioner application is a register-blocked panel sweep (one pass
// over the matrix / factor entries for all k systems) instead of k scalar
// passes — the "apply thousands of times" axis of the paper batched across
// concurrent right-hand sides.
//
// Parity contract: column j of a pcg_many run is bitwise equal to a scalar
// pcg run on (A, column j of B) with the matching scalar preconditioner, at
// every thread count and exec backend — panel kernels keep each column's
// scalar accumulation order, the deterministic reductions see the same
// contiguous column spans, and a column that converges (or breaks down)
// RETIRES: its x / r / p / q columns are frozen exactly where the scalar
// solver would have returned, while the remaining columns keep sweeping.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "javelin/ilu/batch.hpp"
#include "javelin/solver/krylov.hpp"

namespace javelin {

/// Panel preconditioner Z = M^{-1} R for k right-hand sides stored
/// column-major in n×k panels (column stride n). Column j must be bitwise
/// equal to the scalar PrecondFn the caller compares against.
using PanelPrecondFn = std::function<void(
    std::span<const value_t>, std::span<value_t>, index_t)>;

/// ilu_apply_panel bound to one factorization and a shared WorkspacePool:
/// each call leases a workspace for the duration of the panel apply, so
/// concurrent serving streams can share one immutable factor. Both
/// references must outlive the returned functor.
PanelPrecondFn ilu_panel_preconditioner(const Factorization& f,
                                        WorkspacePool& pool);

/// Z = R (no preconditioning), panel form.
PanelPrecondFn identity_panel_preconditioner();

/// Preconditioned CG over k systems A x_j = b_j driven as one panel
/// iteration. `b` and `x` are column-major n×k panels (x holds the initial
/// guesses on entry, the solutions on exit). Returns one SolverResult per
/// column; result j is bitwise equal to scalar pcg on column j (see the
/// header comment). Throws when k < 1 or a panel is smaller than n×k.
std::vector<SolverResult> pcg_many(const CsrMatrix& a,
                                   std::span<const value_t> b,
                                   std::span<value_t> x, index_t k,
                                   const PanelPrecondFn& precond,
                                   const SolverOptions& opts = {});

}  // namespace javelin
