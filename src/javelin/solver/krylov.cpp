#include "javelin/solver/krylov.hpp"

#include <cmath>

namespace javelin {

PrecondFn identity_preconditioner() {
  return [](std::span<const value_t> r, std::span<value_t> z) { copy(r, z); };
}

SolverResult pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, const PrecondFn& precond,
                 const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const RowPartition part = RowPartition::build(a);

  std::vector<value_t> r(un), z(un), p(un), q(un);
  SolverResult res;

  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    return res;
  }

  // r = b - A x
  spmv(a, part, x, r);
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - r[i];
  res.relative_residual = norm2(r) / bnorm;
  if (res.relative_residual <= opts.tolerance) {
    res.converged = true;  // warm start already solves the system
    return res;
  }

  precond(r, z);
  copy(std::span<const value_t>(z), std::span<value_t>(p));
  value_t rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    spmv(a, part, p, q);
    const value_t pq = dot(p, q);
    if (pq == 0) break;  // breakdown (non-SPD input)
    const value_t alpha = rz / pq;
    axpy(alpha, p, x.subspan(0, un));
    axpy(-alpha, q, r);
    res.iterations = it + 1;
    const value_t rnorm = norm2(r);
    res.relative_residual = rnorm / bnorm;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }
    precond(r, z);
    const value_t rz_next = dot(r, z);
    const value_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    xpby(std::span<const value_t>(z), beta, std::span<value_t>(p));
  }
  return res;
}

SolverResult gmres(const CsrMatrix& a, std::span<const value_t> b,
                   std::span<value_t> x, const PrecondFn& precond,
                   const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "gmres requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const int m = std::max(1, opts.restart);
  const RowPartition part = RowPartition::build(a);

  SolverResult res;
  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    return res;
  }

  // Krylov basis and the Hessenberg least-squares state (Givens rotations).
  std::vector<std::vector<value_t>> v(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(un));
  std::vector<std::vector<value_t>> h(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(static_cast<std::size_t>(m), 0));
  std::vector<value_t> cs(static_cast<std::size_t>(m), 0);
  std::vector<value_t> sn(static_cast<std::size_t>(m), 0);
  std::vector<value_t> g(static_cast<std::size_t>(m) + 1, 0);
  std::vector<value_t> w(un), z(un), y(static_cast<std::size_t>(m));

  while (res.iterations < opts.max_iterations) {
    // r0 = b - A x (true residual: right preconditioning keeps it exact).
    spmv(a, part, x, w);
    for (std::size_t i = 0; i < un; ++i) w[i] = b[i] - w[i];
    const value_t beta = norm2(w);
    res.relative_residual = beta / bnorm;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < un; ++i) v[0][i] = w[i] / beta;
    std::fill(g.begin(), g.end(), value_t{0});
    g[0] = beta;

    int j = 0;
    for (; j < m && res.iterations < opts.max_iterations; ++j) {
      const std::size_t uj = static_cast<std::size_t>(j);
      // w = A M^{-1} v_j
      precond(v[uj], z);
      spmv(a, part, z, w);
      ++res.iterations;
      // Modified Gram–Schmidt.
      for (int i = 0; i <= j; ++i) {
        const value_t hij = dot(v[static_cast<std::size_t>(i)], w);
        h[static_cast<std::size_t>(i)][uj] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], w);
      }
      const value_t hnext = norm2(w);
      h[uj + 1][uj] = hnext;
      if (hnext != 0) {
        for (std::size_t i = 0; i < un; ++i) v[uj + 1][i] = w[i] / hnext;
      }
      // Apply the accumulated rotations, then form the new one.
      for (int i = 0; i < j; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const value_t t = cs[ui] * h[ui][uj] + sn[ui] * h[ui + 1][uj];
        h[ui + 1][uj] = -sn[ui] * h[ui][uj] + cs[ui] * h[ui + 1][uj];
        h[ui][uj] = t;
      }
      const value_t denom = std::hypot(h[uj][uj], h[uj + 1][uj]);
      if (denom == 0) {
        // Exact breakdown: column j is identically zero, so the solution
        // lies in the span of the previous columns — discard column j (its
        // diagonal is 0 and must not reach the back-substitution).
        break;
      }
      cs[uj] = h[uj][uj] / denom;
      sn[uj] = h[uj + 1][uj] / denom;
      h[uj][uj] = denom;
      h[uj + 1][uj] = 0;
      g[uj + 1] = -sn[uj] * g[uj];
      g[uj] = cs[uj] * g[uj];
      res.relative_residual = std::abs(g[uj + 1]) / bnorm;
      if (res.relative_residual <= opts.tolerance) {
        ++j;
        break;
      }
    }

    // Back-substitute y from the triangularized Hessenberg system.
    for (int i = j - 1; i >= 0; --i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      value_t s = g[ui];
      for (int k = i + 1; k < j; ++k) {
        s -= h[ui][static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(k)];
      }
      y[ui] = s / h[ui][ui];
    }
    // u = V y; x += M^{-1} u.
    fill(std::span<value_t>(w), 0);
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)],
           std::span<value_t>(w));
    }
    precond(w, z);
    axpy(1.0, z, x.subspan(0, un));
    // Loop back: the restart head recomputes the TRUE residual b - A x and
    // is the sole convergence arbiter — the rotation-recurrence estimate
    // can drift optimistic over many restarts, so it only steers when to
    // restart, never when to stop.
  }
  // Iteration budget exhausted; report the true residual.
  spmv(a, part, x, w);
  for (std::size_t i = 0; i < un; ++i) w[i] = b[i] - w[i];
  res.relative_residual = norm2(w) / bnorm;
  res.converged = res.relative_residual <= opts.tolerance;
  return res;
}

}  // namespace javelin
