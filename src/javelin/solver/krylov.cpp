#include "javelin/solver/krylov.hpp"

#include <cmath>
#include <memory>

namespace javelin {

namespace {

/// True relative residual ||b - A x|| / bnorm, recomputed from scratch with
/// the partitioned SpMV (the recurrence residuals the iterations maintain
/// are estimates; every breakdown / exit path reports this instead).
value_t true_relative_residual(const CsrMatrix& a, const RowPartition& part,
                               std::span<const value_t> b,
                               std::span<const value_t> x,
                               std::span<value_t> scratch, value_t bnorm) {
  spmv(a, part, x, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = b[i] - scratch[i];
  }
  return norm2(scratch) / bnorm;
}

/// The operator's shared partition, or a freshly built private one — the
/// fused drivers run their own SpMVs (initial/restart/exit true residuals)
/// and must not rebuild the partition per call on the hot path.
std::shared_ptr<const RowPartition> operator_partition(
    const KrylovOperator& op, const CsrMatrix& a) {
  if (op.part) return op.part;
  return std::make_shared<const RowPartition>(RowPartition::build(a));
}

}  // namespace

PrecondFn identity_preconditioner() {
  return [](std::span<const value_t> r, std::span<value_t> z) { copy(r, z); };
}

KrylovOperator unfused_operator(const CsrMatrix& a, PrecondFn m) {
  // The partition is built once and shared by every apply (the solver hot
  // path); the partition only changes which thread computes a row, never the
  // row's accumulation order, so results are partition-invariant bitwise.
  auto part = std::make_shared<const RowPartition>(RowPartition::build(a));
  KrylovOperator op;
  op.precond = m;
  op.apply_spmv = [&a, part, m = std::move(m)](std::span<const value_t> r,
                                               std::span<value_t> z,
                                               std::span<value_t> t) {
    m(r, z);
    spmv(a, *part, z, t);
  };
  op.part = std::move(part);
  return op;
}

SolverResult pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, const PrecondFn& precond,
                 const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const RowPartition part = RowPartition::build(a);

  std::vector<value_t> r(un), z(un), p(un), q(un);
  SolverResult res;

  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    return res;
  }

  // r = b - A x
  spmv(a, part, x, r);
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - r[i];
  res.relative_residual = norm2(r) / bnorm;
  if (res.relative_residual <= opts.tolerance) {
    res.converged = true;  // warm start already solves the system
    return res;
  }

  precond(r, z);
  copy(std::span<const value_t>(z), std::span<value_t>(p));
  value_t rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    if (rz == 0) {
      // Breakdown: z = M^{-1} r became orthogonal to r (indefinite A or M),
      // so alpha would be 0 and the NEXT beta = rz_next / 0 would poison the
      // iterate with NaN — exit with the honest residual instead.
      res.relative_residual =
          true_relative_residual(a, part, b, x.subspan(0, un), r, bnorm);
      res.converged = res.relative_residual <= opts.tolerance;
      return res;
    }
    spmv(a, part, p, q);
    const value_t pq = dot(p, q);
    if (pq == 0) {
      // Breakdown (non-SPD input): the recurrence residual in `r` is stale
      // relative to the x actually returned — report the TRUE residual so
      // callers see an honest relative_residual.
      res.relative_residual =
          true_relative_residual(a, part, b, x.subspan(0, un), r, bnorm);
      res.converged = res.relative_residual <= opts.tolerance;
      return res;
    }
    const value_t alpha = rz / pq;
    axpy(alpha, p, x.subspan(0, un));
    axpy(-alpha, q, r);
    res.iterations = it + 1;
    const value_t rnorm = norm2(r);
    res.relative_residual = rnorm / bnorm;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }
    precond(r, z);
    const value_t rz_next = dot(r, z);
    const value_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    xpby(std::span<const value_t>(z), beta, std::span<value_t>(p));
  }
  return res;
}

SolverResult pcg_fused(const CsrMatrix& a, std::span<const value_t> b,
                       std::span<value_t> x, const KrylovOperator& op,
                       const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const std::shared_ptr<const RowPartition> part_ptr = operator_partition(op, a);
  const RowPartition& part = *part_ptr;

  std::vector<value_t> r(un), z(un), t(un), p(un), q(un);
  SolverResult res;

  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    return res;
  }

  // r = b - A x
  spmv(a, part, x, r);
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - r[i];
  res.relative_residual = norm2(r) / bnorm;
  if (res.relative_residual <= opts.tolerance) {
    res.converged = true;  // warm start (true residual by construction)
    return res;
  }

  // Each iteration makes ONE fused call producing z = M^{-1} r and t = A z,
  // then maintains the direction and its image by recurrence:
  //   beta = (r,z) / (r,z)_prev,  p = z + beta p,  q = t + beta q  (= A p).
  // The matvec of p never runs as a separate kernel — that is the §VI
  // fusion. Exit residuals are recomputed exactly (recurrence drift).
  value_t rz_prev = 0;
  for (int it = 0; it < opts.max_iterations; ++it) {
    op.apply_spmv(r, z, t);
    const value_t rz = dot(r, z);
    if (rz == 0) {
      // Breakdown: z = M^{-1} r orthogonal to r (indefinite A or M). alpha
      // would be 0 this iteration and beta = 0 / rz (or, next iteration,
      // rz_next / 0 = NaN) — exit with the honest residual instead.
      res.relative_residual =
          true_relative_residual(a, part, b, x.subspan(0, un), t, bnorm);
      res.converged = res.relative_residual <= opts.tolerance;
      return res;
    }
    if (it == 0) {
      copy(std::span<const value_t>(z), std::span<value_t>(p));
      copy(std::span<const value_t>(t), std::span<value_t>(q));
    } else {
      const value_t beta = rz / rz_prev;
      xpby(std::span<const value_t>(z), beta, std::span<value_t>(p));
      xpby(std::span<const value_t>(t), beta, std::span<value_t>(q));
    }
    rz_prev = rz;
    const value_t pq = dot(p, q);
    if (pq == 0) {
      res.relative_residual =
          true_relative_residual(a, part, b, x.subspan(0, un), t, bnorm);
      res.converged = res.relative_residual <= opts.tolerance;
      return res;
    }
    const value_t alpha = rz / pq;
    axpy(alpha, p, x.subspan(0, un));
    axpy(-alpha, q, r);
    res.iterations = it + 1;
    res.relative_residual = norm2(r) / bnorm;
    if (res.relative_residual <= opts.tolerance) break;
  }
  res.relative_residual =
      true_relative_residual(a, part, b, x.subspan(0, un), t, bnorm);
  res.converged = res.relative_residual <= opts.tolerance;
  return res;
}

SolverResult gmres(const CsrMatrix& a, std::span<const value_t> b,
                   std::span<value_t> x, const PrecondFn& precond,
                   const SolverOptions& opts) {
  return gmres_fused(a, b, x, unfused_operator(a, precond), opts);
}

SolverResult gmres_fused(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<value_t> x, const KrylovOperator& op,
                         const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "gmres requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const int m = std::max(1, opts.restart);
  const std::shared_ptr<const RowPartition> part_ptr = operator_partition(op, a);
  const RowPartition& part = *part_ptr;

  SolverResult res;
  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    return res;
  }

  // Krylov basis and the Hessenberg least-squares state (Givens rotations).
  std::vector<std::vector<value_t>> v(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(un));
  std::vector<std::vector<value_t>> h(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(static_cast<std::size_t>(m), 0));
  std::vector<value_t> cs(static_cast<std::size_t>(m), 0);
  std::vector<value_t> sn(static_cast<std::size_t>(m), 0);
  std::vector<value_t> g(static_cast<std::size_t>(m) + 1, 0);
  std::vector<value_t> w(un), z(un), y(static_cast<std::size_t>(m));

  while (res.iterations < opts.max_iterations) {
    // r0 = b - A x (true residual: right preconditioning keeps it exact).
    spmv(a, part, x, w);
    for (std::size_t i = 0; i < un; ++i) w[i] = b[i] - w[i];
    const value_t beta = norm2(w);
    res.relative_residual = beta / bnorm;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < un; ++i) v[0][i] = w[i] / beta;
    std::fill(g.begin(), g.end(), value_t{0});
    g[0] = beta;

    int j = 0;
    for (; j < m && res.iterations < opts.max_iterations; ++j) {
      const std::size_t uj = static_cast<std::size_t>(j);
      // w = A M^{-1} v_j — ONE fused pass over factor and matrix.
      op.apply_spmv(v[uj], z, w);
      ++res.iterations;
      // Modified Gram–Schmidt.
      for (int i = 0; i <= j; ++i) {
        const value_t hij = dot(v[static_cast<std::size_t>(i)], w);
        h[static_cast<std::size_t>(i)][uj] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], w);
      }
      const value_t hnext = norm2(w);
      h[uj + 1][uj] = hnext;
      if (hnext != 0) {
        for (std::size_t i = 0; i < un; ++i) v[uj + 1][i] = w[i] / hnext;
      }
      // Apply the accumulated rotations, then form the new one.
      for (int i = 0; i < j; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const value_t t = cs[ui] * h[ui][uj] + sn[ui] * h[ui + 1][uj];
        h[ui + 1][uj] = -sn[ui] * h[ui][uj] + cs[ui] * h[ui + 1][uj];
        h[ui][uj] = t;
      }
      const value_t denom = std::hypot(h[uj][uj], h[uj + 1][uj]);
      if (denom == 0) {
        // Exact breakdown: column j is identically zero, so the solution
        // lies in the span of the previous columns — discard column j (its
        // diagonal is 0 and must not reach the back-substitution).
        break;
      }
      cs[uj] = h[uj][uj] / denom;
      sn[uj] = h[uj + 1][uj] / denom;
      h[uj][uj] = denom;
      h[uj + 1][uj] = 0;
      g[uj + 1] = -sn[uj] * g[uj];
      g[uj] = cs[uj] * g[uj];
      res.relative_residual = std::abs(g[uj + 1]) / bnorm;
      if (res.relative_residual <= opts.tolerance || hnext == 0) {
        // Converged — or a HAPPY BREAKDOWN (hnext == 0): the Krylov space
        // became A M^{-1}-invariant, the least-squares problem is solved
        // exactly by the current columns, and v[j+1] was never written this
        // restart. Continuing the Arnoldi loop would orthogonalize against
        // that stale/zero vector; keep column j (its rotation is applied)
        // and leave the inner loop.
        ++j;
        break;
      }
    }

    // Back-substitute y from the triangularized Hessenberg system.
    for (int i = j - 1; i >= 0; --i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      value_t s = g[ui];
      for (int k = i + 1; k < j; ++k) {
        s -= h[ui][static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(k)];
      }
      y[ui] = s / h[ui][ui];
    }
    // u = V y; x += M^{-1} u.
    fill(std::span<value_t>(w), 0);
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)],
           std::span<value_t>(w));
    }
    op.precond(w, z);
    axpy(1.0, z, x.subspan(0, un));
    // Loop back: the restart head recomputes the TRUE residual b - A x and
    // is the sole convergence arbiter — the rotation-recurrence estimate
    // can drift optimistic over many restarts, so it only steers when to
    // restart, never when to stop.
  }
  // Iteration budget exhausted; report the true residual.
  spmv(a, part, x, w);
  for (std::size_t i = 0; i < un; ++i) w[i] = b[i] - w[i];
  res.relative_residual = norm2(w) / bnorm;
  res.converged = res.relative_residual <= opts.tolerance;
  return res;
}

}  // namespace javelin
