#include "javelin/solver/krylov.hpp"

#include <cmath>
#include <memory>

#include "javelin/obs/trace.hpp"

namespace javelin {

namespace {

/// True relative residual ||b - A x|| / bnorm, recomputed from scratch with
/// the partitioned SpMV (the recurrence residuals the iterations maintain
/// are estimates; every breakdown / exit path reports this instead).
value_t true_relative_residual(const CsrMatrix& a, const RowPartition& part,
                               std::span<const value_t> b,
                               std::span<const value_t> x,
                               std::span<value_t> scratch, value_t bnorm) {
  spmv(a, part, x, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = b[i] - scratch[i];
  }
  return norm2(scratch) / bnorm;
}

/// The operator's shared partition, or a freshly built private one — the
/// fused drivers run their own SpMVs (initial/restart/exit true residuals)
/// and must not rebuild the partition per call on the hot path.
std::shared_ptr<const RowPartition> operator_partition(
    const KrylovOperator& op, const CsrMatrix& a) {
  if (op.part) return op.part;
  return std::make_shared<const RowPartition>(RowPartition::build(a));
}

}  // namespace

const char* to_string(SolverStop stop) noexcept {
  switch (stop) {
    case SolverStop::kConverged:
      return "converged";
    case SolverStop::kMaxIterations:
      return "max_iterations";
    case SolverStop::kBreakdown:
      return "breakdown";
    case SolverStop::kNonFinite:
      return "non_finite";
    case SolverStop::kStagnation:
      return "stagnation";
  }
  return "unknown";
}

PrecondFn identity_preconditioner() {
  return [](std::span<const value_t> r, std::span<value_t> z) { copy(r, z); };
}

KrylovOperator unfused_operator(const CsrMatrix& a, PrecondFn m) {
  // The partition is built once and shared by every apply (the solver hot
  // path); the partition only changes which thread computes a row, never the
  // row's accumulation order, so results are partition-invariant bitwise.
  auto part = std::make_shared<const RowPartition>(RowPartition::build(a));
  KrylovOperator op;
  op.precond = m;
  op.apply_spmv = [&a, part, m = std::move(m)](std::span<const value_t> r,
                                               std::span<value_t> z,
                                               std::span<value_t> t) {
    m(r, z);
    spmv(a, *part, z, t);
  };
  op.part = std::move(part);
  return op;
}

SolverResult pcg(const CsrMatrix& a, std::span<const value_t> b,
                 std::span<value_t> x, const PrecondFn& precond,
                 const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const RowPartition part = RowPartition::build(a);

  std::vector<value_t> r(un), z(un), p(un), q(un);
  SolverResult res;

  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    res.stop = SolverStop::kConverged;
    return res;
  }

  // r = b - A x
  spmv(a, part, x, r);
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - r[i];
  res.relative_residual = norm2(r) / bnorm;
  if (res.relative_residual <= opts.tolerance) {
    res.converged = true;  // warm start already solves the system
    res.stop = SolverStop::kConverged;
    return res;
  }

  // Every abnormal exit reports the TRUE residual of the x actually
  // returned (the recurrence residual in `r` is stale/poisoned there), and
  // `converged` stays the single source of truth: a guard exit whose true
  // residual meets the tolerance reports kConverged.
  const auto retire = [&](SolverStop cause) -> SolverResult& {
    res.relative_residual =
        true_relative_residual(a, part, b, x.subspan(0, un), r, bnorm);
    res.converged = res.relative_residual <= opts.tolerance;
    res.stop = res.converged ? SolverStop::kConverged : cause;
    return res;
  };

  precond(r, z);
  copy(std::span<const value_t>(z), std::span<value_t>(p));
  value_t rz = dot(r, z);
  detail::StagnationGuard stagnation{opts.stagnation_window};

  for (int it = 0; it < opts.max_iterations; ++it) {
    obs::TraceSpan iter_span("pcg_iter", static_cast<index_t>(it));
    if (rz <= 0 || !std::isfinite(rz)) {
      // Breakdown: (r, M^{-1} r) <= 0 means the preconditioner is
      // indefinite (or exactly orthogonal) — for an SPD M this inner
      // product is strictly positive, so a non-positive value is proof the
      // CG assumptions are broken and the next beta would poison the
      // iterate. Exit with the honest residual instead. A non-finite rz
      // means the recurrence already produced NaN/Inf; same drill,
      // different cause.
      return retire(std::isfinite(rz) ? SolverStop::kBreakdown
                                      : SolverStop::kNonFinite);
    }
    spmv(a, part, p, q);
    const value_t pq = dot(p, q);
    if (pq <= 0 || !std::isfinite(pq)) {
      // Negative curvature ((p, Ap) <= 0): A is not SPD along this
      // direction — a breakdown of the method, not of the rung, so the
      // robust ladder can retry the same preconditioner with GMRES.
      return retire(std::isfinite(pq) ? SolverStop::kBreakdown
                                      : SolverStop::kNonFinite);
    }
    const value_t alpha = rz / pq;
    axpy(alpha, p, x.subspan(0, un));
    axpy(-alpha, q, r);
    res.iterations = it + 1;
    const value_t rnorm = norm2(r);
    res.relative_residual = rnorm / bnorm;
    if (!std::isfinite(res.relative_residual)) {
      return retire(SolverStop::kNonFinite);
    }
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      res.stop = SolverStop::kConverged;
      return res;
    }
    if (stagnation.stagnated(res.iterations, res.relative_residual)) {
      return retire(SolverStop::kStagnation);
    }
    precond(r, z);
    const value_t rz_next = dot(r, z);
    const value_t beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p
    xpby(std::span<const value_t>(z), beta, std::span<value_t>(p));
  }
  res.stop = SolverStop::kMaxIterations;
  return res;
}

SolverResult pcg_fused(const CsrMatrix& a, std::span<const value_t> b,
                       std::span<value_t> x, const KrylovOperator& op,
                       const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "pcg requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const std::shared_ptr<const RowPartition> part_ptr = operator_partition(op, a);
  const RowPartition& part = *part_ptr;

  std::vector<value_t> r(un), z(un), t(un), p(un), q(un);
  SolverResult res;

  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    res.stop = SolverStop::kConverged;
    return res;
  }

  // r = b - A x
  spmv(a, part, x, r);
  for (std::size_t i = 0; i < un; ++i) r[i] = b[i] - r[i];
  res.relative_residual = norm2(r) / bnorm;
  if (res.relative_residual <= opts.tolerance) {
    res.converged = true;  // warm start (true residual by construction)
    res.stop = SolverStop::kConverged;
    return res;
  }

  // Each iteration makes ONE fused call producing z = M^{-1} r and t = A z,
  // then maintains the direction and its image by recurrence:
  //   beta = (r,z) / (r,z)_prev,  p = z + beta p,  q = t + beta q  (= A p).
  // The matvec of p never runs as a separate kernel — that is the §VI
  // fusion. EVERY exit recomputes the true residual (recurrence drift, and
  // guard exits return a stale/poisoned recurrence state), so `converged`
  // stays the single source of truth and a guard exit that nonetheless
  // meets the tolerance reports kConverged.
  value_t rz_prev = 0;
  SolverStop cause = SolverStop::kMaxIterations;
  detail::StagnationGuard stagnation{opts.stagnation_window};
  for (int it = 0; it < opts.max_iterations; ++it) {
    obs::TraceSpan iter_span("pcg_iter", static_cast<index_t>(it));
    op.apply_spmv(r, z, t);
    const value_t rz = dot(r, z);
    if (rz <= 0 || !std::isfinite(rz)) {
      // Breakdown: (r, M^{-1} r) <= 0 — indefinite preconditioner (strictly
      // positive for SPD M), so the CG assumptions are broken and the next
      // beta would poison the iterate. Exit with the honest residual. A
      // non-finite rz means the recurrence is already poisoned.
      cause = std::isfinite(rz) ? SolverStop::kBreakdown : SolverStop::kNonFinite;
      break;
    }
    if (it == 0) {
      copy(std::span<const value_t>(z), std::span<value_t>(p));
      copy(std::span<const value_t>(t), std::span<value_t>(q));
    } else {
      const value_t beta = rz / rz_prev;
      xpby(std::span<const value_t>(z), beta, std::span<value_t>(p));
      xpby(std::span<const value_t>(t), beta, std::span<value_t>(q));
    }
    rz_prev = rz;
    const value_t pq = dot(p, q);
    if (pq <= 0 || !std::isfinite(pq)) {
      // Negative curvature: A not SPD along p (see scalar pcg).
      cause = std::isfinite(pq) ? SolverStop::kBreakdown : SolverStop::kNonFinite;
      break;
    }
    const value_t alpha = rz / pq;
    axpy(alpha, p, x.subspan(0, un));
    axpy(-alpha, q, r);
    res.iterations = it + 1;
    res.relative_residual = norm2(r) / bnorm;
    if (!std::isfinite(res.relative_residual)) {
      cause = SolverStop::kNonFinite;
      break;
    }
    if (res.relative_residual <= opts.tolerance) {
      cause = SolverStop::kConverged;
      break;
    }
    if (stagnation.stagnated(res.iterations, res.relative_residual)) {
      cause = SolverStop::kStagnation;
      break;
    }
  }
  res.relative_residual =
      true_relative_residual(a, part, b, x.subspan(0, un), t, bnorm);
  res.converged = res.relative_residual <= opts.tolerance;
  res.stop = res.converged ? SolverStop::kConverged : cause;
  if (!res.converged && cause == SolverStop::kConverged) {
    // The recurrence estimate met the tolerance but the true residual does
    // not — drift, not convergence; report it as stagnation of the estimate.
    res.stop = SolverStop::kStagnation;
  }
  return res;
}

SolverResult gmres(const CsrMatrix& a, std::span<const value_t> b,
                   std::span<value_t> x, const PrecondFn& precond,
                   const SolverOptions& opts) {
  return gmres_fused(a, b, x, unfused_operator(a, precond), opts);
}

SolverResult gmres_fused(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<value_t> x, const KrylovOperator& op,
                         const SolverOptions& opts) {
  JAVELIN_CHECK(a.square(), "gmres requires a square matrix");
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const int m = std::max(1, opts.restart);
  const std::shared_ptr<const RowPartition> part_ptr = operator_partition(op, a);
  const RowPartition& part = *part_ptr;

  SolverResult res;
  const value_t bnorm = norm2(b.subspan(0, un));
  if (bnorm == 0) {
    fill(x.subspan(0, un), 0);
    res.converged = true;
    res.stop = SolverStop::kConverged;
    return res;
  }

  // Abnormal exits (non-finite Arnoldi state, exhausted budget) report the
  // TRUE residual of the CURRENT x — in particular a poisoned restart cycle
  // bails without applying its correction, so x is the last finite iterate.
  const auto finish_true_residual = [&](std::span<value_t> scratch,
                                        SolverStop cause) -> SolverResult& {
    spmv(a, part, x, scratch);
    for (std::size_t i = 0; i < un; ++i) scratch[i] = b[i] - scratch[i];
    res.relative_residual = norm2(scratch) / bnorm;
    res.converged = res.relative_residual <= opts.tolerance;
    res.stop = res.converged ? SolverStop::kConverged : cause;
    return res;
  };

  // Krylov basis and the Hessenberg least-squares state (Givens rotations).
  std::vector<std::vector<value_t>> v(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(un));
  std::vector<std::vector<value_t>> h(static_cast<std::size_t>(m) + 1,
                                      std::vector<value_t>(static_cast<std::size_t>(m), 0));
  std::vector<value_t> cs(static_cast<std::size_t>(m), 0);
  std::vector<value_t> sn(static_cast<std::size_t>(m), 0);
  std::vector<value_t> g(static_cast<std::size_t>(m) + 1, 0);
  std::vector<value_t> w(un), z(un), y(static_cast<std::size_t>(m));
  detail::StagnationGuard stagnation{opts.stagnation_window};

  while (res.iterations < opts.max_iterations) {
    // r0 = b - A x (true residual: right preconditioning keeps it exact).
    spmv(a, part, x, w);
    for (std::size_t i = 0; i < un; ++i) w[i] = b[i] - w[i];
    const value_t beta = norm2(w);
    res.relative_residual = beta / bnorm;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      res.stop = SolverStop::kConverged;
      return res;
    }
    if (!std::isfinite(res.relative_residual)) {
      // x itself is poisoned — nothing finite left to report against.
      res.stop = SolverStop::kNonFinite;
      return res;
    }
    if (stagnation.stagnated(res.iterations, res.relative_residual)) {
      // Restart-head residuals are TRUE residuals, so the plateau is real
      // (not estimate drift) — give the budget back to the caller's ladder.
      res.stop = SolverStop::kStagnation;
      return res;
    }
    for (std::size_t i = 0; i < un; ++i) v[0][i] = w[i] / beta;
    std::fill(g.begin(), g.end(), value_t{0});
    g[0] = beta;

    int j = 0;
    for (; j < m && res.iterations < opts.max_iterations; ++j) {
      const std::size_t uj = static_cast<std::size_t>(j);
      obs::TraceSpan iter_span("gmres_iter",
                               static_cast<index_t>(res.iterations));
      // w = A M^{-1} v_j — ONE fused pass over factor and matrix.
      op.apply_spmv(v[uj], z, w);
      ++res.iterations;
      // Modified Gram–Schmidt.
      for (int i = 0; i <= j; ++i) {
        const value_t hij = dot(v[static_cast<std::size_t>(i)], w);
        h[static_cast<std::size_t>(i)][uj] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], w);
      }
      const value_t hnext = norm2(w);
      if (!std::isfinite(hnext)) {
        // The Arnoldi vector went NaN/Inf (poisoned apply or overflow) —
        // bail WITHOUT applying this cycle's correction: x is still the
        // last finite iterate and its true residual is the honest report.
        return finish_true_residual(w, SolverStop::kNonFinite);
      }
      h[uj + 1][uj] = hnext;
      if (hnext != 0) {
        for (std::size_t i = 0; i < un; ++i) v[uj + 1][i] = w[i] / hnext;
      }
      // Apply the accumulated rotations, then form the new one.
      for (int i = 0; i < j; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const value_t t = cs[ui] * h[ui][uj] + sn[ui] * h[ui + 1][uj];
        h[ui + 1][uj] = -sn[ui] * h[ui][uj] + cs[ui] * h[ui + 1][uj];
        h[ui][uj] = t;
      }
      const value_t denom = std::hypot(h[uj][uj], h[uj + 1][uj]);
      if (denom == 0) {
        // Exact breakdown: column j is identically zero, so the solution
        // lies in the span of the previous columns — discard column j (its
        // diagonal is 0 and must not reach the back-substitution).
        break;
      }
      cs[uj] = h[uj][uj] / denom;
      sn[uj] = h[uj + 1][uj] / denom;
      h[uj][uj] = denom;
      h[uj + 1][uj] = 0;
      g[uj + 1] = -sn[uj] * g[uj];
      g[uj] = cs[uj] * g[uj];
      res.relative_residual = std::abs(g[uj + 1]) / bnorm;
      if (!std::isfinite(res.relative_residual)) {
        return finish_true_residual(w, SolverStop::kNonFinite);
      }
      if (res.relative_residual <= opts.tolerance || hnext == 0) {
        // Converged — or a HAPPY BREAKDOWN (hnext == 0): the Krylov space
        // became A M^{-1}-invariant, the least-squares problem is solved
        // exactly by the current columns, and v[j+1] was never written this
        // restart. Continuing the Arnoldi loop would orthogonalize against
        // that stale/zero vector; keep column j (its rotation is applied)
        // and leave the inner loop.
        ++j;
        break;
      }
    }

    // Back-substitute y from the triangularized Hessenberg system.
    for (int i = j - 1; i >= 0; --i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      value_t s = g[ui];
      for (int k = i + 1; k < j; ++k) {
        s -= h[ui][static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(k)];
      }
      y[ui] = s / h[ui][ui];
    }
    // u = V y; x += M^{-1} u.
    fill(std::span<value_t>(w), 0);
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)],
           std::span<value_t>(w));
    }
    op.precond(w, z);
    axpy(1.0, z, x.subspan(0, un));
    // Loop back: the restart head recomputes the TRUE residual b - A x and
    // is the sole convergence arbiter — the rotation-recurrence estimate
    // can drift optimistic over many restarts, so it only steers when to
    // restart, never when to stop.
  }
  // Iteration budget exhausted; report the true residual.
  return finish_true_residual(w, SolverStop::kMaxIterations);
}

}  // namespace javelin
