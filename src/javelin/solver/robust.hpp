// Breakdown-safe solve pipeline: walk a preconditioner ladder — ILU(k),
// Manteuffel-shifted ILU with geometrically escalating α, damped Jacobi,
// identity — restarting the Krylov solve at each rung, and return a
// structured SolveReport (per-attempt trail, failure cause, final shift)
// instead of throwing. Factorization breakdowns surface as FactorStatus via
// the cooperative-abort protocol of exec/run.hpp, so no retry ever crosses
// an exception out of a parallel region; each shifted retry reuses the
// one-time symbolic analysis of ilu_prepare and costs only an O(nnz)
// scatter plus the numeric sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/solver/krylov.hpp"

namespace javelin {

/// Rung of the preconditioner fallback ladder, strongest first.
enum class PrecondLevel : std::uint8_t {
  kIlu,         ///< ILU(k) on the unmodified matrix
  kShiftedIlu,  ///< ILU(k) of A + αI (Manteuffel diagonal shift)
  kJacobi,      ///< damped Jacobi z = ω D⁻¹ r
  kIdentity,    ///< unpreconditioned (z = r)
};

const char* to_string(PrecondLevel level) noexcept;

/// Krylov driver selection. kAuto picks PCG for (exactly) symmetric
/// matrices and GMRES otherwise; an indefinite "symmetric" system that
/// breaks PCG down is retried with GMRES on the same ladder rung.
enum class KrylovMethod : std::uint8_t { kAuto, kPcg, kGmres };

/// Why the pipeline's final answer is not a converged solve (kNone when it
/// is). Mirrors SolverStop plus the factorization-side breakdown.
enum class FailureCause : std::uint8_t {
  kNone,             ///< converged
  kFactorBreakdown,  ///< no ladder rung produced a usable factorization
  kKrylovBreakdown,  ///< exact Krylov breakdown ((r,z) or (p,Ap) hit zero)
  kNonFinite,        ///< NaN/Inf in the iteration
  kStagnation,       ///< residual plateaued within the stagnation window
  kMaxIterations,    ///< iteration budget exhausted
};

const char* to_string(FailureCause cause) noexcept;

/// One ladder rung as it actually ran.
struct AttemptReport {
  PrecondLevel level = PrecondLevel::kIlu;
  /// Absolute Manteuffel shift α applied to the diagonal (0 off the shifted
  /// rungs). Escalates geometrically: initial_shift · growthᵏ · max|a_ii|.
  value_t shift = 0;
  /// Whether the numeric factorization succeeded (always true on the
  /// Jacobi/identity rungs, which factor nothing).
  bool factored = true;
  /// Permuted index of the first failed pivot when !factored.
  index_t factor_row = kInvalidIndex;
  /// PCG broke down on this rung and GMRES re-ran it from the same guess.
  bool used_gmres = false;
  /// Krylov outcome of the rung (default-initialized when !factored).
  SolverResult result;
};

struct RobustOptions {
  IluOptions ilu;
  SolverOptions solver;
  KrylovMethod method = KrylovMethod::kAuto;
  /// First shift, relative to max|a_ii| (the absolute α of shifted attempt
  /// k ≥ 0 is initial_shift · shift_growth^k · max|a_ii|).
  value_t initial_shift = 1e-3;
  value_t shift_growth = 10.0;
  /// Shifted-ILU attempts after the unshifted one.
  int max_shift_attempts = 4;
  /// Damping ω of the Jacobi rung.
  value_t jacobi_damping = 0.8;
  bool allow_jacobi = true;
  bool allow_identity = true;
  /// Stagnation window handed to the Krylov drivers when solver.
  /// stagnation_window is 0 — the robust pipeline always wants plateaus
  /// reported (they trigger the next rung) rather than a silently burned
  /// iteration budget. Set solver.stagnation_window to override.
  int default_stagnation_window = 50;
};

/// What a robust solve did, end to end. Returned instead of thrown: the
/// only exceptions out of RobustSolver::solve are structural
/// (JAVELIN_CHECK) and test-only fault-injection aborts.
struct SolveReport {
  bool converged = false;
  double relative_residual = 0.0;  ///< true residual of the returned x
  int total_iterations = 0;        ///< summed over every attempt
  FailureCause cause = FailureCause::kNone;
  value_t shift_used = 0;              ///< shift of the rung that produced x
  PrecondLevel level_used = PrecondLevel::kIlu;
  ExecBackend backend = ExecBackend::kP2P;
  std::vector<AttemptReport> attempts;

  /// One-line human-readable attempt trail (for logs and test diagnostics).
  std::string summary() const;
};

/// Factor-once / solve-many packaging of the breakdown-safe pipeline: the
/// symbolic analysis, planning and schedules are built once (ilu_prepare);
/// every solve() walks the ladder with O(nnz) numeric retries. Not safe for
/// concurrent solve() calls on one instance.
class RobustSolver {
 public:
  /// `a` must be square and outlive the solver. A STRUCTURALLY
  /// unfactorable matrix (e.g. missing diagonal entry) skips the ILU rungs
  /// entirely instead of throwing — the ladder then starts at Jacobi.
  explicit RobustSolver(const CsrMatrix& a, RobustOptions opts = {});

  /// Solve A x = b, walking the ladder until a rung converges. `x` holds
  /// the initial guess on entry (every rung restarts from it); on exit it
  /// holds the converged solution, or the best-residual iterate of any
  /// rung when nothing converged.
  SolveReport solve(std::span<const value_t> b, std::span<value_t> x);

  /// Exact symmetry (drives the kAuto method choice).
  bool symmetric() const noexcept { return symmetric_; }
  /// max|a_ii| — the shift unit (1 when the stored diagonal is all zero).
  value_t diagonal_scale() const noexcept { return diag_scale_; }
  /// Null when the matrix is structurally unfactorable.
  const Factorization* factorization() const noexcept { return factor_.get(); }

 private:
  const CsrMatrix* a_;
  RobustOptions opts_;
  bool symmetric_ = false;
  value_t diag_scale_ = 1;
  std::unique_ptr<Factorization> factor_;
  SolveWorkspace ws_;
};

/// One-shot convenience wrapper around RobustSolver.
SolveReport solve_robust(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<value_t> x, const RobustOptions& opts = {});

}  // namespace javelin
