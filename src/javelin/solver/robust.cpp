#include "javelin/solver/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "javelin/obs/trace.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/sparse/spmv.hpp"

namespace javelin {

const char* to_string(PrecondLevel level) noexcept {
  switch (level) {
    case PrecondLevel::kIlu:
      return "ilu";
    case PrecondLevel::kShiftedIlu:
      return "shifted_ilu";
    case PrecondLevel::kJacobi:
      return "jacobi";
    case PrecondLevel::kIdentity:
      return "identity";
  }
  return "unknown";
}

const char* to_string(FailureCause cause) noexcept {
  switch (cause) {
    case FailureCause::kNone:
      return "none";
    case FailureCause::kFactorBreakdown:
      return "factor_breakdown";
    case FailureCause::kKrylovBreakdown:
      return "krylov_breakdown";
    case FailureCause::kNonFinite:
      return "non_finite";
    case FailureCause::kStagnation:
      return "stagnation";
    case FailureCause::kMaxIterations:
      return "max_iterations";
  }
  return "unknown";
}

namespace {

/// The shift unit: the largest finite |a_ii| the pattern stores, so the
/// ladder's α is scale-invariant. 1 when the diagonal is absent/zero — an
/// absolute fallback unit is still a usable escalation base.
value_t max_abs_diagonal(const CsrMatrix& a) {
  value_t m = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    const value_t d = std::abs(a.at(r, r));
    if (std::isfinite(d) && d > m) m = d;
  }
  return m > 0 ? m : value_t{1};
}

FailureCause cause_of(SolverStop stop) noexcept {
  switch (stop) {
    case SolverStop::kConverged:
      return FailureCause::kNone;
    case SolverStop::kMaxIterations:
      return FailureCause::kMaxIterations;
    case SolverStop::kBreakdown:
      return FailureCause::kKrylovBreakdown;
    case SolverStop::kNonFinite:
      return FailureCause::kNonFinite;
    case SolverStop::kStagnation:
      return FailureCause::kStagnation;
  }
  return FailureCause::kNone;
}

}  // namespace

std::string SolveReport::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "failed") << " level=" << to_string(level_used)
     << " shift=" << shift_used << " cause=" << to_string(cause)
     << " iters=" << total_iterations << " rel_res=" << relative_residual;
  for (const AttemptReport& at : attempts) {
    os << " | " << to_string(at.level);
    if (at.shift != 0) os << "(alpha=" << at.shift << ")";
    if (!at.factored) {
      os << ": factor breakdown at row " << at.factor_row;
      continue;
    }
    os << ": " << to_string(at.result.stop) << " it=" << at.result.iterations
       << " res=" << at.result.relative_residual;
    if (at.used_gmres) os << " [gmres retry]";
  }
  return os.str();
}

RobustSolver::RobustSolver(const CsrMatrix& a, RobustOptions opts)
    : a_(&a), opts_(std::move(opts)) {
  JAVELIN_CHECK(a.square(), "RobustSolver requires a square matrix");
  // Exact symmetry test: the ladder must never hand an unsymmetric system
  // to PCG on a float-tolerance guess, and the in-tree matrices are built
  // symmetric to the bit when they are symmetric at all.
  symmetric_ = max_abs_difference(a, transpose(a)) == 0;
  diag_scale_ = max_abs_diagonal(a);
  try {
    factor_ = std::make_unique<Factorization>(ilu_prepare(a, opts_.ilu));
  } catch (const Error&) {
    // Structurally unfactorable (missing diagonal, planner rejection): no
    // shift can repair the PATTERN, so the ILU rungs are skipped and the
    // ladder starts at Jacobi.
    factor_.reset();
  }
}

SolveReport RobustSolver::solve(std::span<const value_t> b,
                                std::span<value_t> x) {
  const std::size_t un = static_cast<std::size_t>(a_->rows());
  JAVELIN_CHECK(b.size() >= un, "robust solve: rhs smaller than n");
  JAVELIN_CHECK(x.size() >= un, "robust solve: solution smaller than n");

  SolveReport report;
  report.backend = opts_.ilu.exec_backend;

  SolverOptions so = opts_.solver;
  if (so.stagnation_window == 0) {
    so.stagnation_window = opts_.default_stagnation_window;
  }

  // Every rung restarts from the caller's guess; the best-residual iterate
  // across rungs is what a fully failed solve hands back.
  const std::vector<value_t> x0(x.begin(), x.begin() + un);
  std::vector<value_t> best_x;
  value_t best_res = std::numeric_limits<value_t>::infinity();
  bool any_krylov = false;

  const bool prefer_pcg =
      opts_.method == KrylovMethod::kPcg ||
      (opts_.method == KrylovMethod::kAuto && symmetric_);

  // Run one ladder rung: restart from x0, solve, record the attempt, track
  // the best iterate. Returns true when the rung converged.
  const auto run_level = [&](PrecondLevel level, value_t shift,
                             const PrecondFn& precond) -> bool {
    // Ladder-attempt span: one per rung actually handed to a Krylov driver,
    // arg = position in the attempt trail (factor-breakdown rungs that never
    // reach a solve are covered by the "robust_factor" spans instead).
    obs::TraceSpan attempt_span(
        "robust_attempt", static_cast<index_t>(report.attempts.size()));
    AttemptReport at;
    at.level = level;
    at.shift = shift;
    std::copy(x0.begin(), x0.end(), x.begin());
    if (prefer_pcg) {
      at.result = pcg(*a_, b, x, precond, so);
      if (!at.result.converged &&
          (at.result.stop == SolverStop::kBreakdown ||
           at.result.stop == SolverStop::kNonFinite)) {
        // Indefinite (or numerically hostile) system: PCG's breakdown is a
        // property of the method, not the rung — re-run the SAME rung with
        // GMRES before escalating the preconditioner.
        report.total_iterations += at.result.iterations;
        std::copy(x0.begin(), x0.end(), x.begin());
        at.result = gmres(*a_, b, x, precond, so);
        at.used_gmres = true;
      }
    } else {
      at.result = gmres(*a_, b, x, precond, so);
    }
    any_krylov = true;
    report.total_iterations += at.result.iterations;
    const bool converged = at.result.converged;
    if (std::isfinite(at.result.relative_residual) &&
        at.result.relative_residual < best_res) {
      best_res = at.result.relative_residual;
      best_x.assign(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(un));
      report.relative_residual = at.result.relative_residual;
      report.shift_used = shift;
      report.level_used = level;
      report.cause = cause_of(at.result.stop);
    }
    report.attempts.push_back(std::move(at));
    return converged;
  };

  const auto finish_converged = [&]() -> SolveReport& {
    report.converged = true;
    report.cause = FailureCause::kNone;
    // x already holds the converged rung's iterate (run_level just wrote
    // it); best_x tracked the same values.
    return report;
  };

  // --- rungs 0..max_shift_attempts: ILU(k), then shifted ILU ---------------
  if (factor_) {
    for (int attempt = 0; attempt <= opts_.max_shift_attempts; ++attempt) {
      const value_t shift =
          attempt == 0
              ? value_t{0}
              : opts_.initial_shift *
                    std::pow(opts_.shift_growth, attempt - 1) * diag_scale_;
      const PrecondLevel level =
          attempt == 0 ? PrecondLevel::kIlu : PrecondLevel::kShiftedIlu;
      // O(nnz) retry: rescatter A's values through the persistent map, add
      // α on the diagonal slots (the plan permutation is symmetric, so
      // diag_pos IS the diagonal of A + αI), re-run the numeric sweep.
      FactorStatus fs;
      {
        obs::TraceSpan factor_span("robust_factor",
                                   static_cast<index_t>(attempt));
        scatter_values(*factor_, *a_);
        if (shift != 0) {
          std::span<value_t> vals = factor_->lu.values_mut();
          for (index_t p : factor_->diag_pos) {
            vals[static_cast<std::size_t>(p)] += shift;
          }
        }
        fs = ilu_factor_numeric_status(*factor_);
      }
      if (!fs.ok()) {
        AttemptReport at;
        at.level = level;
        at.shift = shift;
        at.factored = false;
        at.factor_row = fs.row;
        report.attempts.push_back(at);
        continue;  // escalate the shift
      }
      const PrecondFn precond = [this](std::span<const value_t> r,
                                       std::span<value_t> z) {
        ilu_apply(*factor_, r, z, ws_);
      };
      if (run_level(level, shift, precond)) return finish_converged();
    }
  }

  // --- fallback rungs ------------------------------------------------------
  if (opts_.allow_jacobi) {
    // Damped Jacobi z = ω D⁻¹ r; rows with a zero/absent/non-finite
    // diagonal fall back to ω r so the rung itself cannot break down.
    std::vector<value_t> scaled_inv_diag(un);
    for (index_t r = 0; r < a_->rows(); ++r) {
      const value_t d = a_->at(r, r);
      scaled_inv_diag[static_cast<std::size_t>(r)] =
          (d != 0 && std::isfinite(d)) ? opts_.jacobi_damping / d
                                       : opts_.jacobi_damping;
    }
    const PrecondFn jacobi = [inv = std::move(scaled_inv_diag)](
                                 std::span<const value_t> r,
                                 std::span<value_t> z) {
      for (std::size_t i = 0; i < z.size(); ++i) z[i] = inv[i] * r[i];
    };
    if (run_level(PrecondLevel::kJacobi, 0, jacobi)) {
      return finish_converged();
    }
  }
  if (opts_.allow_identity) {
    if (run_level(PrecondLevel::kIdentity, 0, identity_preconditioner())) {
      return finish_converged();
    }
  }

  // --- nothing converged ---------------------------------------------------
  if (!best_x.empty()) {
    std::copy(best_x.begin(), best_x.end(), x.begin());
  } else {
    std::copy(x0.begin(), x0.end(), x.begin());
  }
  if (!any_krylov) {
    // Every rung died in the factorization and the fallbacks were disabled:
    // the honest answer is the caller's own guess and its residual.
    report.cause = FailureCause::kFactorBreakdown;
    std::vector<value_t> scratch(un);
    const RowPartition part = RowPartition::build(*a_);
    spmv(*a_, part, x.subspan(0, un), scratch);
    for (std::size_t i = 0; i < un; ++i) scratch[i] = b[i] - scratch[i];
    const value_t bnorm = norm2(b.subspan(0, un));
    report.relative_residual =
        bnorm == 0 ? norm2(scratch) : norm2(scratch) / bnorm;
  }
  return report;
}

SolveReport solve_robust(const CsrMatrix& a, std::span<const value_t> b,
                         std::span<value_t> x, const RobustOptions& opts) {
  RobustSolver solver(a, opts);
  return solver.solve(b, x);
}

}  // namespace javelin
