// User-facing options of the Javelin framework (paper §III: fill level k,
// drop tolerance τ, modified ILU, level pattern choice, lower-stage method
// and the planner sensitivity knobs of Tables III/IV).
#pragma once

#include <functional>

#include "javelin/exec/backend.hpp"
#include "javelin/graph/levels.hpp"
#include "javelin/support/types.hpp"

namespace javelin {

namespace obs {
class ExecObs;  // obs/exec_obs.hpp
}

/// Where a fault-injection hook fires (see IluOptions::fault_hook).
enum class FaultSite {
  kFactorRow,   ///< after a numeric-phase row factored (upper stage or corner)
  kForwardRow,  ///< after a forward-sweep scheduled/tail row
  kBackwardRow, ///< after a backward-sweep row (incl. fused/panel variants)
};

/// Test-only fault-injection hook: called with the site and the (permuted)
/// row just processed; returning false poisons that row exactly as a bad
/// pivot would, driving the cooperative-abort path of the exec backends.
/// An empty hook (the default) keeps every hot path on its unguarded,
/// zero-polling variant.
using FaultHook = std::function<bool(FaultSite, index_t)>;

/// Which method factors the rows excluded from level scheduling (paper
/// §III-B). kAuto lets the planner choose from the matrix structure, as the
/// paper's default does.
enum class LowerMethod { kNone, kEvenRows, kSegmentedRows, kAuto };

const char* lower_method_name(LowerMethod m);

struct IluOptions {
  // --- numerical options -----------------------------------------------
  /// Fill level k of ILU(k). 0 keeps exactly the pattern of A.
  int fill_level = 0;
  /// Drop tolerance τ of ILU(k,τ): computed entries with magnitude below
  /// τ·‖row‖₁/nnz(row) are zeroed (storage retained, value dropped). 0
  /// disables dropping.
  double drop_tolerance = 0.0;
  /// Modified ILU: add discarded fill (and dropped entries) to the diagonal
  /// so row sums are preserved [MacLachlan et al., paper ref 2].
  bool modified = false;
  /// Smallest pivot magnitude accepted; below this the factorization throws
  /// (Javelin, like most ILUs, does not pivot — paper §III).
  double pivot_threshold = 1e-14;

  // --- scheduling options ------------------------------------------------
  /// Pattern driving the level computation. lower(A+Aᵀ) is the default; it
  /// enables SR and stri tiling (paper §VII: "we by default always recommend
  /// using the lower(A+Aᵀ) pattern").
  LevelPattern level_pattern = LevelPattern::kLowerASymmetric;
  /// Lower-stage method.
  LowerMethod lower_method = LowerMethod::kAuto;
  /// A level is "too small" for the upper stage when it has fewer rows than
  /// this (the sensitivity parameter α of Table III's R-16/24/32 columns).
  /// <= 0 means "derive from thread count" (2·threads, at least 16).
  index_t min_level_rows = 0;
  /// A trailing level is also moved to the lower stage when its mean row
  /// density exceeds this multiple of the matrix mean ("row density" rule).
  double density_factor = 8.0;
  /// Only levels in the trailing fraction of the level order may be moved
  /// ("relative location" rule; Fig. 3's sandwiched small levels stay).
  double relative_location = 0.5;
  /// SR tile size: target nonzeros per tile/task.
  index_t sr_tile_nnz = 256;
  /// Rows per point-to-point schedule item (blocked trsv/factorization):
  /// each item issues one merged wait list and one counter publish for the
  /// whole row block, amortizing the spin-wait checks inside a level.
  /// Chunks never cross a level boundary. <= 0 means the built-in default.
  index_t p2p_chunk_rows = 0;
  /// Factor the lower-stage corner block in parallel (level-scheduled)
  /// instead of serially. Default off: "for most matrices, serial seems to
  /// be good enough" (paper §III-B).
  bool parallel_corner = false;
  /// Thread count to plan for; <= 0 means use the OpenMP default.
  int num_threads = 0;
  /// Runtime team override installed by the autotuner (tune/): when > 0 the
  /// solve paths retarget to this team instead of the factor-time plan's
  /// width (still clamped by the OpenMP runtime setting and — under
  /// retarget_oversubscribed — the hardware core count, like any team).
  /// 0, the default, keeps the planned team.
  int tuned_threads = 0;
  /// Spin-wait escalation budget: pause-loop iterations a waiting thread
  /// spends before it starts yielding its CPU (support/spinwait.hpp
  /// Backoff ladder). Plumbed into every schedule this factorization
  /// builds or retargets. <= 0 — the default — derives the budget from
  /// team size vs hardware cores (spin_budget_for).
  int spin_max_pauses = 0;

  // --- batched serving -----------------------------------------------------
  /// Panel width of the batched many-RHS path (ilu/batch.hpp): solve_many
  /// splits its k right-hand sides into column-major panels of at most this
  /// many columns and sweeps each panel in one scheduled pass (every factor
  /// entry loaded once per register block instead of once per RHS). <= 0
  /// means the built-in default (kDefaultBatchRhs). Width never changes
  /// results: batched solves are bitwise equal to k independent solves.
  index_t batch_rhs = 0;

  // --- execution backend ---------------------------------------------------
  /// Synchronization strategy of the factorization/solve schedules:
  /// point-to-point sparsified spin-waits (the paper's contribution) or the
  /// classic barrier-synchronized level-set sweep (CSR-LS, the §VI
  /// baseline). Both are bitwise-identical at any team size; only the
  /// synchronization cost differs.
  ExecBackend exec_backend = ExecBackend::kP2P;
  /// Runtime-team autotune (first slice of the ROADMAP thread-count item):
  /// when a SOLVE would launch the planned team onto fewer hardware cores
  /// than threads, re-plan (retarget) the schedules down to the core count
  /// instead of spinning more threads than cores. A runtime
  /// omp_set_num_threads below the plan always retargets, independent of
  /// this flag. Tests pin false to force planned-width scheduled execution.
  bool retarget_oversubscribed = true;
  /// Statically verify every schedule this factorization builds or
  /// retargets (verify/verify.hpp): partition integrity, level soundness,
  /// happens-before coverage of all row dependencies, deadlock freedom. A
  /// failed proof throws javelin::Error with row-precise diagnostics before
  /// the schedule can execute. Defaults to on in debug builds (an O(nnz)
  /// assertion); release builds opt in explicitly (bench --verify does).
#ifdef NDEBUG
  bool verify_schedules = false;
#else
  bool verify_schedules = true;
#endif

  // --- fault injection (tests only) ---------------------------------------
  /// When set, consulted after every factor/sweep row; returning false
  /// aborts the enclosing region cooperatively (no throw from inside the
  /// parallel region, bounded spin-wait termination). Leave empty in
  /// production: the empty-hook paths carry no abort polling.
  FaultHook fault_hook;

  // --- observability --------------------------------------------------------
  /// Non-owning spin-wait telemetry sink. When set, the factor/sweep
  /// regions run their instrumented template instantiations (per-thread
  /// wait counters, per-(thread, level) busy/stall attribution, trace
  /// spans when the trace session is enabled) and aggregate into the
  /// sink's per-region ExecStats. Null — the default — keeps every hot
  /// path on the zero-overhead uninstrumented instantiation. The fault
  /// hook takes precedence: a region with both set runs the guarded
  /// (hook) variant uninstrumented. The sink is not thread-safe across
  /// concurrent solves; attach one per stream.
  obs::ExecObs* exec_obs = nullptr;
};

}  // namespace javelin
