#include "javelin/ilu/solve.hpp"

#include "javelin/support/parallel.hpp"

namespace javelin {

namespace {

/// Partial sum of row r over its strictly-lower columns left of `col_hi`,
/// starting from `acc`. Columns are sorted, so this is a prefix walk.
inline value_t lower_partial(const CsrMatrix& lu, index_t r, index_t col_hi,
                             std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= col_hi || c >= r) break;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Remaining forward sum of a lower-stage row: corner columns in
/// [n_upper, r). Resumes from the precomputed upper-column partial sum so the
/// accumulation order matches the serial single-pass reference bitwise.
inline value_t corner_partial(const CsrMatrix& lu, index_t r, index_t n_upper,
                              std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= r) break;
    if (c < n_upper) continue;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Backward step for one row: subtract the strictly-upper products and divide
/// by the diagonal (the fused scale).
inline void backward_row(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                         index_t r, std::span<value_t> x) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  const index_t dp = diag_pos[static_cast<std::size_t>(r)];
  value_t acc = 0;
  for (index_t k = dp + 1; k < lu.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  x[static_cast<std::size_t>(r)] =
      (x[static_cast<std::size_t>(r)] - acc) / vv[static_cast<std::size_t>(dp)];
}

}  // namespace

void trsv_serial(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                 std::span<const value_t> b, std::span<value_t> x) {
  const index_t n = lu.rows();
  for (index_t r = 0; r < n; ++r) {
    // Reads of columns < r see already-finished entries of x, so this is
    // correct whether or not x aliases b.
    const value_t acc = lower_partial(lu, r, n, x, 0);
    x[static_cast<std::size_t>(r)] = b[static_cast<std::size_t>(r)] - acc;
  }
  for (index_t r = n; r-- > 0;) backward_row(lu, diag_pos, r, x);
}

void trsv_forward(const Factorization& f, std::span<value_t> x,
                  SolveWorkspace& ws) {
  const CsrMatrix& lu = f.lu;
  const index_t n = f.n();
  const index_t n_upper = f.plan.n_upper;
  const index_t n_lower = n - n_upper;

  // Upper-stage rows: same schedule, same spin-waits as the factorization.
  // x[r] holds the rhs on entry; lower_partial reads only columns < r, whose
  // completion the schedule's waits guarantee.
  p2p_execute(
      f.fwd,
      [&](index_t r, int) {
        x[static_cast<std::size_t>(r)] -= lower_partial(lu, r, r, x, 0);
      },
      ws.progress);

  if (n_lower == 0) return;
  if (f.fwd.threads <= 1 || n_lower < 64) {
    // Small tail: plain ordered sweep (corner coupling resolved in order).
    for (index_t r = n_upper; r < n; ++r) {
      x[static_cast<std::size_t>(r)] -= lower_partial(lu, r, n, x, 0);
    }
    return;
  }
  // ER-style tail: the upper-column products of the moved rows are mutually
  // independent once the upper stage finished — accumulate them in parallel,
  // then resolve the (small) corner coupling in row order.
  if (ws.lower_acc.size() < static_cast<std::size_t>(n_lower)) {
    ws.lower_acc.resize(static_cast<std::size_t>(n_lower));
  }
  std::span<value_t> acc(ws.lower_acc);
#pragma omp parallel for schedule(static)
  for (index_t r = n_upper; r < n; ++r) {
    acc[static_cast<std::size_t>(r - n_upper)] =
        lower_partial(lu, r, n_upper, x, 0);
  }
  for (index_t r = n_upper; r < n; ++r) {
    x[static_cast<std::size_t>(r)] -= corner_partial(
        lu, r, n_upper, x, acc[static_cast<std::size_t>(r - n_upper)]);
  }
}

void trsv_backward(const Factorization& f, std::span<value_t> x,
                   SolveWorkspace& ws) {
  p2p_execute(
      f.bwd, [&](index_t r, int) { backward_row(f.lu, f.diag_pos, r, x); },
      ws.progress);
}

void trsv_forward_serial(const Factorization& f, std::span<value_t> x) {
  const index_t n = f.n();
  for (index_t r = 0; r < n; ++r) {
    x[static_cast<std::size_t>(r)] -= lower_partial(f.lu, r, n, x, 0);
  }
}

void trsv_backward_serial(const Factorization& f, std::span<value_t> x) {
  for (index_t r = f.n(); r-- > 0;) backward_row(f.lu, f.diag_pos, r, x);
}

void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z, SolveWorkspace& ws) {
  const index_t n = f.n();
  ws.resize(n, f.plan.num_lower_rows());
  const auto& perm = f.plan.perm;
  std::span<value_t> x(ws.x);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  }
  trsv_forward(f, x, ws);
  trsv_backward(f, x, ws);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
}

void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z) {
  SolveWorkspace ws;
  ilu_apply(f, r, z, ws);
}

void ilu_apply_serial(const Factorization& f, std::span<const value_t> r,
                      std::span<value_t> z, SolveWorkspace& ws) {
  const index_t n = f.n();
  ws.resize(n, f.plan.num_lower_rows());
  const auto& perm = f.plan.perm;
  std::span<value_t> x(ws.x);
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  }
  trsv_forward_serial(f, x);
  trsv_backward_serial(f, x);
  for (index_t i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
}

}  // namespace javelin
