#include "javelin/ilu/solve.hpp"

#include "javelin/exec/run.hpp"
#include "javelin/ilu/forward_sweep.hpp"
#include "javelin/ilu/trsv_kernels.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin {

using detail::backward_row;
using detail::corner_partial;
using detail::lower_partial;

void trsv_serial(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                 std::span<const value_t> b, std::span<value_t> x) {
  const index_t n = lu.rows();
  for (index_t r = 0; r < n; ++r) {
    // Reads of columns < r see already-finished entries of x, so this is
    // correct whether or not x aliases b.
    const value_t acc = lower_partial(lu, r, n, x, 0);
    x[static_cast<std::size_t>(r)] = b[static_cast<std::size_t>(r)] - acc;
  }
  for (index_t r = n; r-- > 0;) backward_row(lu, diag_pos, r, x);
}

ExecStatus trsv_forward(const Factorization& f, std::span<value_t> x,
                        SolveWorkspace& ws) {
  // In-place: x[r] holds the permuted rhs on entry, read before the row's
  // slot is overwritten (x[r] = rhs - acc is the same subtraction as the
  // historical x[r] -= acc, bitwise).
  return detail::forward_sweep(
      f, [&x](index_t r) { return x[static_cast<std::size_t>(r)]; }, x, ws);
}

ExecStatus trsv_backward(const Factorization& f, std::span<value_t> x,
                         SolveWorkspace& ws) {
  const FaultHook& hook = f.opts.fault_hook;
  if (hook) {
    return exec_run(
        runtime_bwd(f, ws.sched),
        [&](index_t r, int) -> bool {
          backward_row(f.lu, f.diag_pos, r, x);
          return hook(FaultSite::kBackwardRow, r);
        },
        ws.progress);
  }
  if (f.opts.exec_obs != nullptr) {
    exec_run_obs(
        runtime_bwd(f, ws.sched),
        [&](index_t r, int) { backward_row(f.lu, f.diag_pos, r, x); },
        ws.progress, *f.opts.exec_obs, obs::Region::kBackward);
    return {};
  }
  exec_run(
      runtime_bwd(f, ws.sched),
      [&](index_t r, int) { backward_row(f.lu, f.diag_pos, r, x); },
      ws.progress);
  return {};
}

void trsv_forward_serial(const Factorization& f, std::span<value_t> x) {
  const index_t n = f.n();
  for (index_t r = 0; r < n; ++r) {
    x[static_cast<std::size_t>(r)] -= lower_partial(f.lu, r, n, x, 0);
  }
}

void trsv_backward_serial(const Factorization& f, std::span<value_t> x) {
  for (index_t r = f.n(); r-- > 0;) backward_row(f.lu, f.diag_pos, r, x);
}

ExecStatus ilu_apply_status(const Factorization& f, std::span<const value_t> r,
                            std::span<value_t> z, SolveWorkspace& ws) {
  const index_t n = f.n();
  ws.resize(n, f.plan.num_lower_rows());
  const auto& perm = f.plan.perm;
  std::span<value_t> x(ws.x);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  }
  ExecStatus st = trsv_forward(f, x, ws);
  if (!st.ok()) return st;
  st = trsv_backward(f, x, ws);
  if (!st.ok()) return st;
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
  return {};
}

void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z, SolveWorkspace& ws) {
  const ExecStatus st = ilu_apply_status(f, r, z, ws);
  if (!st.ok()) {
    throw AbortError("triangular sweep aborted at permuted row " +
                     std::to_string(st.row) + " (fault injection)");
  }
}

void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z) {
  SolveWorkspace ws;
  ilu_apply(f, r, z, ws);
}

void ilu_apply_serial(const Factorization& f, std::span<const value_t> r,
                      std::span<value_t> z, SolveWorkspace& ws) {
  const index_t n = f.n();
  ws.resize(n, f.plan.num_lower_rows());
  const auto& perm = f.plan.perm;
  std::span<value_t> x(ws.x);
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        r[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  }
  trsv_forward_serial(f, x);
  trsv_backward_serial(f, x);
  for (index_t i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
        x[static_cast<std::size_t>(i)];
  }
}

}  // namespace javelin
