#include "javelin/ilu/batch.hpp"

#include <algorithm>
#include <string>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/forward_sweep.hpp"
#include "javelin/ilu/trsv_kernels.hpp"
#include "javelin/sparse/panel.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin {

using detail::backward_row_panel;
using detail::for_each_panel_block;
using detail::lower_partial_panel;
using detail::spmv_row_panel;

namespace {

/// Shared entry validation of the batched paths (the PR 3 Matrix-Market
/// contract: malformed dimensions throw instead of reading out of bounds).
void check_panel(const Factorization& f, std::size_t r_size, std::size_t z_size,
                 index_t k, const char* what) {
  JAVELIN_CHECK(k >= 1, std::string(what) + " requires k >= 1 right-hand sides");
  const std::size_t need =
      static_cast<std::size_t>(f.n()) * static_cast<std::size_t>(k);
  JAVELIN_CHECK(r_size >= need,
                std::string(what) + ": rhs panel smaller than n x k");
  JAVELIN_CHECK(z_size >= need,
                std::string(what) + ": solution panel smaller than n x k");
}

/// Panel gather x = P r (columns independent; elementwise, so the parallel
/// split never changes values).
void gather_panel(std::span<const index_t> perm, std::span<const value_t> r,
                  value_t* x, index_t n, index_t k) {
  const std::size_t un = static_cast<std::size_t>(n);
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(j) * un + static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(j) * un +
            static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    }
  }
}

/// Panel scatter z = Pᵀ x.
void scatter_panel(std::span<const index_t> perm, const value_t* x,
                   std::span<value_t> z, index_t n, index_t k) {
  const std::size_t un = static_cast<std::size_t>(n);
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) {
      z[static_cast<std::size_t>(j) * un +
        static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
          x[static_cast<std::size_t>(j) * un + static_cast<std::size_t>(i)];
    }
  }
}

}  // namespace

void ilu_apply_panel(const Factorization& f, std::span<const value_t> r,
                     std::span<value_t> z, index_t k, SolveWorkspace& ws) {
  check_panel(f, r.size(), z.size(), k, "ilu_apply_panel");
  const index_t n = f.n();
  const std::size_t un = static_cast<std::size_t>(n);
  ws.resize_panel(n, f.plan.num_lower_rows(), k);
  value_t* x = ws.x.data();

  gather_panel(f.plan.perm, r, x, n, k);
  const ExecStatus fst = detail::forward_sweep_panel(
      f,
      [x, un](index_t row, index_t j) {
        return x[static_cast<std::size_t>(row) + static_cast<std::size_t>(j) * un];
      },
      x, un, k, ws);
  if (!fst.ok()) {
    throw AbortError("panel forward sweep aborted at permuted row " +
                     std::to_string(fst.row) + " (fault injection)");
  }
  const CsrMatrix& lu = f.lu;
  const FaultHook& hook = f.opts.fault_hook;
  const auto backward_panel_row = [&](index_t row) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      backward_row_panel<KB>(lu, f.diag_pos, row,
                             x + static_cast<std::size_t>(j0) * un, un);
    });
  };
  if (hook) {
    const ExecStatus bst = exec_run(
        runtime_bwd(f, ws.sched),
        [&](index_t row, int) -> bool {
          backward_panel_row(row);
          return hook(FaultSite::kBackwardRow, row);
        },
        ws.progress);
    if (!bst.ok()) {
      // Converted OUTSIDE the parallel region: the abort itself drained
      // cooperatively; the throw is what exercises caller RAII (leases).
      throw AbortError("panel backward sweep aborted at permuted row " +
                       std::to_string(bst.row) + " (fault injection)");
    }
  } else if (f.opts.exec_obs != nullptr) {
    exec_run_obs(
        runtime_bwd(f, ws.sched),
        [&](index_t row, int) { backward_panel_row(row); }, ws.progress,
        *f.opts.exec_obs, obs::Region::kBackward);
  } else {
    exec_run(
        runtime_bwd(f, ws.sched),
        [&](index_t row, int) { backward_panel_row(row); }, ws.progress);
  }
  scatter_panel(f.plan.perm, x, z, n, k);
}

void ilu_apply_panel_serial(const Factorization& f, std::span<const value_t> r,
                            std::span<value_t> z, index_t k,
                            SolveWorkspace& ws) {
  check_panel(f, r.size(), z.size(), k, "ilu_apply_panel");
  const index_t n = f.n();
  const std::size_t un = static_cast<std::size_t>(n);
  ws.resize_panel(n, f.plan.num_lower_rows(), k);
  value_t* x = ws.x.data();
  const auto& perm = f.plan.perm;
  const CsrMatrix& lu = f.lu;

  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(j) * un + static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(j) * un +
            static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    }
  }
  for (index_t row = 0; row < n; ++row) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t acc[KB] = {};
      value_t* xb = x + static_cast<std::size_t>(j0) * un;
      lower_partial_panel<KB>(lu, row, n, xb, un, acc);
      for (int j = 0; j < KB; ++j) {
        value_t& slot =
            xb[static_cast<std::size_t>(row) + static_cast<std::size_t>(j) * un];
        slot = slot - acc[j];
      }
    });
  }
  for (index_t row = n; row-- > 0;) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      backward_row_panel<KB>(lu, f.diag_pos, row,
                             x + static_cast<std::size_t>(j0) * un, un);
    });
  }
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) {
      z[static_cast<std::size_t>(j) * un +
        static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
          x[static_cast<std::size_t>(j) * un + static_cast<std::size_t>(i)];
    }
  }
}

namespace {

/// Straight-line panel backward sweep (scatter folded in) followed by the
/// panel SpMV — the single-thread execution of the fused panel pass and the
/// short-team fallback (mirrors serial_backward_spmv in fused.cpp).
ExecStatus serial_backward_spmv_panel(const Factorization& f,
                                      const CsrMatrix& a, value_t* x,
                                      std::span<value_t> z,
                                      std::span<value_t> t, index_t k) {
  const std::size_t un = static_cast<std::size_t>(f.n());
  const auto& perm = f.plan.perm;
  const CsrMatrix& lu = f.lu;
  const FaultHook& hook = f.opts.fault_hook;
  for (index_t row : f.bwd.serial_order) {
    const std::size_t pr = static_cast<std::size_t>(perm[static_cast<std::size_t>(row)]);
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t* xb = x + static_cast<std::size_t>(j0) * un;
      backward_row_panel<KB>(lu, f.diag_pos, row, xb, un);
      for (int j = 0; j < KB; ++j) {
        z[pr + (static_cast<std::size_t>(j0) + static_cast<std::size_t>(j)) * un] =
            xb[static_cast<std::size_t>(row) + static_cast<std::size_t>(j) * un];
      }
    });
    if (hook && !hook(FaultSite::kBackwardRow, row)) {
      return {ExecOutcome::kAborted, row};
    }
  }
  for (index_t row = 0; row < a.rows(); ++row) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      spmv_row_panel<KB>(a, row, z.data() + static_cast<std::size_t>(j0) * un,
                         un, t.data() + static_cast<std::size_t>(j0) * un, un);
    });
  }
  return {};
}

[[noreturn]] void throw_fused_panel_abort(index_t row) {
  throw AbortError("fused panel apply+spmv aborted at permuted row " +
                   std::to_string(row) + " (fault injection)");
}

}  // namespace

void ilu_apply_spmv_panel(const Factorization& f, const CsrMatrix& a,
                          const FusedApplySpmv& fs, std::span<const value_t> r,
                          std::span<value_t> z, std::span<value_t> t,
                          index_t k, SolveWorkspace& ws) {
  check_panel(f, r.size(), z.size(), k, "ilu_apply_spmv_panel");
  JAVELIN_CHECK(t.size() >= static_cast<std::size_t>(f.n()) *
                                static_cast<std::size_t>(k),
                "ilu_apply_spmv_panel: spmv panel smaller than n x k");
  const index_t n = f.n();
  const std::size_t un = static_cast<std::size_t>(n);
  ws.resize_panel(n, f.plan.num_lower_rows(), k);
  value_t* x = ws.x.data();
  const auto& perm = f.plan.perm;
  const CsrMatrix& lu = f.lu;
  // Region-granularity span only: the panel fused region's sweeps reuse the
  // fused.cpp synchronization structure but stay on the uninstrumented
  // fast path (the forward/backward panel sweeps above and in
  // ilu_apply_panel carry full per-level telemetry via exec_run_obs).
  obs::TraceSpan fused_panel_span("fused_panel");

  const FusedRuntime rt = runtime_fused_schedule(f, a, fs, ws);
  const FaultHook& hook = f.opts.fault_hook;
  if (rt.team <= 1) {
    // Single-thread team: gather+forward, backward+scatter and the SpMV as
    // straight-line panel sweeps with zero synchronization (the panel analog
    // of the scalar fused serial path — bitwise-identical accumulation).
    for (index_t row = 0; row < n; ++row) {
      for_each_panel_block(k, [&](index_t j0, auto kb) {
        constexpr int KB = decltype(kb)::value;
        value_t acc[KB] = {};
        value_t* xb = x + static_cast<std::size_t>(j0) * un;
        lower_partial_panel<KB>(lu, row, n, xb, un, acc);
        const std::size_t pr =
            static_cast<std::size_t>(perm[static_cast<std::size_t>(row)]);
        for (int j = 0; j < KB; ++j) {
          xb[static_cast<std::size_t>(row) + static_cast<std::size_t>(j) * un] =
              r[pr + (static_cast<std::size_t>(j0) + static_cast<std::size_t>(j)) * un] -
              acc[j];
        }
      });
      if (hook && !hook(FaultSite::kForwardRow, row)) {
        throw_fused_panel_abort(row);
      }
    }
    const ExecStatus bst = serial_backward_spmv_panel(f, a, x, z, t, k);
    if (!bst.ok()) throw_fused_panel_abort(bst.row);
    return;
  }

  // Forward sweep with the panel gather folded into each row.
  const ExecStatus fst = detail::forward_sweep_panel(
      f,
      [&r, &perm, un](index_t row, index_t j) {
        return r[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)]) +
                 static_cast<std::size_t>(j) * un];
      },
      x, un, k, ws);
  if (!fst.ok()) throw_fused_panel_abort(fst.row);

  const ExecSchedule* s = rt.bwd;
  const FusedApplySpmv* chunks = rt.chunks;
  // Shared poison domain of the backward items and the SpMV chunk waits
  // (see the scalar region in fused.cpp); null without a hook, so
  // production sweeps keep the no-polling waits.
  AbortFlag abort_flag;
  AbortFlag* const ab = hook ? &abort_flag : nullptr;
  const auto backward_scatter_row = [&](index_t row) -> bool {
    const std::size_t pr =
        static_cast<std::size_t>(perm[static_cast<std::size_t>(row)]);
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t* xb = x + static_cast<std::size_t>(j0) * un;
      backward_row_panel<KB>(lu, f.diag_pos, row, xb, un);
      for (int j = 0; j < KB; ++j) {
        z[pr + (static_cast<std::size_t>(j0) + static_cast<std::size_t>(j)) * un] =
            xb[static_cast<std::size_t>(row) + static_cast<std::size_t>(j) * un];
      }
    });
    if (hook && !hook(FaultSite::kBackwardRow, row)) {
      ab->request(row);
      return false;
    }
    return true;
  };
  const auto spmv_panel_row = [&](index_t row) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      spmv_row_panel<KB>(a, row, z.data() + static_cast<std::size_t>(j0) * un,
                         un, t.data() + static_cast<std::size_t>(j0) * un, un);
    });
  };

  if (s->hybrid()) {
    // Hybrid (per-level regime) backward schedule: run the panel backward
    // sweep through exec_run's hybrid branch (scatter fused into the row
    // fn), then the panel SpMV in a second region — the panel mirror of the
    // scalar hybrid path in fused.cpp. The hook-free variant keeps the
    // void-returning row fn so its waits stay on the no-polling path.
    if (hook) {
      const ExecStatus bst = exec_run(
          *s,
          [&](index_t row, int) -> bool { return backward_scatter_row(row); },
          ws.progress, ab);
      if (!bst.ok()) throw_fused_panel_abort(bst.row);
    } else {
      exec_run(
          *s, [&](index_t row, int) { (void)backward_scatter_row(row); },
          ws.progress);
    }
#pragma omp parallel for schedule(static) num_threads(rt.team)
    for (index_t row = 0; row < n; ++row) spmv_panel_row(row);
    return;
  }

  bool fallback = false;
  {
    ProgressCounters& progress = ws.progress;
    if (s->backend == ExecBackend::kP2P) {
      if (progress.num_threads() < s->threads) {
        progress.reset(s->threads);
      } else {
        progress.rearm();
      }
    }
    SpinBarrier level_barrier(s->threads);
    // One region for the panel backward sweep AND the panel SpMV — the panel
    // mirror of ilu_apply_spmv's region (fused.cpp); keep the
    // synchronization structure in sync with it when changing either.
#pragma omp parallel num_threads(s->threads)
    {
      if (team_size() < s->threads) {
        if (thread_id() == 0) fallback = true;  // sole writer
      } else {
        const int tid = thread_id();
        const int spin_budget =
            s->spin_budget > 0 ? s->spin_budget : spin_budget_for(s->threads);
        bool live = true;
        if (s->backend == ExecBackend::kBarrier) {
          for (index_t l = 0; l < s->num_levels && live; ++l) {
            if (ab != nullptr && ab->aborted()) {
              live = false;
              break;
            }
            const index_t base = s->level_ptr[static_cast<std::size_t>(l)];
            const index_t lsz =
                s->level_ptr[static_cast<std::size_t>(l) + 1] - base;
            const Range rr = partition_range(lsz, s->threads, tid);
            for (index_t pos = base + rr.begin; pos < base + rr.end; ++pos) {
              if (!backward_scatter_row(
                      s->serial_order[static_cast<std::size_t>(pos)])) {
                live = false;
                break;
              }
            }
            // A failed thread never arrives, so no peer passes this level:
            // they drain out of the abort-aware barrier wait instead.
            if (!live) break;
            if (!level_barrier.arrive_and_wait(spin_budget, ab)) live = false;
          }
          if (live && !(ab != nullptr && ab->aborted())) {
            for (index_t c = chunks->thread_ptr[static_cast<std::size_t>(tid)];
                 c < chunks->thread_ptr[static_cast<std::size_t>(tid) + 1];
                 ++c) {
              for (index_t row =
                       chunks->chunk_begin[static_cast<std::size_t>(c)];
                   row < chunks->chunk_end[static_cast<std::size_t>(c)];
                   ++row) {
                spmv_panel_row(row);
              }
            }
          }
        } else {
          index_t done = 0;
          for (index_t i = s->thread_ptr[static_cast<std::size_t>(tid)];
               i < s->thread_ptr[static_cast<std::size_t>(tid) + 1] && live;
               ++i) {
            if (ab != nullptr && ab->aborted()) {
              live = false;
              break;
            }
            for (index_t w = s->wait_ptr[static_cast<std::size_t>(i)];
                 w < s->wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
              if (!progress.wait_for(
                      static_cast<int>(
                          s->wait_thread[static_cast<std::size_t>(w)]),
                      s->wait_count[static_cast<std::size_t>(w)], spin_budget,
                      ab)) {
                live = false;
                break;
              }
            }
            if (!live) break;
            for (index_t pos = s->item_ptr[static_cast<std::size_t>(i)];
                 pos < s->item_ptr[static_cast<std::size_t>(i) + 1]; ++pos) {
              if (!backward_scatter_row(
                      s->rows[static_cast<std::size_t>(pos)])) {
                live = false;
                break;
              }
            }
            // A failed item is never published: chunk waits on it observe
            // the flag and drain instead of spinning forever.
            if (!live) break;
            ++done;
            progress.publish(tid, done);
          }
          for (index_t c = chunks->thread_ptr[static_cast<std::size_t>(tid)];
               c < chunks->thread_ptr[static_cast<std::size_t>(tid) + 1] &&
               live;
               ++c) {
            for (index_t w = chunks->wait_ptr[static_cast<std::size_t>(c)];
                 w < chunks->wait_ptr[static_cast<std::size_t>(c) + 1]; ++w) {
              if (!progress.wait_for(
                      static_cast<int>(
                          chunks->wait_thread[static_cast<std::size_t>(w)]),
                      chunks->wait_count[static_cast<std::size_t>(w)],
                      spin_budget, ab)) {
                live = false;
                break;
              }
            }
            if (!live) break;
            for (index_t row = chunks->chunk_begin[static_cast<std::size_t>(c)];
                 row < chunks->chunk_end[static_cast<std::size_t>(c)]; ++row) {
              spmv_panel_row(row);
            }
          }
        }
      }
    }
  }
  if (ab != nullptr && ab->aborted()) throw_fused_panel_abort(ab->row());
  if (fallback) {
    const ExecStatus bst = serial_backward_spmv_panel(f, a, x, z, t, k);
    if (!bst.ok()) throw_fused_panel_abort(bst.row);
  }
}

WorkspacePool::Lease WorkspacePool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    std::unique_ptr<SolveWorkspace> ws = std::move(free_.back());
    free_.pop_back();
    return Lease(this, std::move(ws));
  }
  return Lease(this, std::make_unique<SolveWorkspace>());
}

std::size_t WorkspacePool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

void WorkspacePool::put(std::unique_ptr<SolveWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ws));
}

void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k, SolveWorkspace& ws) {
  check_panel(f, r.size(), z.size(), k, "solve_many");
  const std::size_t un = static_cast<std::size_t>(f.n());
  const index_t batch = batch_rhs_of(f);
  for (index_t j0 = 0; j0 < k; j0 += batch) {
    const index_t w = std::min<index_t>(batch, k - j0);
    const std::size_t off = static_cast<std::size_t>(j0) * un;
    const std::size_t len = static_cast<std::size_t>(w) * un;
    ilu_apply_panel(f, r.subspan(off, len), z.subspan(off, len), w, ws);
  }
}

void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k, WorkspacePool& pool) {
  WorkspacePool::Lease lease = pool.acquire();
  solve_many(f, r, z, k, *lease);
}

void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k) {
  SolveWorkspace ws;
  solve_many(f, r, z, k, ws);
}

}  // namespace javelin
