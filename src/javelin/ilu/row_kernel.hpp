// The up-looking row elimination kernel (paper Fig. 1) shared by every
// execution path: serial, upper-stage point-to-point, ER and SR lower
// stages, and the corner factorization. Keeping one kernel guarantees the
// parallel factorizations are bitwise identical to the serial one — the
// within-row arithmetic order is fixed by the CSR column order, and rows
// never race (each row has exactly one writer).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "javelin/ilu/options.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Per-thread scratch for row elimination: a stamped position map
/// (column -> nonzero index of the active row) that avoids O(n) clears.
class RowWorkspace {
 public:
  explicit RowWorkspace(index_t n)
      : pos_(static_cast<std::size_t>(n), 0), stamp_(static_cast<std::size_t>(n), 0) {}

  void begin_row() noexcept { ++generation_; }

  void mark(index_t col, index_t nz_index) noexcept {
    pos_[static_cast<std::size_t>(col)] = nz_index;
    stamp_[static_cast<std::size_t>(col)] = generation_;
  }

  /// Nonzero index of `col` in the active row, or kInvalidIndex.
  index_t find(index_t col) const noexcept {
    return stamp_[static_cast<std::size_t>(col)] == generation_
               ? pos_[static_cast<std::size_t>(col)]
               : kInvalidIndex;
  }

 private:
  std::vector<index_t> pos_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t generation_ = 0;
};

/// Numerical knobs the kernel needs (subset of IluOptions, plus derived
/// quantities precomputed once per factorization).
struct RowKernelParams {
  double drop_tolerance = 0.0;
  bool modified = false;
  double pivot_threshold = 1e-14;
};

/// Raw views of the factor being computed in place. `diag_pos[r]` indexes the
/// diagonal entry of row r inside (col_idx, values).
struct FactorView {
  std::span<const index_t> row_ptr;
  std::span<const index_t> col_idx;
  std::span<value_t> values;
  std::span<const index_t> diag_pos;
};

/// Eliminate columns [col_lo, col_hi) of row `r` against already-factored
/// rows (up-looking). Only dependency columns inside the window are
/// processed; the window is how the two-stage methods restrict a pass:
///   * full factorization:        [0, r)
///   * ER / SR phase one:         [0, n_upper)
///   * corner factorization:      [n_upper, r)
/// Requires ws.begin_row() + marks for ALL columns of row r to be in place
/// (call mark_row first). Updates are applied to every marked column to the
/// right of the eliminated one; in modified mode, discarded fill accumulates
/// into the diagonal value.
inline void eliminate_window(const FactorView& f, index_t r, index_t col_lo,
                             index_t col_hi, const RowWorkspace& ws,
                             const RowKernelParams& p) {
  const index_t lo = f.row_ptr[static_cast<std::size_t>(r)];
  const index_t hi = f.row_ptr[static_cast<std::size_t>(r) + 1];
  value_t milu_acc = 0;
  for (index_t k = lo; k < hi; ++k) {
    const index_t j = f.col_idx[static_cast<std::size_t>(k)];
    if (j >= col_hi || j >= r) break;  // columns sorted; past the window
    if (j < col_lo) continue;
    const value_t piv = f.values[static_cast<std::size_t>(f.diag_pos[static_cast<std::size_t>(j)])];
    value_t lij = f.values[static_cast<std::size_t>(k)] / piv;
    if (p.drop_tolerance > 0.0 && std::abs(lij) < p.drop_tolerance) {
      // ILU(τ): drop the multiplier; modified ILU folds it into the diagonal
      // scaled by the pivot so the row sum is preserved.
      if (p.modified) milu_acc += lij * piv;
      f.values[static_cast<std::size_t>(k)] = 0;
      continue;
    }
    f.values[static_cast<std::size_t>(k)] = lij;
    // Apply row j's U-part to row r.
    const index_t jlo = f.diag_pos[static_cast<std::size_t>(j)] + 1;
    const index_t jhi = f.row_ptr[static_cast<std::size_t>(j) + 1];
    for (index_t m = jlo; m < jhi; ++m) {
      const index_t col = f.col_idx[static_cast<std::size_t>(m)];
      const index_t tgt = ws.find(col);
      const value_t upd = lij * f.values[static_cast<std::size_t>(m)];
      if (tgt != kInvalidIndex) {
        f.values[static_cast<std::size_t>(tgt)] -= upd;
      } else if (p.modified) {
        milu_acc += upd;  // fill outside the pattern: compensate diagonal
      }
    }
  }
  if (p.modified && milu_acc != 0) {
    f.values[static_cast<std::size_t>(f.diag_pos[static_cast<std::size_t>(r)])] -= milu_acc;
  }
}

/// Variant of eliminate_window addressed by nonzero range instead of column
/// window: eliminates exactly the stored entries [nz_begin, nz_end) of row r
/// (all must lie strictly left of the diagonal). Used by SR tiles, which
/// already know their nonzero extents and must not rescan the row.
inline void eliminate_nz_range(const FactorView& f, index_t r, index_t nz_begin,
                               index_t nz_end, const RowWorkspace& ws,
                               const RowKernelParams& p) {
  value_t milu_acc = 0;
  for (index_t k = nz_begin; k < nz_end; ++k) {
    const index_t j = f.col_idx[static_cast<std::size_t>(k)];
    const value_t piv = f.values[static_cast<std::size_t>(f.diag_pos[static_cast<std::size_t>(j)])];
    value_t lij = f.values[static_cast<std::size_t>(k)] / piv;
    if (p.drop_tolerance > 0.0 && std::abs(lij) < p.drop_tolerance) {
      if (p.modified) milu_acc += lij * piv;
      f.values[static_cast<std::size_t>(k)] = 0;
      continue;
    }
    f.values[static_cast<std::size_t>(k)] = lij;
    const index_t jlo = f.diag_pos[static_cast<std::size_t>(j)] + 1;
    const index_t jhi = f.row_ptr[static_cast<std::size_t>(j) + 1];
    for (index_t m = jlo; m < jhi; ++m) {
      const index_t col = f.col_idx[static_cast<std::size_t>(m)];
      const index_t tgt = ws.find(col);
      const value_t upd = lij * f.values[static_cast<std::size_t>(m)];
      if (tgt != kInvalidIndex) {
        f.values[static_cast<std::size_t>(tgt)] -= upd;
      } else if (p.modified) {
        milu_acc += upd;
      }
    }
  }
  if (p.modified && milu_acc != 0) {
    // No atomicity needed: a row has at most one tile per level and levels
    // are separated by taskwait, so row r's entries have a single writer.
    f.values[static_cast<std::size_t>(f.diag_pos[static_cast<std::size_t>(r)])] -= milu_acc;
  }
}

/// Stamp the workspace with all nonzero positions of row r.
inline void mark_row(const FactorView& f, index_t r, RowWorkspace& ws) {
  ws.begin_row();
  const index_t lo = f.row_ptr[static_cast<std::size_t>(r)];
  const index_t hi = f.row_ptr[static_cast<std::size_t>(r) + 1];
  for (index_t k = lo; k < hi; ++k) {
    ws.mark(f.col_idx[static_cast<std::size_t>(k)], k);
  }
}

/// Post-elimination row finish: τ-drop U entries and validate the pivot.
/// Returns false when the pivot is unusable (caller reports the row).
inline bool finish_row(const FactorView& f, index_t r, const RowKernelParams& p) {
  const index_t dp = f.diag_pos[static_cast<std::size_t>(r)];
  if (p.drop_tolerance > 0.0) {
    const index_t hi = f.row_ptr[static_cast<std::size_t>(r) + 1];
    value_t milu_acc = 0;
    for (index_t m = dp + 1; m < hi; ++m) {
      if (std::abs(f.values[static_cast<std::size_t>(m)]) < p.drop_tolerance) {
        if (p.modified) milu_acc += f.values[static_cast<std::size_t>(m)];
        f.values[static_cast<std::size_t>(m)] = 0;
      }
    }
    if (p.modified && milu_acc != 0) {
      f.values[static_cast<std::size_t>(dp)] += milu_acc;
    }
  }
  // A NaN pivot already fails the magnitude test; ±inf (overflowed
  // elimination) would pass it and then poison every dependent row, so the
  // pivot must be finite as well as large enough.
  const value_t piv = f.values[static_cast<std::size_t>(dp)];
  return std::isfinite(piv) && std::abs(piv) > p.pivot_threshold;
}

/// Full single-row factorization: mark, eliminate everything left of the
/// diagonal, finish.
inline bool factor_row(const FactorView& f, index_t r, RowWorkspace& ws,
                       const RowKernelParams& p) {
  mark_row(f, r, ws);
  eliminate_window(f, r, 0, r, ws, p);
  return finish_row(f, r, p);
}

}  // namespace javelin
