#include "javelin/ilu/schedule.hpp"

#include <algorithm>

#include "javelin/graph/levels.hpp"

namespace javelin {

P2PSchedule build_p2p_schedule(index_t n_total,
                               std::span<const index_t> level_ptr,
                               std::span<const index_t> rows_by_level,
                               const DepsFn& deps, int threads) {
  P2PSchedule s;
  s.threads = std::max(1, threads);
  s.n_total = n_total;
  s.num_levels = static_cast<index_t>(level_ptr.size()) - 1;
  s.serial_order.assign(rows_by_level.begin(), rows_by_level.end());

  const index_t n_rows = static_cast<index_t>(rows_by_level.size());
  const int T = s.threads;

  // Pass 1: assign each level's rows to threads in contiguous slices and
  // record (owner, position) per row. Position is the 0-based index within
  // the owner's execution order.
  std::vector<index_t> owner(static_cast<std::size_t>(n_total), kInvalidIndex);
  std::vector<index_t> posn(static_cast<std::size_t>(n_total), kInvalidIndex);
  std::vector<index_t> per_thread_count(static_cast<std::size_t>(T), 0);

  // Count rows per thread first to size the per-thread lists.
  for (index_t l = 0; l < s.num_levels; ++l) {
    const index_t lsz = level_ptr[static_cast<std::size_t>(l) + 1] -
                        level_ptr[static_cast<std::size_t>(l)];
    for (int t = 0; t < T; ++t) {
      per_thread_count[static_cast<std::size_t>(t)] += partition_range(lsz, T, t).size();
    }
  }
  s.thread_ptr.assign(static_cast<std::size_t>(T) + 1, 0);
  for (int t = 0; t < T; ++t) {
    s.thread_ptr[static_cast<std::size_t>(t) + 1] =
        s.thread_ptr[static_cast<std::size_t>(t)] + per_thread_count[static_cast<std::size_t>(t)];
  }
  s.rows.assign(static_cast<std::size_t>(n_rows), kInvalidIndex);
  std::vector<index_t> cursor(s.thread_ptr.begin(), s.thread_ptr.end() - 1);
  for (index_t l = 0; l < s.num_levels; ++l) {
    const index_t base = level_ptr[static_cast<std::size_t>(l)];
    const index_t lsz = level_ptr[static_cast<std::size_t>(l) + 1] - base;
    for (int t = 0; t < T; ++t) {
      const Range rr = partition_range(lsz, T, t);
      for (index_t i = rr.begin; i < rr.end; ++i) {
        const index_t row = rows_by_level[static_cast<std::size_t>(base + i)];
        const index_t p = cursor[static_cast<std::size_t>(t)]++;
        s.rows[static_cast<std::size_t>(p)] = row;
        owner[static_cast<std::size_t>(row)] = static_cast<index_t>(t);
        posn[static_cast<std::size_t>(row)] = p - s.thread_ptr[static_cast<std::size_t>(t)];
      }
    }
  }

  // Pass 2: per consumer thread, walk its rows in execution order keeping
  // the monotone high-water mark already waited for on every producer; store
  // only waits that raise it.
  s.wait_ptr.assign(static_cast<std::size_t>(n_rows) + 1, 0);
  std::vector<index_t> need(static_cast<std::size_t>(T), 0);       // per-row max need
  std::vector<std::uint64_t> need_stamp(static_cast<std::size_t>(T), 0);
  std::uint64_t gen = 0;
  std::vector<index_t> touched;
  std::vector<index_t> last_wait(static_cast<std::size_t>(T), 0);

  // First sub-pass counts, second fills; share the logic.
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) {
      // prefix-sum wait_ptr and allocate
      for (std::size_t i = 1; i < s.wait_ptr.size(); ++i) {
        s.wait_ptr[i] += s.wait_ptr[i - 1];
      }
      s.wait_thread.assign(static_cast<std::size_t>(s.wait_ptr.back()), 0);
      s.wait_count.assign(static_cast<std::size_t>(s.wait_ptr.back()), 0);
    }
    for (int t = 0; t < T; ++t) {
      std::fill(last_wait.begin(), last_wait.end(), 0);
      for (index_t i = s.thread_ptr[static_cast<std::size_t>(t)];
           i < s.thread_ptr[static_cast<std::size_t>(t) + 1]; ++i) {
        const index_t row = s.rows[static_cast<std::size_t>(i)];
        ++gen;
        touched.clear();
        deps(row, [&](index_t d) {
          const index_t ot = owner[static_cast<std::size_t>(d)];
          if (ot == kInvalidIndex || ot == static_cast<index_t>(t)) return;
          if (pass == 0) ++s.deps_total;
          const index_t cnt = posn[static_cast<std::size_t>(d)] + 1;
          if (need_stamp[static_cast<std::size_t>(ot)] != gen) {
            need_stamp[static_cast<std::size_t>(ot)] = gen;
            need[static_cast<std::size_t>(ot)] = cnt;
            touched.push_back(ot);
          } else {
            need[static_cast<std::size_t>(ot)] =
                std::max(need[static_cast<std::size_t>(ot)], cnt);
          }
        });
        std::sort(touched.begin(), touched.end());
        index_t w = (pass == 1) ? s.wait_ptr[static_cast<std::size_t>(i)] : 0;
        index_t kept = 0;
        for (index_t ot : touched) {
          const index_t cnt = need[static_cast<std::size_t>(ot)];
          if (cnt <= last_wait[static_cast<std::size_t>(ot)]) continue;  // pruned
          last_wait[static_cast<std::size_t>(ot)] = cnt;
          if (pass == 1) {
            s.wait_thread[static_cast<std::size_t>(w)] = ot;
            s.wait_count[static_cast<std::size_t>(w)] = cnt;
            ++w;
          }
          ++kept;
        }
        if (pass == 0) {
          s.wait_ptr[static_cast<std::size_t>(i) + 1] = kept;
          s.deps_kept += kept;
        }
      }
    }
    if (pass == 0) {
      // Reset stats that the counting pass accumulated so the fill pass does
      // not double them (deps_total only counted in pass 0 by design).
    }
  }
  return s;
}

P2PSchedule build_upper_forward_schedule(const CsrMatrix& lu,
                                         std::span<const index_t> upper_level_ptr,
                                         int threads) {
  const index_t n_upper = upper_level_ptr.empty() ? 0 : upper_level_ptr.back();
  // Levels are contiguous row ranges after the plan permutation; materialize
  // the identity listing.
  std::vector<index_t> rows(static_cast<std::size_t>(n_upper));
  for (index_t r = 0; r < n_upper; ++r) rows[static_cast<std::size_t>(r)] = r;
  const DepsFn deps = [&lu](index_t row, const std::function<void(index_t)>& yield) {
    for (index_t c : lu.row_cols(row)) {
      if (c >= row) break;
      yield(c);
    }
  };
  return build_p2p_schedule(lu.rows(), upper_level_ptr, rows, deps, threads);
}

P2PSchedule build_backward_schedule(const CsrMatrix& lu, int threads) {
  const LevelSets ls = compute_level_sets_upper(lu);
  const DepsFn deps = [&lu](index_t row, const std::function<void(index_t)>& yield) {
    auto cols = lu.row_cols(row);
    for (std::size_t k = cols.size(); k-- > 0;) {
      if (cols[k] <= row) break;
      yield(cols[k]);
    }
  };
  return build_p2p_schedule(lu.rows(), ls.level_ptr, ls.rows_by_level, deps,
                            threads);
}

}  // namespace javelin
