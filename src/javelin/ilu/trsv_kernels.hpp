// Per-row building blocks of the triangular sweeps, shared by the unfused
// solve path (solve.cpp) and the fused solve+SpMV path (fused.cpp). Every
// helper walks its CSR entries in ascending order and touches exactly one
// output slot, which is what makes all execution modes bitwise-identical.
#pragma once

#include <span>

#include "javelin/sparse/csr.hpp"

namespace javelin::detail {

/// Partial sum of row r over its strictly-lower columns left of `col_hi`,
/// starting from `acc`. Columns are sorted, so this is a prefix walk.
inline value_t lower_partial(const CsrMatrix& lu, index_t r, index_t col_hi,
                             std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= col_hi || c >= r) break;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Remaining forward sum of a lower-stage row: corner columns in
/// [n_upper, r). Resumes from the precomputed upper-column partial sum so the
/// accumulation order matches the serial single-pass reference bitwise.
inline value_t corner_partial(const CsrMatrix& lu, index_t r, index_t n_upper,
                              std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= r) break;
    if (c < n_upper) continue;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Backward step for one row: subtract the strictly-upper products and divide
/// by the diagonal (the fused scale).
inline void backward_row(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                         index_t r, std::span<value_t> x) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  const index_t dp = diag_pos[static_cast<std::size_t>(r)];
  value_t acc = 0;
  for (index_t k = dp + 1; k < lu.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  x[static_cast<std::size_t>(r)] =
      (x[static_cast<std::size_t>(r)] - acc) / vv[static_cast<std::size_t>(dp)];
}

/// One CSR row of y = A x: fixed ascending-k accumulation (the bitwise
/// contract every spmv variant in the library honors).
inline value_t spmv_row(const CsrMatrix& a, index_t r,
                        std::span<const value_t> x) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  value_t acc = 0;
  for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  return acc;
}

}  // namespace javelin::detail
