// Per-row building blocks of the triangular sweeps, shared by the unfused
// solve path (solve.cpp), the fused solve+SpMV path (fused.cpp) and the
// batched many-RHS path (batch.cpp). Every helper walks its CSR entries in
// ascending order and touches exactly one output slot per right-hand side,
// which is what makes all execution modes bitwise-identical.
//
// The *_panel variants are the register-blocked multi-RHS kernels: the panel
// is stored COLUMN-MAJOR (column j of an n-row panel occupies
// x[j*ld .. j*ld + n)), and each kernel processes a block of KB columns per
// CSR walk — every L/U/A entry is loaded once and applied to KB values held
// in a stack accumulator the compiler keeps in registers. Column j's
// accumulation order is exactly the scalar kernel's ascending-k order, so a
// batched solve of k right-hand sides is bitwise equal to k scalar solves no
// matter how the columns are blocked.
#pragma once

#include <span>

#include "javelin/sparse/csr.hpp"
#include "javelin/sparse/panel.hpp"

namespace javelin::detail {

/// Partial sum of row r over its strictly-lower columns left of `col_hi`,
/// starting from `acc`. Columns are sorted, so this is a prefix walk.
inline value_t lower_partial(const CsrMatrix& lu, index_t r, index_t col_hi,
                             std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= col_hi || c >= r) break;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Remaining forward sum of a lower-stage row: corner columns in
/// [n_upper, r). Resumes from the precomputed upper-column partial sum so the
/// accumulation order matches the serial single-pass reference bitwise.
inline value_t corner_partial(const CsrMatrix& lu, index_t r, index_t n_upper,
                              std::span<const value_t> x, value_t acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= r) break;
    if (c < n_upper) continue;
    acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(c)];
  }
  return acc;
}

/// Backward step for one row: subtract the strictly-upper products and divide
/// by the diagonal (the fused scale).
inline void backward_row(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                         index_t r, std::span<value_t> x) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  const index_t dp = diag_pos[static_cast<std::size_t>(r)];
  value_t acc = 0;
  for (index_t k = dp + 1; k < lu.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  x[static_cast<std::size_t>(r)] =
      (x[static_cast<std::size_t>(r)] - acc) / vv[static_cast<std::size_t>(dp)];
}

/// Out-of-place backward step: like backward_row, but the forward-sweep
/// value is read from `x` and the backward solution accumulates into/out of
/// `y` — y[r] = (x[r] - Σ_{c>r} U(r,c)·y[c]) / U(r,r). Identical operands in
/// identical order, so bitwise equal to the in-place step; the separate
/// output buffer is what lets the single-region fused pass run backward rows
/// while other threads still execute forward rows (no write-after-read
/// hazard on x).
inline void backward_row_into(const CsrMatrix& lu,
                              std::span<const index_t> diag_pos, index_t r,
                              std::span<const value_t> x,
                              std::span<value_t> y) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  const index_t dp = diag_pos[static_cast<std::size_t>(r)];
  value_t acc = 0;
  for (index_t k = dp + 1; k < lu.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           y[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  y[static_cast<std::size_t>(r)] =
      (x[static_cast<std::size_t>(r)] - acc) / vv[static_cast<std::size_t>(dp)];
}

/// One CSR row of y = A x: fixed ascending-k accumulation (the bitwise
/// contract every spmv variant in the library honors).
inline value_t spmv_row(const CsrMatrix& a, index_t r,
                        std::span<const value_t> x) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  value_t acc = 0;
  for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
    acc += vv[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  return acc;
}

// --- register-blocked panel kernels (multi-RHS) -----------------------------
//
// `x` points at column j0 of the panel (i.e. panel_base + j0*ld); `ld` is the
// column stride (the panel's row count); `acc` has KB slots. KB is a
// compile-time block width so the accumulator lives in registers and the
// inner column loop fully unrolls.

/// acc[j] += Σ_{c < min(col_hi, r)} L(r,c) · x[c + j·ld] for j in [0, KB).
template <int KB>
inline void lower_partial_panel(const CsrMatrix& lu, index_t r, index_t col_hi,
                                const value_t* x, std::size_t ld,
                                value_t* acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= col_hi || c >= r) break;
    const value_t v = vv[static_cast<std::size_t>(k)];
    const value_t* xc = x + static_cast<std::size_t>(c);
    for (int j = 0; j < KB; ++j) acc[j] += v * xc[static_cast<std::size_t>(j) * ld];
  }
}

/// Panel variant of corner_partial: acc[j] += Σ_{n_upper <= c < r} L(r,c) ·
/// x[c + j·ld], resuming from the upper-column partial sums already in acc.
template <int KB>
inline void corner_partial_panel(const CsrMatrix& lu, index_t r,
                                 index_t n_upper, const value_t* x,
                                 std::size_t ld, value_t* acc) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
    const index_t c = ci[static_cast<std::size_t>(k)];
    if (c >= r) break;
    if (c < n_upper) continue;
    const value_t v = vv[static_cast<std::size_t>(k)];
    const value_t* xc = x + static_cast<std::size_t>(c);
    for (int j = 0; j < KB; ++j) acc[j] += v * xc[static_cast<std::size_t>(j) * ld];
  }
}

/// Panel backward step: for each of the KB columns, subtract the
/// strictly-upper products and divide by the diagonal — U's row entries are
/// loaded once for all KB columns.
template <int KB>
inline void backward_row_panel(const CsrMatrix& lu,
                               std::span<const index_t> diag_pos, index_t r,
                               value_t* x, std::size_t ld) {
  const auto ci = lu.col_idx();
  const auto vv = lu.values();
  const index_t dp = diag_pos[static_cast<std::size_t>(r)];
  value_t acc[KB] = {};
  for (index_t k = dp + 1; k < lu.row_end(r); ++k) {
    const value_t v = vv[static_cast<std::size_t>(k)];
    const value_t* xc = x + static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
    for (int j = 0; j < KB; ++j) acc[j] += v * xc[static_cast<std::size_t>(j) * ld];
  }
  const value_t piv = vv[static_cast<std::size_t>(dp)];
  value_t* xr = x + static_cast<std::size_t>(r);
  for (int j = 0; j < KB; ++j) {
    xr[static_cast<std::size_t>(j) * ld] =
        (xr[static_cast<std::size_t>(j) * ld] - acc[j]) / piv;
  }
}

}  // namespace javelin::detail
