// Scalable sparse triangular solve (stri) — the apply path the whole
// factorization is co-designed for (paper §VI: "the incomplete factorization
// may only be formed once, but stri may be called thousands of times").
//
// The forward (L) sweep reuses the SAME execution schedule as the
// upper-stage factorization (f.fwd): the dependency pattern of the forward
// solve is exactly the strictly-lower pattern of the factor, so the
// spin-wait sparsification built for the numeric phase is reused verbatim.
// Lower-stage rows are swept ER-style: their upper-column partial sums are
// embarrassingly parallel, and only the small corner coupling runs in row
// order. The backward (U) sweep runs under f.bwd, with the diagonal scale
// fused into the sweep — no separate D^{-1} pass over the vector. Both
// sweeps run under the exec/ backend the factor was built with (P2P or
// barrier CSR-LS) and RETARGET through the workspace's ScheduleCache when
// the runtime team differs from the factor-time plan — never a silent
// serial fallback.
//
// All parallel sweeps are bitwise-identical to the serial reference: every
// row's accumulation walks its CSR entries in the same ascending order, and
// each vector slot has exactly one writer.
#pragma once

#include <span>
#include <vector>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

/// Reusable scratch for repeated ilu_apply calls (permuted rhs/solution, the
/// lower-stage partial sums, the P2P progress counters both sweeps re-arm
/// instead of reallocating, and the retargeted-schedule cache the sweeps
/// re-plan through when the runtime team differs from the factor-time
/// plan). Kept outside the Factorization so multiple solves may share one
/// immutable factor with private workspaces. Move-only: the counters are
/// atomics.
struct SolveWorkspace {
  std::vector<value_t> x;          ///< permuted vector/panel being solved in place
  std::vector<value_t> lower_acc;  ///< partial sums of the lower-stage rows
  ProgressCounters progress;       ///< spin-wait counters reused every sweep
  ScheduleCache sched;             ///< runtime-retargeted schedules (lazy)

  /// Second counter bank + out-of-place backward solution used only by the
  /// single-region fused pass (fused.cpp): the forward sweep publishes on
  /// progress_fwd while the backward sweep publishes on progress, and the
  /// backward solve writes xb so concurrently-running forward rows keep
  /// reading unclobbered forward values from x. Sized lazily by that path.
  ProgressCounters progress_fwd;
  std::vector<value_t> xb;

  void resize(index_t n, index_t n_lower) {
    x.resize(static_cast<std::size_t>(n));
    lower_acc.resize(static_cast<std::size_t>(n_lower));
  }

  /// Panel (multi-RHS) sizing: x holds a column-major n×k panel, lower_acc
  /// an n_lower×k panel of lower-stage partial sums. Grows only (a workspace
  /// cycling between panel widths keeps the high-water allocation).
  void resize_panel(index_t n, index_t n_lower, index_t k) {
    const std::size_t uk = static_cast<std::size_t>(k);
    if (x.size() < static_cast<std::size_t>(n) * uk) {
      x.resize(static_cast<std::size_t>(n) * uk);
    }
    if (lower_acc.size() < static_cast<std::size_t>(n_lower) * uk) {
      lower_acc.resize(static_cast<std::size_t>(n_lower) * uk);
    }
  }
};

/// Serial reference: x = U^{-1} L^{-1} b on the permuted factor. `b` and `x`
/// are in the factor's (permuted) row ordering; x may alias b.
void trsv_serial(const CsrMatrix& lu, std::span<const index_t> diag_pos,
                 std::span<const value_t> b, std::span<value_t> x);

/// In-place P2P forward sweep on the permuted factor: on entry x is the
/// permuted rhs, on exit L x' = x (unit diagonal implicit). Upper-stage rows
/// run under f.fwd; lower-stage rows run as a parallel partial-sum pass plus
/// an ordered corner sweep (ws.lower_acc is the scratch). Returns kAborted
/// only when the factor's fault-injection hook vetoed a row (tests); the
/// hook-free path is unguarded and always kOk.
ExecStatus trsv_forward(const Factorization& f, std::span<value_t> x,
                        SolveWorkspace& ws);

/// In-place P2P backward sweep: x := U^{-1} x, diagonal divide fused. Shares
/// ws.progress with the forward sweep (the sweeps never overlap). Same
/// abort semantics as trsv_forward.
ExecStatus trsv_backward(const Factorization& f, std::span<value_t> x,
                         SolveWorkspace& ws);

/// Serial in-place variants (reference paths for tests and fallback).
void trsv_forward_serial(const Factorization& f, std::span<value_t> x);
void trsv_backward_serial(const Factorization& f, std::span<value_t> x);

/// Preconditioner application z = (L U)^{-1} r with r and z in the ORIGINAL
/// row ordering (the plan permutation is applied on the way in and undone on
/// the way out, so callers never see the level ordering). r and z must not
/// alias. Thread-safe across distinct workspaces. Throws AbortError when a
/// fault-injection hook aborted a sweep (converted OUTSIDE the parallel
/// region; z is untouched); use ilu_apply_status for the non-throwing form.
void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z, SolveWorkspace& ws);

/// Non-throwing ilu_apply: reports a hook-driven abort as a status instead
/// of AbortError. On kAborted, z is not written.
ExecStatus ilu_apply_status(const Factorization& f, std::span<const value_t> r,
                            std::span<value_t> z, SolveWorkspace& ws);

/// Convenience overload with a per-call workspace (allocates; prefer the
/// workspace overload in iterative loops).
void ilu_apply(const Factorization& f, std::span<const value_t> r,
               std::span<value_t> z);

/// Serial-reference ilu_apply used by the property tests.
void ilu_apply_serial(const Factorization& f, std::span<const value_t> r,
                      std::span<value_t> z, SolveWorkspace& ws);

}  // namespace javelin
