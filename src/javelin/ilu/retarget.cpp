// Runtime schedule retargeting: when the team a sweep can actually use
// differs from the factor-time plan — the user dialed omp_set_num_threads
// down after factoring, or the planned team would oversubscribe the
// hardware — the solve paths re-plan the schedules for the real team
// instead of degrading to a serial sweep. This is the first concrete slice
// of the ROADMAP thread-count-autotuning item: the plan's permutation and
// level structure are reused untouched, only the (level, thread) slicing
// and the sparsified waits are rebuilt, bitwise-identical to a fresh build
// at the new team (test_exec).
#include <algorithm>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"
#include "javelin/verify/verify.hpp"

namespace javelin {

ScheduleCache::ScheduleCache() = default;
ScheduleCache::ScheduleCache(ScheduleCache&&) noexcept = default;
ScheduleCache& ScheduleCache::operator=(ScheduleCache&&) noexcept = default;
ScheduleCache::~ScheduleCache() = default;

// Retargeted schedules are derived scratch: a copied factor/workspace starts
// with an empty cache and rebuilds on first mismatch.
ScheduleCache::ScheduleCache(const ScheduleCache&) : ScheduleCache() {}
ScheduleCache& ScheduleCache::operator=(const ScheduleCache&) {
  threads = 0;
  fwd = ExecSchedule{};
  bwd = ExecSchedule{};
  fused.reset();
  fused_matrix = nullptr;
  fused_cols = nullptr;
  fused_nnz = 0;
  return *this;
}

int runtime_team(const Factorization& f) {
  const int planned =
      f.opts.tuned_threads > 0 ? f.opts.tuned_threads : f.plan.threads;
  int t = std::min(planned, max_threads());
  if (f.opts.retarget_oversubscribed) {
    const int hw = hardware_cores();
    if (hw > 0) t = std::min(t, hw);
  }
  return std::max(1, t);
}

namespace {

void ensure_cache(const Factorization& f, ScheduleCache& cache, int team) {
  // Rebuild on a team change AND on any policy flip — backend, hybrid
  // regime tags, spin budget — the autotuner (or set_exec_backend) may
  // apply between sweeps that share this cache.
  if (cache.threads == team && cache.fwd.backend == f.fwd.backend &&
      cache.bwd.backend == f.bwd.backend &&
      cache.fwd.level_tags == f.fwd.level_tags &&
      cache.bwd.level_tags == f.bwd.level_tags &&
      cache.fwd.spin_budget == f.fwd.spin_budget &&
      cache.bwd.spin_budget == f.bwd.spin_budget) {
    return;
  }
  // Both directions move together: a sweep pair (forward then backward)
  // must agree on the team, and the fused companion hangs off bwd.
  cache.fwd = retarget(f.fwd, lower_triangular_deps(f.lu), team);
  cache.bwd = retarget(f.bwd, upper_triangular_deps(f.lu), team);
  if (f.opts.verify_schedules) {
    verify::verify_schedule_or_throw(cache.fwd, lower_triangular_deps(f.lu),
                                     "fwd retarget");
    verify::verify_schedule_or_throw(cache.bwd, upper_triangular_deps(f.lu),
                                     "bwd retarget");
  }
  cache.fused.reset();
  cache.fused_matrix = nullptr;
  cache.fused_cols = nullptr;
  cache.fused_nnz = 0;
  cache.threads = team;
}

}  // namespace

const ExecSchedule& runtime_fwd(const Factorization& f, ScheduleCache& cache) {
  const int team = runtime_team(f);
  if (team == f.fwd.threads) return f.fwd;
  ensure_cache(f, cache, team);
  return cache.fwd;
}

const ExecSchedule& runtime_bwd(const Factorization& f, ScheduleCache& cache) {
  const int team = runtime_team(f);
  if (team == f.bwd.threads) return f.bwd;
  ensure_cache(f, cache, team);
  return cache.bwd;
}

void set_exec_backend(Factorization& f, ExecBackend backend) {
  f.opts.exec_backend = backend;
  // Pinning a backend means UNIFORM execution. A hybrid schedule (regime
  // tags installed by the autotuner) had the waits its sync points covered
  // PRUNED, so dropping the tags alone would leave a racy uniform
  // schedule — rebuild the wait lists too (a tagless retarget at the
  // schedule's own team is bitwise a fresh build).
  if (f.fwd.hybrid()) {
    f.fwd.level_tags.clear();
    f.fwd = retarget(f.fwd, lower_triangular_deps(f.lu), f.fwd.threads);
  }
  if (f.bwd.hybrid()) {
    f.bwd.level_tags.clear();
    f.bwd = retarget(f.bwd, upper_triangular_deps(f.lu), f.bwd.threads);
  }
  f.fwd.backend = backend;
  f.bwd.backend = backend;
  if (f.numeric_cache.fwd.hybrid() || f.numeric_cache.bwd.hybrid()) {
    f.numeric_cache = ScheduleCache{};  // rebuilt on demand, tagless
  } else {
    f.numeric_cache.fwd.backend = backend;
    f.numeric_cache.bwd.backend = backend;
  }
  // The corner schedule stays kBarrier: its levels are tiny and the paper
  // treats the corner as a serial afterthought (§III-B).
}

}  // namespace javelin
