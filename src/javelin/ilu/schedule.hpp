// Point-to-point level-scheduled execution (paper §III-A, Fig. 4).
//
// Rows of each level are mapped to threads in contiguous slices; each thread
// executes its rows level-by-level in a fixed order. That fixed order is the
// "implied ordering" that lets dependencies be pruned:
//   * same-thread dependencies vanish (program order),
//   * per producer thread only the MAXIMUM needed schedule position is kept
//     (its progress counter is monotone),
//   * a dependency already implied by an earlier wait of the same consumer
//     thread is dropped (build-time transitive pruning).
// At runtime a row performs at most (threads - 1) spin-waits on padded
// progress counters — no barriers, no tasks (paper: "point-to-point's
// implementation relies on inexpensive spinlocks and allows for certain
// threads to speed ahead of others").
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "javelin/sparse/csr.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

struct P2PSchedule {
  int threads = 1;
  index_t n_total = 0;  ///< dimension of the row-index space

  /// Execution order: thread t runs rows[thread_ptr[t] .. thread_ptr[t+1]).
  std::vector<index_t> thread_ptr;
  std::vector<index_t> rows;

  /// Sparsified waits, aligned with `rows`: before executing rows[i], wait
  /// until wait_thread[w] has published wait_count[w] rows, for
  /// w in [wait_ptr[i], wait_ptr[i+1]).
  std::vector<index_t> wait_ptr;
  std::vector<index_t> wait_thread;
  std::vector<index_t> wait_count;

  /// Dependency-safe serial order (level-major) used when the runtime cannot
  /// supply the planned team size.
  std::vector<index_t> serial_order;

  // --- statistics ----------------------------------------------------------
  index_t deps_total = 0;    ///< cross-thread dependencies before pruning
  index_t deps_kept = 0;     ///< spin-waits actually stored
  index_t num_levels = 0;

  index_t num_rows() const noexcept { return static_cast<index_t>(rows.size()); }
};

/// Yields the dependency rows of a given row (rows that must complete
/// first). Dependencies outside the scheduled row set are ignored (they are
/// satisfied by construction — e.g. upper-stage rows for the corner).
using DepsFn = std::function<void(index_t row, const std::function<void(index_t)>& yield)>;

/// Build a schedule from explicit level sets (level-major lists of rows).
/// `levels_rows` / `levels_ptr` follow the LevelSets layout. `deps` is
/// consulted once per row at build time.
P2PSchedule build_p2p_schedule(index_t n_total,
                               std::span<const index_t> level_ptr,
                               std::span<const index_t> rows_by_level,
                               const DepsFn& deps, int threads);

/// Forward schedule for the upper stage of a two-stage plan: rows
/// [0, n_upper) with contiguous levels; dependencies are the strictly-lower
/// columns of `lu` (which is both the factorization and the forward-solve
/// dependency structure — the co-design of paper §VI).
P2PSchedule build_upper_forward_schedule(const CsrMatrix& lu,
                                         std::span<const index_t> upper_level_ptr,
                                         int threads);

/// Backward schedule over ALL rows: dependencies are the strictly-upper
/// columns of `lu`; levels computed on that pattern, processed high-to-low.
P2PSchedule build_backward_schedule(const CsrMatrix& lu, int threads);

/// Execute the schedule with caller-provided progress counters. `row_fn(row,
/// thread)` is called once per row, in dependency order, from inside a
/// parallel region; it must not throw. Falls back to the serial order when
/// the OpenMP runtime provides a team smaller than planned.
///
/// `progress` is grown (reallocating) only when it is smaller than the
/// schedule's team and re-armed (zeroed) otherwise, so callers that sweep
/// thousands of times — the stri-per-Krylov-iteration profile, and now the
/// AMG smoother running stri at every level of every V-cycle — pay the
/// threads×64B counter allocation once, not per sweep.
template <class RowFn>
void p2p_execute(const P2PSchedule& s, RowFn&& row_fn,
                 ProgressCounters& progress) {
  if (s.threads <= 1) {
    for (index_t r : s.serial_order) row_fn(r, 0);
    return;
  }
  if (progress.num_threads() < s.threads) {
    progress.reset(s.threads);
  } else {
    progress.rearm();
  }
  bool fallback = false;
#pragma omp parallel num_threads(s.threads)
  {
#pragma omp single
    {
      if (team_size() < s.threads) fallback = true;
    }
    // (implicit barrier after single)
    if (!fallback) {
      const int t = thread_id();
      const index_t lo = s.thread_ptr[static_cast<std::size_t>(t)];
      const index_t hi = s.thread_ptr[static_cast<std::size_t>(t) + 1];
      index_t done = 0;
      for (index_t i = lo; i < hi; ++i) {
        for (index_t w = s.wait_ptr[static_cast<std::size_t>(i)];
             w < s.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
          progress.wait_for(static_cast<int>(s.wait_thread[static_cast<std::size_t>(w)]),
                            s.wait_count[static_cast<std::size_t>(w)]);
        }
        row_fn(s.rows[static_cast<std::size_t>(i)], t);
        ++done;
        progress.publish(t, done);
      }
    }
  }
  if (fallback) {
    for (index_t r : s.serial_order) row_fn(r, 0);
  }
}

/// Convenience overload with per-call counters (one-shot executions such as
/// the factorization numeric phase; sweep loops should pass a persistent
/// ProgressCounters instead).
template <class RowFn>
void p2p_execute(const P2PSchedule& s, RowFn&& row_fn) {
  ProgressCounters progress;
  p2p_execute(s, std::forward<RowFn>(row_fn), progress);
}

}  // namespace javelin
