// Point-to-point level-scheduled execution (paper §III-A, Fig. 4).
//
// Rows of each level are mapped to threads in contiguous slices; each thread
// executes its rows level-by-level in a fixed order. That fixed order is the
// "implied ordering" that lets dependencies be pruned:
//   * same-thread dependencies vanish (program order),
//   * per producer thread only the MAXIMUM needed schedule position is kept
//     (its progress counter is monotone),
//   * a dependency already implied by an earlier wait of the same consumer
//     thread is dropped (build-time transitive pruning).
//
// Rows are additionally blocked into ITEMS — chunks of up to chunk_rows
// consecutive rows of one (level, thread) slice (paper §VI hints at register
// blocking inside a level). The chunk is the synchronization granule: one
// merged wait list up front, one counter publish at the end, so the
// spin-wait checks and release stores are amortized over the whole block.
// Chunks never cross a level boundary, which keeps the schedule
// deadlock-free (an item's dependencies always live in strictly earlier
// levels, hence strictly earlier items on every thread). At runtime an item
// performs at most (threads - 1) spin-waits on padded progress counters — no
// barriers, no tasks (paper: "point-to-point's implementation relies on
// inexpensive spinlocks and allows for certain threads to speed ahead of
// others").
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "javelin/sparse/csr.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

struct P2PSchedule {
  int threads = 1;
  index_t n_total = 0;  ///< dimension of the row-index space

  /// Execution order: thread t runs items [thread_ptr[t] .. thread_ptr[t+1]);
  /// item i covers rows[item_ptr[i] .. item_ptr[i+1]) (a contiguous chunk of
  /// one (level, thread) slice, executed in stored order).
  std::vector<index_t> thread_ptr;
  std::vector<index_t> item_ptr;
  std::vector<index_t> rows;

  /// Sparsified waits, per ITEM: before executing item i, wait until
  /// wait_thread[w] has published wait_count[w] items, for
  /// w in [wait_ptr[i], wait_ptr[i+1]).
  std::vector<index_t> wait_ptr;
  std::vector<index_t> wait_thread;
  std::vector<index_t> wait_count;

  /// Dependency-safe serial order (level-major) used when the runtime cannot
  /// supply the planned team size.
  std::vector<index_t> serial_order;

  // --- statistics ----------------------------------------------------------
  index_t deps_total = 0;    ///< cross-thread dependencies before pruning
  index_t deps_kept = 0;     ///< spin-waits actually stored
  index_t num_levels = 0;

  index_t num_rows() const noexcept { return static_cast<index_t>(rows.size()); }
  index_t num_items() const noexcept {
    return item_ptr.empty() ? 0 : static_cast<index_t>(item_ptr.size()) - 1;
  }

  /// Producer lookup for consumers synchronizing against this schedule from
  /// OUTSIDE it (the fused solve+SpMV phase): owner[r] is the executing
  /// thread of row r (kInvalidIndex if unscheduled) and item_of[r] the
  /// 0-based item position within that thread, i.e. a consumer must
  /// wait_for(owner[r], item_of[r] + 1).
  void producer_positions(std::vector<index_t>& owner,
                          std::vector<index_t>& item_of) const;
};

/// Yields the dependency rows of a given row (rows that must complete
/// first). Dependencies outside the scheduled row set are ignored (they are
/// satisfied by construction — e.g. upper-stage rows for the corner).
using DepsFn = std::function<void(index_t row, const std::function<void(index_t)>& yield)>;

/// Build-time helper shared by the schedule builder and the fused-SpMV
/// companion (build_fused_apply_spmv): two-pass (count, fill) sparsified
/// wait-list construction with monotone per-producer high-water pruning.
/// Thread t executes consumers [consumer_thread_ptr[t],
/// consumer_thread_ptr[t+1]) in order. `seed` pre-loads the thread's
/// high-water marks with counts it has already waited for before its first
/// consumer (empty function = none). `deps(t, c, yield)` enumerates consumer
/// c's CROSS-thread dependencies as (producer thread, required published
/// count) — same-thread dependencies must be filtered by the caller. On
/// return wait_ptr/wait_thread/wait_count hold the pruned CSR-style wait
/// lists and deps_total/deps_kept the before/after dependency counts.
using WaitSeedFn = std::function<void(int t, std::span<index_t> last_wait)>;
using WaitDepsFn = std::function<void(
    int t, index_t consumer,
    const std::function<void(index_t producer_thread, index_t count)>& yield)>;

void build_sparsified_waits(int threads,
                            std::span<const index_t> consumer_thread_ptr,
                            const WaitSeedFn& seed, const WaitDepsFn& deps,
                            std::vector<index_t>& wait_ptr,
                            std::vector<index_t>& wait_thread,
                            std::vector<index_t>& wait_count,
                            index_t& deps_total, index_t& deps_kept);

/// Default rows per item; the sweep kernels are memory-bound, so a modest
/// block already hides the wait/publish latency without delaying consumers.
inline constexpr index_t kDefaultChunkRows = 32;

/// Build a schedule from explicit level sets (level-major lists of rows).
/// `levels_rows` / `levels_ptr` follow the LevelSets layout. `deps` is
/// consulted once per row at build time. `chunk_rows` bounds the rows per
/// item (blocking granule); values < 1 are clamped to 1.
P2PSchedule build_p2p_schedule(index_t n_total,
                               std::span<const index_t> level_ptr,
                               std::span<const index_t> rows_by_level,
                               const DepsFn& deps, int threads,
                               index_t chunk_rows = kDefaultChunkRows);

/// Forward schedule for the upper stage of a two-stage plan: rows
/// [0, n_upper) with contiguous levels; dependencies are the strictly-lower
/// columns of `lu` (which is both the factorization and the forward-solve
/// dependency structure — the co-design of paper §VI).
P2PSchedule build_upper_forward_schedule(const CsrMatrix& lu,
                                         std::span<const index_t> upper_level_ptr,
                                         int threads,
                                         index_t chunk_rows = kDefaultChunkRows);

/// Backward schedule over ALL rows: dependencies are the strictly-upper
/// columns of `lu`; levels computed on that pattern, processed high-to-low.
P2PSchedule build_backward_schedule(const CsrMatrix& lu, int threads,
                                    index_t chunk_rows = kDefaultChunkRows);

/// Execute the schedule with caller-provided progress counters. `row_fn(row,
/// thread)` is called once per row, in dependency order, from inside a
/// parallel region; it must not throw. Falls back to the serial order when
/// the OpenMP runtime provides a team smaller than planned.
///
/// `progress` is grown (reallocating) only when it is smaller than the
/// schedule's team and re-armed (zeroed) otherwise, so callers that sweep
/// thousands of times — the stri-per-Krylov-iteration profile, and now the
/// AMG smoother running stri at every level of every V-cycle — pay the
/// threads×64B counter allocation once, not per sweep.
template <class RowFn>
void p2p_execute(const P2PSchedule& s, RowFn&& row_fn,
                 ProgressCounters& progress) {
  if (s.threads <= 1) {
    for (index_t r : s.serial_order) row_fn(r, 0);
    return;
  }
  if (progress.num_threads() < s.threads) {
    progress.reset(s.threads);
  } else {
    progress.rearm();
  }
  bool fallback = false;
#pragma omp parallel num_threads(s.threads)
  {
    // team_size() is uniform across the team, so every thread reaches the
    // same verdict locally — no single+barrier round just to agree on it.
    if (team_size() < s.threads) {
      if (thread_id() == 0) fallback = true;  // sole writer
    } else {
      const int t = thread_id();
      const int spin_budget = spin_budget_for(s.threads);
      const index_t lo = s.thread_ptr[static_cast<std::size_t>(t)];
      const index_t hi = s.thread_ptr[static_cast<std::size_t>(t) + 1];
      index_t done = 0;
      for (index_t i = lo; i < hi; ++i) {
        // One merged wait list, then the whole row block — the spin-wait
        // checks and the release store are amortized over chunk_rows rows.
        for (index_t w = s.wait_ptr[static_cast<std::size_t>(i)];
             w < s.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
          progress.wait_for(static_cast<int>(s.wait_thread[static_cast<std::size_t>(w)]),
                            s.wait_count[static_cast<std::size_t>(w)], spin_budget);
        }
        for (index_t k = s.item_ptr[static_cast<std::size_t>(i)];
             k < s.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          row_fn(s.rows[static_cast<std::size_t>(k)], t);
        }
        ++done;
        progress.publish(t, done);
      }
    }
  }
  if (fallback) {
    for (index_t r : s.serial_order) row_fn(r, 0);
  }
}

/// Convenience overload with per-call counters (one-shot executions such as
/// the factorization numeric phase; sweep loops should pass a persistent
/// ProgressCounters instead).
template <class RowFn>
void p2p_execute(const P2PSchedule& s, RowFn&& row_fn) {
  ProgressCounters progress;
  p2p_execute(s, std::forward<RowFn>(row_fn), progress);
}

}  // namespace javelin
