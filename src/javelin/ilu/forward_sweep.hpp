// The forward (L) sweep shared by the unfused solve path (trsv_forward,
// where x already holds the permuted rhs) and the fused solve+SpMV path
// (fused_forward, where the rhs gather x = P r is folded into each row).
// One implementation keeps the tail policy — the small-tail cutoff, the
// ER-style parallel partial sums, the ordered corner resolve — in a single
// place, so the bitwise fused/unfused parity contract cannot drift.
#pragma once

#include <span>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/ilu/trsv_kernels.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin::detail {

/// In-place P2P forward sweep on the permuted factor: on exit L x' = rhs,
/// where `rhs(r)` yields row r's right-hand side (read before x[r] is
/// written, so `[&x](index_t r) { return x[r]; }` expresses the in-place
/// pre-gathered case). Upper-stage rows run under f.fwd; lower-stage rows
/// run as a parallel partial-sum pass plus an ordered corner sweep
/// (ws.lower_acc is the scratch). Every row's accumulation is
/// `rhs(r) - <fixed CSR-order partial sums>` — bitwise-identical across all
/// rhs functors that return the same values.
template <class RhsFn>
void forward_sweep(const Factorization& f, RhsFn rhs, std::span<value_t> x,
                   SolveWorkspace& ws) {
  const CsrMatrix& lu = f.lu;
  const index_t n = f.n();
  const index_t n_upper = f.plan.n_upper;
  const index_t n_lower = n - n_upper;

  // Upper-stage rows: same schedule, same synchronization as the
  // factorization, retargeted when the runtime team differs from the plan.
  // lower_partial reads only columns < r, whose completion the schedule's
  // waits (or level barriers) guarantee.
  const ExecSchedule& fwd = runtime_fwd(f, ws.sched);
  exec_run(
      fwd,
      [&](index_t r, int) {
        x[static_cast<std::size_t>(r)] = rhs(r) - lower_partial(lu, r, r, x, 0);
      },
      ws.progress);

  if (n_lower == 0) return;
  if (fwd.threads <= 1 || n_lower < 64) {
    // Small tail: plain ordered sweep (corner coupling resolved in order).
    for (index_t r = n_upper; r < n; ++r) {
      x[static_cast<std::size_t>(r)] = rhs(r) - lower_partial(lu, r, n, x, 0);
    }
    return;
  }
  // ER-style tail: the upper-column products of the moved rows are mutually
  // independent once the upper stage finished — accumulate them in parallel,
  // then resolve the (small) corner coupling in row order.
  if (ws.lower_acc.size() < static_cast<std::size_t>(n_lower)) {
    ws.lower_acc.resize(static_cast<std::size_t>(n_lower));
  }
  std::span<value_t> acc(ws.lower_acc);
#pragma omp parallel for schedule(static)
  for (index_t r = n_upper; r < n; ++r) {
    acc[static_cast<std::size_t>(r - n_upper)] =
        lower_partial(lu, r, n_upper, x, 0);
  }
  for (index_t r = n_upper; r < n; ++r) {
    x[static_cast<std::size_t>(r)] =
        rhs(r) - corner_partial(lu, r, n_upper, x,
                                acc[static_cast<std::size_t>(r - n_upper)]);
  }
}

}  // namespace javelin::detail
