// The forward (L) sweep shared by the unfused solve path (trsv_forward,
// where x already holds the permuted rhs) and the fused solve+SpMV path
// (fused_forward, where the rhs gather x = P r is folded into each row).
// One implementation keeps the tail policy — the small-tail cutoff, the
// ER-style parallel partial sums, the ordered corner resolve — in a single
// place, so the bitwise fused/unfused parity contract cannot drift.
#pragma once

#include <span>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/ilu/trsv_kernels.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin::detail {

/// In-place P2P forward sweep on the permuted factor: on exit L x' = rhs,
/// where `rhs(r)` yields row r's right-hand side (read before x[r] is
/// written, so `[&x](index_t r) { return x[r]; }` expresses the in-place
/// pre-gathered case). Upper-stage rows run under f.fwd; lower-stage rows
/// run as a parallel partial-sum pass plus an ordered corner sweep
/// (ws.lower_acc is the scratch). Every row's accumulation is
/// `rhs(r) - <fixed CSR-order partial sums>` — bitwise-identical across all
/// rhs functors that return the same values.
///
/// Returns kAborted when the factor's fault-injection hook (tests only)
/// vetoed a row: the scheduled part drains through the cooperative-abort
/// protocol of exec_run, the tails stop at the vetoed row. With no hook
/// installed the sweep runs the historical unguarded path and always
/// returns kOk.
template <class RhsFn>
ExecStatus forward_sweep(const Factorization& f, RhsFn rhs,
                         std::span<value_t> x, SolveWorkspace& ws) {
  const CsrMatrix& lu = f.lu;
  const index_t n = f.n();
  const index_t n_upper = f.plan.n_upper;
  const index_t n_lower = n - n_upper;
  const FaultHook& hook = f.opts.fault_hook;

  // Upper-stage rows: same schedule, same synchronization as the
  // factorization, retargeted when the runtime team differs from the plan.
  // lower_partial reads only columns < r, whose completion the schedule's
  // waits (or level barriers) guarantee.
  const ExecSchedule& fwd = runtime_fwd(f, ws.sched);
  const auto forward_row = [&](index_t r) {
    x[static_cast<std::size_t>(r)] = rhs(r) - lower_partial(lu, r, r, x, 0);
  };
  if (hook) {
    const ExecStatus st = exec_run(
        fwd,
        [&](index_t r, int) -> bool {
          forward_row(r);
          return hook(FaultSite::kForwardRow, r);
        },
        ws.progress);
    if (!st.ok()) return st;
  } else if (f.opts.exec_obs != nullptr) {
    exec_run_obs(
        fwd, [&](index_t r, int) { forward_row(r); }, ws.progress,
        *f.opts.exec_obs, obs::Region::kForward);
  } else {
    exec_run(
        fwd, [&](index_t r, int) { forward_row(r); }, ws.progress);
  }

  if (n_lower == 0) return {};
  if (fwd.threads <= 1 || n_lower < 64) {
    // Small tail: plain ordered sweep (corner coupling resolved in order).
    for (index_t r = n_upper; r < n; ++r) {
      x[static_cast<std::size_t>(r)] = rhs(r) - lower_partial(lu, r, n, x, 0);
      if (hook && !hook(FaultSite::kForwardRow, r)) {
        return {ExecOutcome::kAborted, r};
      }
    }
    return {};
  }
  // ER-style tail: the upper-column products of the moved rows are mutually
  // independent once the upper stage finished — accumulate them in parallel,
  // then resolve the (small) corner coupling in row order.
  if (ws.lower_acc.size() < static_cast<std::size_t>(n_lower)) {
    ws.lower_acc.resize(static_cast<std::size_t>(n_lower));
  }
  std::span<value_t> acc(ws.lower_acc);
#pragma omp parallel for schedule(static)
  for (index_t r = n_upper; r < n; ++r) {
    acc[static_cast<std::size_t>(r - n_upper)] =
        lower_partial(lu, r, n_upper, x, 0);
  }
  for (index_t r = n_upper; r < n; ++r) {
    x[static_cast<std::size_t>(r)] =
        rhs(r) - corner_partial(lu, r, n_upper, x,
                                acc[static_cast<std::size_t>(r - n_upper)]);
    if (hook && !hook(FaultSite::kForwardRow, r)) {
      return {ExecOutcome::kAborted, r};
    }
  }
  return {};
}

/// Panel (multi-RHS) forward sweep: the column-major n×k panel at `x`
/// (column stride `ld`) is solved in place, L x_j = rhs(r, j) for every
/// column j. Same schedule, same tail policy and same per-row accumulation
/// order as the scalar sweep above — column j is bitwise equal to a scalar
/// forward_sweep of that column — but every L entry is loaded once per
/// register block of kPanelBlockCols columns instead of once per column.
template <class RhsFn>
ExecStatus forward_sweep_panel(const Factorization& f, RhsFn rhs, value_t* x,
                               std::size_t ld, index_t k, SolveWorkspace& ws) {
  const CsrMatrix& lu = f.lu;
  const index_t n = f.n();
  const index_t n_upper = f.plan.n_upper;
  const index_t n_lower = n - n_upper;
  const FaultHook& hook = f.opts.fault_hook;

  const auto forward_row = [&](index_t r, index_t col_hi) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t acc[KB] = {};
      value_t* xb = x + static_cast<std::size_t>(j0) * ld;
      lower_partial_panel<KB>(lu, r, col_hi, xb, ld, acc);
      for (int j = 0; j < KB; ++j) {
        xb[static_cast<std::size_t>(r) + static_cast<std::size_t>(j) * ld] =
            rhs(r, j0 + j) - acc[j];
      }
    });
  };

  const ExecSchedule& fwd = runtime_fwd(f, ws.sched);
  if (hook) {
    const ExecStatus st = exec_run(
        fwd,
        [&](index_t r, int) -> bool {
          forward_row(r, n);
          return hook(FaultSite::kForwardRow, r);
        },
        ws.progress);
    if (!st.ok()) return st;
  } else if (f.opts.exec_obs != nullptr) {
    exec_run_obs(
        fwd, [&](index_t r, int) { forward_row(r, n); }, ws.progress,
        *f.opts.exec_obs, obs::Region::kForward);
  } else {
    exec_run(
        fwd, [&](index_t r, int) { forward_row(r, n); }, ws.progress);
  }

  if (n_lower == 0) return {};
  if (fwd.threads <= 1 || n_lower < 64) {
    for (index_t r = n_upper; r < n; ++r) {
      forward_row(r, n);
      if (hook && !hook(FaultSite::kForwardRow, r)) {
        return {ExecOutcome::kAborted, r};
      }
    }
    return {};
  }
  // ER-style tail, panel-wide: parallel upper-column partial sums into an
  // n_lower×k scratch panel, then the ordered corner resolve.
  const std::size_t acc_ld = static_cast<std::size_t>(n_lower);
  if (ws.lower_acc.size() < acc_ld * static_cast<std::size_t>(k)) {
    ws.lower_acc.resize(acc_ld * static_cast<std::size_t>(k));
  }
  value_t* acc_panel = ws.lower_acc.data();
#pragma omp parallel for schedule(static)
  for (index_t r = n_upper; r < n; ++r) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t acc[KB] = {};
      lower_partial_panel<KB>(lu, r, n_upper,
                              x + static_cast<std::size_t>(j0) * ld, ld, acc);
      value_t* ar = acc_panel + static_cast<std::size_t>(r - n_upper) +
                    static_cast<std::size_t>(j0) * acc_ld;
      for (int j = 0; j < KB; ++j) ar[static_cast<std::size_t>(j) * acc_ld] = acc[j];
    });
  }
  for (index_t r = n_upper; r < n; ++r) {
    for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      value_t acc[KB];
      const value_t* ar = acc_panel + static_cast<std::size_t>(r - n_upper) +
                          static_cast<std::size_t>(j0) * acc_ld;
      for (int j = 0; j < KB; ++j) acc[j] = ar[static_cast<std::size_t>(j) * acc_ld];
      value_t* xb = x + static_cast<std::size_t>(j0) * ld;
      corner_partial_panel<KB>(lu, r, n_upper, xb, ld, acc);
      for (int j = 0; j < KB; ++j) {
        xb[static_cast<std::size_t>(r) + static_cast<std::size_t>(j) * ld] =
            rhs(r, j0 + j) - acc[j];
      }
    });
    if (hook && !hook(FaultSite::kForwardRow, r)) {
      return {ExecOutcome::kAborted, r};
    }
  }
  return {};
}

}  // namespace javelin::detail
