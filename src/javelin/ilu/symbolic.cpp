#include "javelin/ilu/symbolic.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "javelin/support/scan.hpp"

namespace javelin {

namespace {

/// ILU(0) pattern: copy A, inserting missing diagonal entries with value 0.
CsrMatrix ilu0_pattern(const CsrMatrix& a, SymbolicStats* stats) {
  const index_t n = a.rows();
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  index_t added = 0;
  for (index_t r = 0; r < n; ++r) {
    const bool has_diag = a.find(r, r) != kInvalidIndex;
    rp[static_cast<std::size_t>(r) + 1] = a.row_nnz(r) + (has_diag ? 0 : 1);
    added += has_diag ? 0 : 1;
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<value_t> vv(static_cast<std::size_t>(rp.back()), value_t{0});
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    index_t w = rp[static_cast<std::size_t>(r)];
    bool diag_written = false;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
      if (!diag_written && c > r) {
        ci[static_cast<std::size_t>(w)] = r;
        vv[static_cast<std::size_t>(w)] = 0;
        ++w;
        diag_written = true;
      }
      if (c == r) diag_written = true;
      ci[static_cast<std::size_t>(w)] = c;
      vv[static_cast<std::size_t>(w)] = a.values()[static_cast<std::size_t>(k)];
      ++w;
    }
    if (!diag_written) {
      ci[static_cast<std::size_t>(w)] = r;
      vv[static_cast<std::size_t>(w)] = 0;
      ++w;
    }
  }
  if (stats) {
    stats->pattern_nnz = static_cast<index_t>(ci.size());
    stats->fill_nnz = 0;
    stats->added_diagonals = added;
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace

CsrMatrix ilu_symbolic(const CsrMatrix& a, int fill_level, SymbolicStats* stats) {
  JAVELIN_CHECK(a.square(), "ILU requires a square matrix");
  JAVELIN_CHECK(fill_level >= 0, "fill level must be nonnegative");
  if (fill_level == 0) return ilu0_pattern(a, stats);

  const index_t n = a.rows();
  constexpr int kInfLevel = std::numeric_limits<int>::max() / 2;

  // Factor pattern rows built incrementally; row i consumes U-parts of
  // earlier rows. Levels stored per entry.
  std::vector<std::vector<index_t>> rows(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> row_levels(static_cast<std::size_t>(n));
  // Start position of the U part (col >= diag) within each finished row.
  std::vector<index_t> u_start(static_cast<std::size_t>(n), 0);

  // Dense workspace: level per column + linked-list traversal in sorted
  // order (classic IKJ symbolic kernel).
  std::vector<int> lev(static_cast<std::size_t>(n), kInfLevel);
  std::vector<index_t> next(static_cast<std::size_t>(n) + 1, kInvalidIndex);
  const index_t kHead = n;  // sentinel index for the linked list head

  index_t added_diag = 0;
  index_t fill_total = 0;

  for (index_t i = 0; i < n; ++i) {
    // Seed the work list with pattern(A) row i (level 0) plus the diagonal.
    next[static_cast<std::size_t>(kHead)] = kInvalidIndex;
    index_t list_tail = kHead;  // insertion cursor for sorted build
    const auto insert_sorted = [&](index_t col, int level) {
      if (lev[static_cast<std::size_t>(col)] != kInfLevel) {
        lev[static_cast<std::size_t>(col)] =
            std::min(lev[static_cast<std::size_t>(col)], level);
        return;
      }
      lev[static_cast<std::size_t>(col)] = level;
      // Find insertion point. Amortized cheap when inserting ascending runs:
      // start from list_tail if it precedes col, else from head.
      index_t p = (list_tail != kHead && list_tail < col) ? list_tail : kHead;
      while (next[static_cast<std::size_t>(p)] != kInvalidIndex &&
             next[static_cast<std::size_t>(p)] < col) {
        p = next[static_cast<std::size_t>(p)];
      }
      next[static_cast<std::size_t>(col)] = next[static_cast<std::size_t>(p)];
      next[static_cast<std::size_t>(p)] = col;
      list_tail = col;
    };

    bool saw_diag = false;
    for (index_t c : a.row_cols(i)) {
      insert_sorted(c, 0);
      saw_diag |= (c == i);
    }
    if (!saw_diag) {
      insert_sorted(i, 0);
      ++added_diag;
    }

    // Up-looking symbolic elimination: walk the list in sorted order; for
    // every j < i merge in row j's U-part with incremented levels.
    for (index_t j = next[static_cast<std::size_t>(kHead)];
         j != kInvalidIndex && j < i; j = next[static_cast<std::size_t>(j)]) {
      const int lev_ij = lev[static_cast<std::size_t>(j)];
      const auto& rj = rows[static_cast<std::size_t>(j)];
      const auto& rjl = row_levels[static_cast<std::size_t>(j)];
      for (std::size_t m = static_cast<std::size_t>(u_start[static_cast<std::size_t>(j)]);
           m < rj.size(); ++m) {
        const index_t col = rj[m];
        if (col <= j) continue;  // U part only (strictly right of pivot)
        const int f = lev_ij + rjl[m] + 1;
        if (f <= fill_level) insert_sorted(col, f);
      }
    }

    // Harvest the list into row i, clearing workspace as we go.
    auto& ri = rows[static_cast<std::size_t>(i)];
    auto& ril = row_levels[static_cast<std::size_t>(i)];
    for (index_t c = next[static_cast<std::size_t>(kHead)]; c != kInvalidIndex;) {
      ri.push_back(c);
      ril.push_back(lev[static_cast<std::size_t>(c)]);
      if (lev[static_cast<std::size_t>(c)] > 0) ++fill_total;
      lev[static_cast<std::size_t>(c)] = kInfLevel;
      const index_t nc = next[static_cast<std::size_t>(c)];
      next[static_cast<std::size_t>(c)] = kInvalidIndex;
      c = nc;
    }
    u_start[static_cast<std::size_t>(i)] = static_cast<index_t>(
        std::lower_bound(ri.begin(), ri.end(), i) - ri.begin());
  }

  // Assemble CSR and scatter A's values onto the pattern.
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    rp[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(rows[static_cast<std::size_t>(i)].size());
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<value_t> vv(static_cast<std::size_t>(rp.back()), value_t{0});
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    index_t w = rp[static_cast<std::size_t>(i)];
    const auto& ri = rows[static_cast<std::size_t>(i)];
    auto acols = a.row_cols(i);
    auto avals = a.row_vals(i);
    std::size_t ak = 0;
    for (index_t c : ri) {
      while (ak < acols.size() && acols[ak] < c) ++ak;
      const value_t v =
          (ak < acols.size() && acols[ak] == c) ? avals[ak] : value_t{0};
      ci[static_cast<std::size_t>(w)] = c;
      vv[static_cast<std::size_t>(w)] = v;
      ++w;
    }
  }
  if (stats) {
    stats->pattern_nnz = static_cast<index_t>(ci.size());
    stats->fill_nnz = fill_total;
    stats->added_diagonals = added_diag;
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace javelin
