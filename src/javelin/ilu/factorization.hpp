// The complete Javelin factorization object: symbolic pattern, two-stage
// plan, point-to-point schedules (factorization + forward solve share one;
// backward solve has its own), and the numeric factor itself. Built once,
// then reused by thousands of triangular solves (paper §VI: "the incomplete
// factorization may only be formed once, but stri may be called thousands
// of times").
#pragma once

#include <vector>

#include "javelin/ilu/options.hpp"
#include "javelin/ilu/plan.hpp"
#include "javelin/ilu/schedule.hpp"
#include "javelin/ilu/symbolic.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

/// One tile of the SR lower stage: a contiguous nonzero range of one lower
/// row falling inside one upper level's column range (tiles never split a
/// row-level segment, which keeps every update row-owned and race-free).
struct SrTile {
  index_t row = 0;      ///< permuted row index (>= n_upper)
  index_t nz_begin = 0; ///< range inside the factor's nonzero arrays
  index_t nz_end = 0;
};

/// Tiles grouped by upper level: tiles for level l are
/// tiles[tile_ptr[l] .. tile_ptr[l+1]). Tasks within a level are
/// independent; levels are separated by a taskwait (paper Fig. 6).
///
/// Tiles are additionally coalesced into TASKS of ~tile_nnz nonzeros: task t
/// spans tiles [task_tile_ptr[t], task_tile_ptr[t+1]), and level l owns
/// tasks [level_task_ptr[l], level_task_ptr[l+1]). Grouping adjacent small
/// same-level segments keeps per-task OpenMP overhead bounded on matrices
/// with many tiny row-level segments (the overhead profile measured with
/// VTune in paper §V) while every tile stays row-owned and race-free.
struct SrTiling {
  std::vector<index_t> tile_ptr;
  std::vector<SrTile> tiles;
  /// Task boundaries as tile indices; size = num_tasks + 1.
  std::vector<index_t> task_tile_ptr;
  /// Per-level task ranges; size = num_levels + 1.
  std::vector<index_t> level_task_ptr;
  /// Levels that actually own tiles (others are skipped at run time).
  index_t active_levels = 0;

  index_t num_tasks() const noexcept {
    return task_tile_ptr.empty() ? 0
                                 : static_cast<index_t>(task_tile_ptr.size()) - 1;
  }
};

struct Factorization {
  IluOptions opts;
  SymbolicStats symbolic;
  TwoStagePlan plan;

  /// The factor in the plan's permuted ordering: L (unit diag implicit)
  /// strictly below, U (incl. diagonal) on/above.
  CsrMatrix lu;
  std::vector<index_t> diag_pos;

  /// Upper-stage point-to-point schedule (factorization + forward solve).
  P2PSchedule fwd;
  /// Backward-solve schedule over all rows.
  P2PSchedule bwd;
  /// SR tiling (empty unless plan.method == kSegmentedRows).
  SrTiling sr;
  /// Level sets of the corner block (only when opts.parallel_corner).
  LevelSets corner_levels;

  /// Persistent refactor scatter map: a_scatter[k] is the position in
  /// lu.values() receiving the k-th nonzero of the (unpermuted) input
  /// matrix, or kInvalidIndex when that entry fell outside the factor
  /// pattern. Built once at factor time; turns every subsequent
  /// scatter_values into a flat O(nnz) copy with no permutation inversion
  /// and no per-nonzero binary search.
  std::vector<index_t> a_scatter;

  index_t n() const noexcept { return lu.rows(); }
};

/// Factor `a` with the full Javelin pipeline (level planning, permutation,
/// two-stage parallel numeric factorization). `a` is expected to be
/// preordered already (paper §IV: "we assume that the given matrix is
/// already ordered"); the plan's internal level permutation is applied on
/// top and recorded in plan.perm.
Factorization ilu_factor(const CsrMatrix& a, const IluOptions& opts = {});

/// Re-run the numeric phase with new values but the same pattern and plan
/// (time-stepping use case). `a` must have the pattern of the original
/// matrix.
void ilu_refactor(Factorization& f, const CsrMatrix& a);

/// Numeric phase only, on an already-permuted symbolic factor. Exposed for
/// tests/benches that want to time stages separately.
void ilu_factor_numeric(Factorization& f);

/// Scatter values of (unpermuted) `a` onto the permuted factor pattern.
/// Uses (and lazily builds) the persistent f.a_scatter map.
void scatter_values(Factorization& f, const CsrMatrix& a);

/// Build f.a_scatter for `a` (which must share the factored matrix's
/// pattern). Called by ilu_factor; exposed for tests and benches.
void build_scatter_map(Factorization& f, const CsrMatrix& a);

/// The pre-scatter-map algorithm (per-call permutation inversion plus a
/// binary search per nonzero), kept as the benchmark baseline the persistent
/// map is measured against.
void scatter_values_searched(Factorization& f, const CsrMatrix& a);

/// Build tiles for the SR lower stage from the permuted factor, coalescing
/// adjacent same-level tiles into tasks of up to tile_nnz nonzeros.
SrTiling build_sr_tiling(const CsrMatrix& lu, const TwoStagePlan& plan,
                         index_t tile_nnz);

}  // namespace javelin
