// The complete Javelin factorization object: symbolic pattern, two-stage
// plan, execution schedules (factorization + forward solve share one;
// backward solve has its own; both run under the pluggable exec/ backend —
// P2P spin-waits or barrier CSR-LS), and the numeric factor itself. Built
// once, then reused by thousands of triangular solves (paper §VI: "the
// incomplete factorization may only be formed once, but stri may be called
// thousands of times").
#pragma once

#include <memory>
#include <vector>

#include "javelin/exec/schedule.hpp"
#include "javelin/ilu/options.hpp"
#include "javelin/ilu/plan.hpp"
#include "javelin/ilu/symbolic.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

struct Factorization;
struct FusedApplySpmv;

/// Consumer-side cache of schedules re-planned (retargeted) for a runtime
/// team that differs from the factor-time plan. One immutable factor can
/// serve many solvers: each keeps its own cache (SolveWorkspace embeds one)
/// and the factor itself carries one for the numeric refactorization path.
/// Copying yields an EMPTY cache — retargeted schedules are scratch,
/// rebuilt on demand.
struct ScheduleCache {
  int threads = 0;  ///< team the cached schedules target; 0 = empty
  ExecSchedule fwd, bwd;
  /// Fused-SpMV companion rebuilt against `bwd` (filled lazily by
  /// ilu_apply_spmv; null until the fused path retargets). The chunk wait
  /// lists depend on A's column structure, so the cache records which A it
  /// was built from — by address, nnz AND column-array address, so a
  /// recycled heap address alone cannot serve stale chunks for a different
  /// matrix.
  std::unique_ptr<FusedApplySpmv> fused;
  const CsrMatrix* fused_matrix = nullptr;
  const index_t* fused_cols = nullptr;
  index_t fused_nnz = 0;

  ScheduleCache();
  ScheduleCache(const ScheduleCache&);  ///< copies as empty
  ScheduleCache(ScheduleCache&&) noexcept;
  ScheduleCache& operator=(const ScheduleCache&);  ///< resets to empty
  ScheduleCache& operator=(ScheduleCache&&) noexcept;
  ~ScheduleCache();
};

/// One tile of the SR lower stage: a contiguous nonzero range of one lower
/// row falling inside one upper level's column range (tiles never split a
/// row-level segment, which keeps every update row-owned and race-free).
struct SrTile {
  index_t row = 0;      ///< permuted row index (>= n_upper)
  index_t nz_begin = 0; ///< range inside the factor's nonzero arrays
  index_t nz_end = 0;
};

/// Tiles grouped by upper level: tiles for level l are
/// tiles[tile_ptr[l] .. tile_ptr[l+1]). Tasks within a level are
/// independent; levels are separated by a taskwait (paper Fig. 6).
///
/// Tiles are additionally coalesced into TASKS of ~tile_nnz nonzeros: task t
/// spans tiles [task_tile_ptr[t], task_tile_ptr[t+1]), and level l owns
/// tasks [level_task_ptr[l], level_task_ptr[l+1]). Grouping adjacent small
/// same-level segments keeps per-task OpenMP overhead bounded on matrices
/// with many tiny row-level segments (the overhead profile measured with
/// VTune in paper §V) while every tile stays row-owned and race-free.
struct SrTiling {
  std::vector<index_t> tile_ptr;
  std::vector<SrTile> tiles;
  /// Task boundaries as tile indices; size = num_tasks + 1.
  std::vector<index_t> task_tile_ptr;
  /// Per-level task ranges; size = num_levels + 1.
  std::vector<index_t> level_task_ptr;
  /// Levels that actually own tiles (others are skipped at run time).
  index_t active_levels = 0;

  index_t num_tasks() const noexcept {
    return task_tile_ptr.empty() ? 0
                                 : static_cast<index_t>(task_tile_ptr.size()) - 1;
  }
};

struct Factorization {
  IluOptions opts;
  SymbolicStats symbolic;
  TwoStagePlan plan;

  /// The factor in the plan's permuted ordering: L (unit diag implicit)
  /// strictly below, U (incl. diagonal) on/above.
  CsrMatrix lu;
  std::vector<index_t> diag_pos;

  /// Upper-stage schedule (factorization + forward solve), built for the
  /// backend opts.exec_backend selects.
  ExecSchedule fwd;
  /// Backward-solve schedule over all rows.
  ExecSchedule bwd;
  /// SR tiling (empty unless plan.method == kSegmentedRows).
  SrTiling sr;
  /// Barrier level-set schedule of the corner block, over LOCAL row indices
  /// [0, num_lower_rows) (only when opts.parallel_corner).
  ExecSchedule corner;
  /// Retargeted schedules for a refactorization team that differs from the
  /// plan (ilu_factor_numeric); solves cache in their workspace instead.
  ScheduleCache numeric_cache;

  /// Persistent refactor scatter map: a_scatter[k] is the position in
  /// lu.values() receiving the k-th nonzero of the (unpermuted) input
  /// matrix, or kInvalidIndex when that entry fell outside the factor
  /// pattern. Built once at factor time; turns every subsequent
  /// scatter_values into a flat O(nnz) copy with no permutation inversion
  /// and no per-nonzero binary search.
  std::vector<index_t> a_scatter;

  index_t n() const noexcept { return lu.rows(); }
};

/// Outcome of the numeric factorization phase. The numeric phase is the
/// only part of the pipeline that can fail on VALUES (an unusable pivot);
/// structural problems (missing diagonal, non-square input) still throw
/// from the symbolic phase because no shift or retry can repair them.
enum class FactorOutcome : std::uint8_t { kOk, kBadPivot };

struct FactorStatus {
  FactorOutcome outcome = FactorOutcome::kOk;
  /// Permuted index of the first row whose pivot failed (zero/subthreshold/
  /// non-finite magnitude, or a fault-injection veto); kInvalidIndex on kOk.
  index_t row = kInvalidIndex;

  bool ok() const noexcept { return outcome == FactorOutcome::kOk; }
};

/// Factor `a` with the full Javelin pipeline (level planning, permutation,
/// two-stage parallel numeric factorization). `a` is expected to be
/// preordered already (paper §IV: "we assume that the given matrix is
/// already ordered"); the plan's internal level permutation is applied on
/// top and recorded in plan.perm. Throws Error on a numeric breakdown; use
/// ilu_prepare + ilu_factor_numeric_status for the non-throwing pipeline.
Factorization ilu_factor(const CsrMatrix& a, const IluOptions& opts = {});

/// Everything in ilu_factor EXCEPT the numeric phase: symbolic analysis,
/// planning, permutation, scatter map and execution schedules. The returned
/// factor holds A's (scattered) values, not L/U. Pairing this with
/// ilu_factor_numeric_status gives a breakdown-safe factorization where the
/// expensive analysis is paid once and each numeric attempt (e.g. the
/// shift-ladder retries of RobustSolver) is an O(nnz) scatter + sweep.
Factorization ilu_prepare(const CsrMatrix& a, const IluOptions& opts = {});

/// Re-run the numeric phase with new values but the same pattern and plan
/// (time-stepping use case). `a` must have the pattern of the original
/// matrix. Throws Error on breakdown.
void ilu_refactor(Factorization& f, const CsrMatrix& a);

/// Numeric phase only, on an already-permuted symbolic factor. Exposed for
/// tests/benches that want to time stages separately. Throws on breakdown.
void ilu_factor_numeric(Factorization& f);

/// Non-throwing numeric phase: a bad pivot aborts the parallel region
/// cooperatively (exec/run.hpp) and is reported as a FactorStatus instead
/// of an exception. On kBadPivot the factor's values are garbage; rescatter
/// before the next attempt.
FactorStatus ilu_factor_numeric_status(Factorization& f);

/// Non-throwing refactorization: scatter + ilu_factor_numeric_status.
FactorStatus ilu_refactor_status(Factorization& f, const CsrMatrix& a);

/// Scatter values of (unpermuted) `a` onto the permuted factor pattern.
/// Uses (and lazily builds) the persistent f.a_scatter map.
void scatter_values(Factorization& f, const CsrMatrix& a);

/// Build f.a_scatter for `a` (which must share the factored matrix's
/// pattern). Called by ilu_factor; exposed for tests and benches.
void build_scatter_map(Factorization& f, const CsrMatrix& a);

/// The pre-scatter-map algorithm (per-call permutation inversion plus a
/// binary search per nonzero), kept as the benchmark baseline the persistent
/// map is measured against.
void scatter_values_searched(Factorization& f, const CsrMatrix& a);

/// Build tiles for the SR lower stage from the permuted factor, coalescing
/// adjacent same-level tiles into tasks of up to tile_nnz nonzeros.
SrTiling build_sr_tiling(const CsrMatrix& lu, const TwoStagePlan& plan,
                         index_t tile_nnz);

// --- runtime retargeting (ilu/retarget.cpp) --------------------------------

/// The team a sweep over `f` should launch right now: the factor-time plan,
/// clamped by the current OpenMP runtime setting (omp_set_num_threads /
/// OMP_NUM_THREADS) and — when opts.retarget_oversubscribed — by the
/// hardware core count. Never less than 1.
int runtime_team(const Factorization& f);

/// Schedules matching runtime_team(f): the factor's own when the team equals
/// the plan, otherwise re-planned through `cache` (both directions rebuilt
/// together, and only when the team changed since the cache was filled).
/// Retargeted schedules are bitwise-identical to a fresh build at that team
/// (test_exec), so no solve path ever degrades to a serial sweep on a
/// team-size mismatch — it re-plans.
const ExecSchedule& runtime_fwd(const Factorization& f, ScheduleCache& cache);
const ExecSchedule& runtime_bwd(const Factorization& f, ScheduleCache& cache);

/// Flip every schedule of `f` (and its option block) to `backend` in place —
/// legal at any time because both backends share one schedule structure
/// (the bench uses this to race P2P against CSR-LS on one factor).
void set_exec_backend(Factorization& f, ExecBackend backend);

}  // namespace javelin
