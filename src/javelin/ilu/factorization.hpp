// The complete Javelin factorization object: symbolic pattern, two-stage
// plan, point-to-point schedules (factorization + forward solve share one;
// backward solve has its own), and the numeric factor itself. Built once,
// then reused by thousands of triangular solves (paper §VI: "the incomplete
// factorization may only be formed once, but stri may be called thousands
// of times").
#pragma once

#include <vector>

#include "javelin/ilu/options.hpp"
#include "javelin/ilu/plan.hpp"
#include "javelin/ilu/schedule.hpp"
#include "javelin/ilu/symbolic.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

/// One tile of the SR lower stage: a contiguous nonzero range of one lower
/// row falling inside one upper level's column range (tiles never split a
/// row-level segment, which keeps every update row-owned and race-free).
struct SrTile {
  index_t row = 0;      ///< permuted row index (>= n_upper)
  index_t nz_begin = 0; ///< range inside the factor's nonzero arrays
  index_t nz_end = 0;
};

/// Tiles grouped by upper level: tiles for level l are
/// tiles[tile_ptr[l] .. tile_ptr[l+1]). Tasks within a level are
/// independent; levels are separated by a taskwait (paper Fig. 6).
struct SrTiling {
  std::vector<index_t> tile_ptr;
  std::vector<SrTile> tiles;
  /// Levels that actually own tiles (others are skipped at run time).
  index_t active_levels = 0;
};

struct Factorization {
  IluOptions opts;
  SymbolicStats symbolic;
  TwoStagePlan plan;

  /// The factor in the plan's permuted ordering: L (unit diag implicit)
  /// strictly below, U (incl. diagonal) on/above.
  CsrMatrix lu;
  std::vector<index_t> diag_pos;

  /// Upper-stage point-to-point schedule (factorization + forward solve).
  P2PSchedule fwd;
  /// Backward-solve schedule over all rows.
  P2PSchedule bwd;
  /// SR tiling (empty unless plan.method == kSegmentedRows).
  SrTiling sr;
  /// Level sets of the corner block (only when opts.parallel_corner).
  LevelSets corner_levels;

  index_t n() const noexcept { return lu.rows(); }
};

/// Factor `a` with the full Javelin pipeline (level planning, permutation,
/// two-stage parallel numeric factorization). `a` is expected to be
/// preordered already (paper §IV: "we assume that the given matrix is
/// already ordered"); the plan's internal level permutation is applied on
/// top and recorded in plan.perm.
Factorization ilu_factor(const CsrMatrix& a, const IluOptions& opts = {});

/// Re-run the numeric phase with new values but the same pattern and plan
/// (time-stepping use case). `a` must have the pattern of the original
/// matrix.
void ilu_refactor(Factorization& f, const CsrMatrix& a);

/// Numeric phase only, on an already-permuted symbolic factor. Exposed for
/// tests/benches that want to time stages separately.
void ilu_factor_numeric(Factorization& f);

/// Scatter values of (unpermuted) `a` onto the permuted factor pattern.
void scatter_values(Factorization& f, const CsrMatrix& a);

/// Build tiles for the SR lower stage from the permuted factor.
SrTiling build_sr_tiling(const CsrMatrix& lu, const TwoStagePlan& plan,
                         index_t tile_nnz);

}  // namespace javelin
