// Symbolic phase: determine the ILU sparsity pattern S (paper §III: "depends
// on predetermining the sparsity pattern and applying an up-looking LU
// algorithm ... to the pattern", citing Hysom & Pothen [6]).
//
//   * ILU(0): S = pattern(A) with the diagonal added if missing.
//   * ILU(k): classic level-of-fill — fill entry (i,j) enters S when
//     lev(i,j) <= k with lev from the IKJ recurrence
//     lev(i,m) = min(lev(i,m), lev(i,j) + lev(j,m) + 1).
//
// The returned matrix carries the values of A scattered onto S (fill
// positions start at zero), ready for the numeric up-looking pass.
#pragma once

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Pattern statistics of a symbolic factorization.
struct SymbolicStats {
  index_t pattern_nnz = 0;
  index_t fill_nnz = 0;      ///< entries added beyond pattern(A)
  index_t added_diagonals = 0;
};

/// Compute the ILU(k) pattern of `a` and scatter a's values onto it.
/// Structurally missing diagonal entries are inserted with value 0 (the
/// numeric phase rejects exact-zero pivots later, so this only legalizes the
/// storage layout). k = 0 reduces to a copy with diagonal insertion.
CsrMatrix ilu_symbolic(const CsrMatrix& a, int fill_level,
                       SymbolicStats* stats = nullptr);

}  // namespace javelin
