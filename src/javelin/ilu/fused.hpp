// Fused preconditioner-apply + SpMV: the Krylov inner loop's hot pair
// z = (LU)^{-1} r followed by t = A z, executed as ONE scheduled pass
// (paper §VI: the iterative phase — apply plus matvec, every iteration —
// dominates end-to-end time).
//
// Three fusions, all bitwise-neutral:
//   * the rhs gather x = P r is folded into each forward-sweep row
//     (no permute-in pass),
//   * the solution scatter z = Pᵀ x is folded into each backward-sweep row
//     (no permute-out pass),
//   * the SpMV is streamed BEHIND the backward sweep inside the same
//     parallel region: each thread, after finishing its backward items,
//     processes its A-row chunks, each guarded by sparsified spin-waits on
//     the SAME ProgressCounters the backward sweep publishes — rows whose
//     column dependencies are satisfied start multiplying while other
//     threads are still solving. No barrier, no second kernel launch,
//   * and — when the plan has no lower stage and both sweeps run uniform
//     P2P — the FORWARD sweep joins the same region too: backward items
//     carry sparsified backward-on-forward waits (on a second counter bank)
//     and solve out of place, so a thread's backward rows start while other
//     threads still execute forward rows. One parallel region for the whole
//     solve + SpMV, zero fork/joins between the sweeps.
//
// Per Krylov iteration this removes one full pass over the vectors (the
// permute-out), two parallel-region fork/joins and the solve→SpMV barrier,
// while every row keeps its fixed CSR-order accumulation — the fused and
// unfused paths are bitwise-identical at any thread count.
//
// Under the barrier (CSR-LS) backend the same region runs the backward
// levels barrier-to-barrier and starts the SpMV chunks after the final
// level barrier — no sparsified cross-schedule waits, but still one region
// and zero extra vector passes, so the backend comparison stays honest.
#pragma once

#include <span>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/solve.hpp"

namespace javelin {

/// Build-once companion of a (Factorization, A) pair: the SpMV phase of the
/// fused pass. A's rows are nnz-balanced across the backward schedule's
/// threads and blocked into chunks; each chunk stores the pruned wait list
/// (producer thread, backward item count) covering every column it reads.
struct FusedApplySpmv {
  int threads = 1;
  index_t n = 0;

  /// Thread t multiplies chunks [thread_ptr[t], thread_ptr[t+1]); chunk c
  /// covers A rows [chunk_begin[c], chunk_end[c]).
  std::vector<index_t> thread_ptr;
  std::vector<index_t> chunk_begin;
  std::vector<index_t> chunk_end;

  /// Sparsified waits per chunk, on the BACKWARD schedule's item counters:
  /// before chunk c, wait until wait_thread[w] has published wait_count[w]
  /// backward items, for w in [wait_ptr[c], wait_ptr[c+1]). (The barrier
  /// backend never consults them: the level barriers of the backward sweep
  /// already order the whole solve before the SpMV phase.)
  std::vector<index_t> wait_ptr;
  std::vector<index_t> wait_thread;
  std::vector<index_t> wait_count;

  /// Rows per SpMV chunk the companion was built with (reused on retarget).
  index_t chunk_rows = 0;

  /// Cross-schedule waits of the single-region fused pass (forward sweep
  /// fused into the SAME parallel region as backward+SpMV): before BACKWARD
  /// item i, wait until forward thread fwd_wait_thread[w] has published
  /// fwd_wait_count[w] forward items, for w in [fwd_wait_ptr[i],
  /// fwd_wait_ptr[i+1]) — these gate each backward row's read of its own
  /// forward value. Built only when the companion was given the forward
  /// schedule and the plan has no lower stage (fwd_synced); the two-phase
  /// path never consults them.
  bool fwd_synced = false;
  std::vector<index_t> fwd_wait_ptr;
  std::vector<index_t> fwd_wait_thread;
  std::vector<index_t> fwd_wait_count;

  // --- statistics ----------------------------------------------------------
  index_t deps_total = 0;  ///< cross-thread column dependencies before pruning
  index_t deps_kept = 0;   ///< spin-waits actually stored
  index_t fwd_deps_total = 0;  ///< backward-on-forward deps before pruning
  index_t fwd_deps_kept = 0;   ///< backward-on-forward spin-waits stored

  index_t num_chunks() const noexcept {
    return static_cast<index_t>(chunk_begin.size());
  }
};

/// Default rows per fused-SpMV chunk.
inline constexpr index_t kDefaultSpmvChunkRows = 1024;

/// Build the fused-SpMV companion against an explicit backward schedule
/// (the retarget path rebuilds through this for the runtime team). `plan`
/// supplies the permutation; `a` is square with the factor's dimension.
/// Passing the matching forward schedule (`fwd`, same team) additionally
/// builds the backward-on-forward wait lists that let the runtime fuse the
/// forward sweep into the same parallel region (only possible — and only
/// attempted — when the plan has no lower stage).
FusedApplySpmv build_fused_apply_spmv(const ExecSchedule& bwd,
                                      const TwoStagePlan& plan,
                                      const CsrMatrix& a,
                                      index_t chunk_rows = kDefaultSpmvChunkRows,
                                      const ExecSchedule* fwd = nullptr);

/// Build the fused-SpMV companion for factor `f` and matrix `a` (square,
/// same dimension as the factor; in Krylov use `a` is the matrix `f` was
/// factored from). `chunk_rows` bounds the rows per SpMV chunk. The factor's
/// own forward schedule is offered for single-region fusion automatically.
FusedApplySpmv build_fused_apply_spmv(const Factorization& f,
                                      const CsrMatrix& a,
                                      index_t chunk_rows = kDefaultSpmvChunkRows);

/// The (team, backward schedule, fused-SpMV chunk structure) triple a fused
/// pass should run right now: the factor's own when the runtime team matches
/// the factor-time plan, otherwise retargeted through ws.sched (the cached
/// fused companion is rebuilt when the team, the matrix identity or the
/// chunk size changed). team <= 1 means "run the straight-line serial
/// sweep" — bwd/chunks are still valid but the serial path never consults
/// them. Shared by the scalar (ilu_apply_spmv) and panel
/// (ilu_apply_spmv_panel) fused passes so their retarget policy cannot
/// drift.
struct FusedRuntime {
  int team = 1;
  const ExecSchedule* bwd = nullptr;
  const FusedApplySpmv* chunks = nullptr;
  /// Forward schedule at the same team (null on the serial path); consulted
  /// only by the single-region fused pass.
  const ExecSchedule* fwd = nullptr;
};
FusedRuntime runtime_fused_schedule(const Factorization& f, const CsrMatrix& a,
                                    const FusedApplySpmv& fs,
                                    SolveWorkspace& ws);

/// z = (LU)^{-1} r and t = A z in one fused pass. r, z and t are in the
/// ORIGINAL row ordering and must not alias each other. Bitwise-identical to
/// `ilu_apply(f, r, z, ws)` followed by `spmv(a, part, z, t)` at any thread
/// count. When the runtime team differs from the factor-time plan the whole
/// fused pass — backward schedule AND SpMV chunks — is retargeted through
/// ws.sched (a team of one runs the straight-line serial sweep, which is
/// that team's schedule, not a fallback). Thread-safe across distinct
/// workspaces.
void ilu_apply_spmv(const Factorization& f, const CsrMatrix& a,
                    const FusedApplySpmv& fs, std::span<const value_t> r,
                    std::span<value_t> z, std::span<value_t> t,
                    SolveWorkspace& ws);

}  // namespace javelin
