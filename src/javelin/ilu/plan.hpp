// Two-stage execution plan (paper §III, Fig. 2): which levels are factored
// by point-to-point level scheduling (upper stage) and which rows are
// permuted to the end for the Even-Rows / Segmented-Rows lower stage.
#pragma once

#include <vector>

#include "javelin/graph/levels.hpp"
#include "javelin/ilu/options.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

struct TwoStagePlan {
  index_t n = 0;
  /// New-to-old permutation of the symbolic factor's rows: level-set order
  /// with lower-stage rows moved to the end (they retain their level-major
  /// relative order, so the permuted matrix still eliminates top-to-bottom).
  std::vector<index_t> perm;
  /// Rows [0, n_upper) are handled by the upper stage.
  index_t n_upper = 0;
  /// Upper-stage level l covers permuted rows
  /// [upper_level_ptr[l], upper_level_ptr[l+1]); size = #upper levels + 1.
  std::vector<index_t> upper_level_ptr;
  /// Lower-stage level boundaries relative to n_upper (the trailing levels
  /// that were moved), same layout; may be empty when nothing moved.
  std::vector<index_t> lower_level_ptr;
  /// Resolved lower-stage method (never kAuto).
  LowerMethod method = LowerMethod::kNone;
  /// Pattern the levels were computed on.
  LevelPattern pattern = LevelPattern::kLowerASymmetric;
  /// Thread count the plan targets.
  int threads = 1;

  // --- planning statistics (Tables III/IV) --------------------------------
  index_t total_levels = 0;   ///< levels before the split
  index_t rows_moved = 0;     ///< rows sent to the lower stage ("R-α")
  LevelSets::Stats level_stats;  ///< min/max/median level sizes

  index_t num_upper_levels() const noexcept {
    return static_cast<index_t>(upper_level_ptr.size()) - 1;
  }
  index_t num_lower_rows() const noexcept { return n - n_upper; }
};

/// Build the plan for symbolic factor pattern `s`. Heuristics (paper §III-A):
///   * levels are scanned from the END of the level order; a level is moved
///     to the lower stage while it is "too small" (< min_level_rows rows) or
///     too dense (mean row nnz > density_factor × matrix mean);
///   * the scan never crosses into the leading (1 - relative_location)
///     fraction of levels, so small levels sandwiched between large ones
///     (Fig. 3) stay in the upper stage where point-to-point sync absorbs
///     them;
///   * only whole trailing levels move, which guarantees no upper-stage row
///     ever depends on a lower-stage row.
/// Method resolution for kAuto (paper §III-B): SR when fewer moved rows than
/// threads or when their nonzero counts are highly imbalanced, otherwise ER;
/// lower(A) pattern forces ER (SR needs the A+Aᵀ independence guarantee).
TwoStagePlan build_two_stage_plan(const CsrMatrix& s, const IluOptions& opts);

}  // namespace javelin
