#include <algorithm>
#include <cmath>

#include "javelin/ilu/plan.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin {

const char* lower_method_name(LowerMethod m) {
  switch (m) {
    case LowerMethod::kNone: return "none";
    case LowerMethod::kEvenRows: return "ER";
    case LowerMethod::kSegmentedRows: return "SR";
    case LowerMethod::kAuto: return "auto";
  }
  return "?";
}

TwoStagePlan build_two_stage_plan(const CsrMatrix& s, const IluOptions& opts) {
  JAVELIN_CHECK(s.square(), "planning requires a square matrix");
  TwoStagePlan plan;
  plan.n = s.rows();
  plan.pattern = opts.level_pattern;
  plan.threads = opts.num_threads > 0 ? opts.num_threads : max_threads();

  const LevelSets ls = compute_level_sets(s, opts.level_pattern);
  const index_t nlev = ls.num_levels();
  plan.total_levels = nlev;
  plan.level_stats = ls.stats();

  const index_t min_rows =
      opts.min_level_rows > 0
          ? opts.min_level_rows
          : std::max<index_t>(16, 2 * static_cast<index_t>(plan.threads));
  const double avg_rd = s.row_density();

  // Mean row density per level (for the density rule).
  const auto level_density = [&](index_t l) {
    const auto rows = ls.level_rows(l);
    if (rows.empty()) return 0.0;
    double nnz = 0;
    for (index_t r : rows) nnz += static_cast<double>(s.row_nnz(r));
    return nnz / static_cast<double>(rows.size());
  };

  // Scan trailing levels; moving is only allowed when a lower method exists.
  index_t cutoff = nlev;
  if (opts.lower_method != LowerMethod::kNone && nlev > 1) {
    const index_t earliest = static_cast<index_t>(
        std::ceil(opts.relative_location * static_cast<double>(nlev)));
    while (cutoff > std::max<index_t>(earliest, 1)) {
      const index_t l = cutoff - 1;
      const bool small = ls.level_size(l) < min_rows;
      const bool dense = opts.density_factor > 0 &&
                         level_density(l) > opts.density_factor * avg_rd;
      if (!small && !dense) break;
      --cutoff;
    }
  }

  plan.n_upper = ls.level_ptr[static_cast<std::size_t>(cutoff)];
  plan.rows_moved = plan.n - plan.n_upper;
  plan.perm = ls.rows_by_level;  // level-major order: upper levels then moved

  plan.upper_level_ptr.assign(ls.level_ptr.begin(),
                              ls.level_ptr.begin() + cutoff + 1);
  plan.lower_level_ptr.clear();
  if (cutoff < nlev) {
    for (index_t l = cutoff; l <= nlev; ++l) {
      plan.lower_level_ptr.push_back(ls.level_ptr[static_cast<std::size_t>(l)] -
                                     plan.n_upper);
    }
  }

  // Resolve the method.
  if (plan.rows_moved == 0) {
    plan.method = LowerMethod::kNone;
  } else if (opts.lower_method == LowerMethod::kEvenRows) {
    plan.method = LowerMethod::kEvenRows;
  } else if (opts.lower_method == LowerMethod::kSegmentedRows) {
    JAVELIN_CHECK(opts.level_pattern == LevelPattern::kLowerASymmetric,
                  "SR requires the lower(A+A^T) level pattern (paper §III-B)");
    plan.method = LowerMethod::kSegmentedRows;
  } else {  // kAuto
    if (opts.level_pattern == LevelPattern::kLowerA) {
      plan.method = LowerMethod::kEvenRows;
    } else {
      // Nonzero imbalance among the moved rows (permuted tail).
      index_t max_nnz = 0;
      double sum_nnz = 0;
      for (index_t i = plan.n_upper; i < plan.n; ++i) {
        const index_t nz = s.row_nnz(plan.perm[static_cast<std::size_t>(i)]);
        max_nnz = std::max(max_nnz, nz);
        sum_nnz += static_cast<double>(nz);
      }
      const double mean_nnz =
          sum_nnz / static_cast<double>(std::max<index_t>(1, plan.rows_moved));
      const bool few_rows =
          plan.rows_moved < static_cast<index_t>(plan.threads);
      const bool imbalanced = static_cast<double>(max_nnz) > 4.0 * mean_nnz;
      plan.method = (few_rows || imbalanced) ? LowerMethod::kSegmentedRows
                                             : LowerMethod::kEvenRows;
    }
  }
  return plan;
}

}  // namespace javelin
