// Batched many-RHS solve path — the "millions of users" serving axis
// (ROADMAP item 1). One immutable Factorization is amortized across many
// concurrent right-hand sides two complementary ways:
//
//   * PANEL SWEEPS: k right-hand sides are stored column-major in an n×k
//     panel and swept together under the SAME execution schedules as the
//     scalar solve — each row's L/U entries are loaded once per register
//     block of columns (sparse/panel.hpp) instead of once per RHS,
//     converting the bandwidth-bound scalar sweep into a register-blocked
//     panel kernel. Synchronization (spin-waits or level barriers) is paid
//     once per panel, not once per RHS — exactly the cost the suite-scale
//     bench showed dominating parallel solves.
//
//   * WORKSPACE POOLS: independent serving streams check SolveWorkspaces out
//     of a WorkspacePool and run concurrent ilu_apply/ilu_apply_panel calls
//     against one shared factor (the apply paths are thread-safe across
//     distinct workspaces; the factor is never written after construction).
//
// The standing bitwise guarantee extends to this path: a batched solve of k
// right-hand sides is bitwise equal to k independent scalar solves, at every
// thread count, under both exec backends, fused and unfused — column j's
// accumulation order is the scalar order by construction (test_batch).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/obs/trace.hpp"

namespace javelin {

/// Default panel width of solve_many when IluOptions::batch_rhs <= 0. Eight
/// columns saturate the register block (sparse/panel.hpp), so wider panels
/// only grow the workspace without loading factor entries less often.
inline constexpr index_t kDefaultBatchRhs = 8;

/// The panel width `f` was configured for (its batch_rhs, defaulted).
inline index_t batch_rhs_of(const Factorization& f) noexcept {
  return f.opts.batch_rhs > 0 ? f.opts.batch_rhs : kDefaultBatchRhs;
}

/// Panel preconditioner application Z = (L U)^{-1} R for k right-hand sides
/// stored column-major (R and Z are n×k, column stride n, ORIGINAL row
/// ordering; they must not overlap). Column j is bitwise equal to
/// ilu_apply(f, column j of R, column j of Z, ws) at every thread count and
/// backend. Throws when k < 1 or a span is smaller than n×k. Thread-safe
/// across distinct workspaces.
void ilu_apply_panel(const Factorization& f, std::span<const value_t> r,
                     std::span<value_t> z, index_t k, SolveWorkspace& ws);

/// Serial-reference panel apply used by the property tests.
void ilu_apply_panel_serial(const Factorization& f, std::span<const value_t> r,
                            std::span<value_t> z, index_t k,
                            SolveWorkspace& ws);

/// Fused panel pass: Z = (LU)^{-1} R and T = A Z for k column-major
/// right-hand sides in ONE scheduled pass (the panel analog of
/// ilu_apply_spmv — gather and scatter folded into the sweeps, SpMV chunks
/// streamed behind the backward sweep on the same progress counters).
/// Column j is bitwise equal to the scalar fused pass on column j. Throws
/// when k < 1 or a span is smaller than n×k.
void ilu_apply_spmv_panel(const Factorization& f, const CsrMatrix& a,
                          const FusedApplySpmv& fs, std::span<const value_t> r,
                          std::span<value_t> z, std::span<value_t> t,
                          index_t k, SolveWorkspace& ws);

/// Pool of SolveWorkspaces for concurrent serving streams sharing one
/// factorization. acquire() hands out an exclusive lease (recycling an idle
/// workspace when one exists, allocating otherwise); the lease returns the
/// workspace — with its grown buffers, warm progress counters and retarget
/// cache — on destruction. All methods are thread-safe; the leased
/// workspace itself is exclusively owned until released.
class WorkspacePool {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept
        : pool_(o.pool_), ws_(std::move(o.ws_)), trace_t0_(o.trace_t0_) {
      o.pool_ = nullptr;
      o.trace_t0_ = 0;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        ws_ = std::move(o.ws_);
        trace_t0_ = o.trace_t0_;
        o.pool_ = nullptr;
        o.trace_t0_ = 0;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    SolveWorkspace& operator*() const noexcept { return *ws_; }
    SolveWorkspace* operator->() const noexcept { return ws_.get(); }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<SolveWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {
      // Lease-lifetime tracing: acquire and release may run on different
      // threads (streams hand leases around), so the span is emitted as one
      // complete ('X') event at release instead of a B/E pair.
      if (obs::TraceSession::instance().enabled()) trace_t0_ = obs::now_ns();
    }
    void release() noexcept {
      if (pool_ && ws_) {
        if (trace_t0_ != 0) {
          obs::TraceSession& ts = obs::TraceSession::instance();
          if (ts.enabled()) {
            ts.buffer().complete("lease", trace_t0_,
                                 obs::now_ns() - trace_t0_);
          }
        }
        pool_->put(std::move(ws_));
      }
      pool_ = nullptr;
    }
    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<SolveWorkspace> ws_;
    std::int64_t trace_t0_ = 0;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  Lease acquire();

  /// Workspaces currently sitting idle in the pool (diagnostics).
  std::size_t idle() const;

 private:
  void put(std::unique_ptr<SolveWorkspace> ws);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SolveWorkspace>> free_;
};

/// Batched serving entry point: solve k right-hand sides (column-major n×k
/// panels R → Z, original row ordering) against one factorization, sweeping
/// panels of at most batch_rhs_of(f) columns per scheduled pass. Bitwise
/// equal to k independent ilu_apply calls. Throws when k < 1 or a span is
/// smaller than n×k.
void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k, SolveWorkspace& ws);

/// solve_many over a pooled workspace (the serving-stream form: concurrent
/// callers each check a workspace out of the shared pool).
void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k, WorkspacePool& pool);

/// Convenience overload with a per-call workspace (allocates; prefer the
/// workspace or pool overloads in serving loops).
void solve_many(const Factorization& f, std::span<const value_t> r,
                std::span<value_t> z, index_t k);

}  // namespace javelin
