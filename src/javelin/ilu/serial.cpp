#include "javelin/ilu/serial.hpp"

#include <string>

#include "javelin/ilu/row_kernel.hpp"
#include "javelin/ilu/symbolic.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/support/scan.hpp"

namespace javelin {

void ilu_factor_serial_inplace(CsrMatrix& lu, std::span<const index_t> diag_pos,
                               const IluOptions& opts) {
  const index_t n = lu.rows();
  RowWorkspace ws(n);
  RowKernelParams params{opts.drop_tolerance, opts.modified, opts.pivot_threshold};
  FactorView f{lu.row_ptr(), lu.col_idx(), lu.values_mut(), diag_pos};
  for (index_t r = 0; r < n; ++r) {
    if (!factor_row(f, r, ws, params)) {
      throw Error("zero or near-zero pivot at row " + std::to_string(r) +
                  " (Javelin does not pivot)");
    }
  }
}

SerialFactorResult ilu_factor_serial(const CsrMatrix& a, const IluOptions& opts) {
  SerialFactorResult res;
  res.lu = ilu_symbolic(a, opts.fill_level);
  res.diag_pos = diagonal_positions(res.lu);
  ilu_factor_serial_inplace(res.lu, res.diag_pos, opts);
  return res;
}

SplitFactors split_lu(const CsrMatrix& lu) {
  const index_t n = lu.rows();
  std::vector<index_t> lrp(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> urp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    index_t lc = 1;  // explicit unit diagonal
    index_t uc = 0;
    for (index_t c : lu.row_cols(r)) {
      if (c < r) {
        ++lc;
      } else {
        ++uc;
      }
    }
    lrp[static_cast<std::size_t>(r) + 1] = lc;
    urp[static_cast<std::size_t>(r) + 1] = uc;
  }
  inclusive_scan_inplace(std::span<index_t>(lrp).subspan(1));
  inclusive_scan_inplace(std::span<index_t>(urp).subspan(1));
  std::vector<index_t> lci(static_cast<std::size_t>(lrp.back()));
  std::vector<value_t> lvv(static_cast<std::size_t>(lrp.back()));
  std::vector<index_t> uci(static_cast<std::size_t>(urp.back()));
  std::vector<value_t> uvv(static_cast<std::size_t>(urp.back()));
  for (index_t r = 0; r < n; ++r) {
    index_t lw = lrp[static_cast<std::size_t>(r)];
    index_t uw = urp[static_cast<std::size_t>(r)];
    for (index_t k = lu.row_begin(r); k < lu.row_end(r); ++k) {
      const index_t c = lu.col_idx()[static_cast<std::size_t>(k)];
      const value_t v = lu.values()[static_cast<std::size_t>(k)];
      if (c < r) {
        lci[static_cast<std::size_t>(lw)] = c;
        lvv[static_cast<std::size_t>(lw)] = v;
        ++lw;
      } else {
        uci[static_cast<std::size_t>(uw)] = c;
        uvv[static_cast<std::size_t>(uw)] = v;
        ++uw;
      }
    }
    lci[static_cast<std::size_t>(lw)] = r;
    lvv[static_cast<std::size_t>(lw)] = 1;
  }
  return SplitFactors{
      CsrMatrix(n, n, std::move(lrp), std::move(lci), std::move(lvv)),
      CsrMatrix(n, n, std::move(urp), std::move(uci), std::move(uvv))};
}

}  // namespace javelin
