// Two-stage parallel numeric factorization (paper §III).
//
// Upper stage: up-looking rows under the point-to-point schedule.
// Lower stage: Even-Rows (Fig. 8) or Segmented-Rows (Fig. 6) against the
// finished upper stage, then the shared corner factorization (FACTOR_LU).
// Every path calls the same row kernel, so all execution modes produce
// bitwise-identical factors (asserted by the property tests).
#include <algorithm>
#include <memory>
#include <string>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/fused.hpp"  // completes FusedApplySpmv for the cache
#include "javelin/ilu/row_kernel.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/verify/verify.hpp"

namespace javelin {

namespace {

RowKernelParams kernel_params(const IluOptions& o) {
  return RowKernelParams{o.drop_tolerance, o.modified, o.pivot_threshold};
}

/// Per-thread workspaces, lazily sized.
class WorkspacePool {
 public:
  WorkspacePool(int threads, index_t n) {
    ws_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) ws_.push_back(std::make_unique<RowWorkspace>(n));
  }
  RowWorkspace& get(int t) { return *ws_[static_cast<std::size_t>(t)]; }

 private:
  std::vector<std::unique_ptr<RowWorkspace>> ws_;
};

void throw_pivot(index_t row) {
  throw Error("zero or near-zero pivot at permuted row " + std::to_string(row) +
              " (Javelin does not pivot)");
}

/// Corner factorization (paper: FACTOR_LU): eliminate lower rows against
/// each other, restricted to corner columns [n_upper, row). Serial by
/// default; optionally level-scheduled through the barrier (CSR-LS)
/// execution backend — the corner is small by construction, so per-level
/// barriers beat spin-wait sparsification there. A bad pivot (or a
/// fault-hook veto) aborts the region cooperatively and is reported as a
/// status; nothing throws from inside the parallel region.
FactorStatus factor_corner(Factorization& f, WorkspacePool& pool) {
  const TwoStagePlan& plan = f.plan;
  const RowKernelParams params = kernel_params(f.opts);
  const FaultHook& hook = f.opts.fault_hook;
  FactorView fv{f.lu.row_ptr(), f.lu.col_idx(), f.lu.values_mut(), f.diag_pos};
  if (!f.opts.parallel_corner || plan.num_lower_rows() < 2 * plan.threads ||
      f.corner.num_levels == 0) {
    RowWorkspace& ws = pool.get(0);
    for (index_t r = plan.n_upper; r < plan.n; ++r) {
      mark_row(fv, r, ws);
      eliminate_window(fv, r, plan.n_upper, r, ws, params);
      if (!finish_row(fv, r, params) ||
          (hook && !hook(FaultSite::kFactorRow, r))) {
        return {FactorOutcome::kBadPivot, r};
      }
    }
    return {};
  }
  // Guarded (bool-returning) row function: exec_run drains the barrier
  // level-set cooperatively on the first failing row, and because no thread
  // passes a level whose barrier never completed, the reported row stays in
  // the FIRST failing level instead of a downstream inf/NaN cascade row.
  const auto corner_row = [&](index_t local, int t) -> bool {
    const index_t r = plan.n_upper + local;
    RowWorkspace& ws = pool.get(t);
    mark_row(fv, r, ws);
    eliminate_window(fv, r, plan.n_upper, r, ws, params);
    if (!finish_row(fv, r, params)) return false;
    return !hook || hook(FaultSite::kFactorRow, r);
  };
  ExecStatus st;
  if (f.opts.exec_obs != nullptr && !hook) {
    ProgressCounters progress;
    st = exec_run_obs(f.corner, corner_row, progress, *f.opts.exec_obs,
                      obs::Region::kCorner);
  } else {
    st = exec_run(f.corner, corner_row);
  }
  if (!st.ok()) {
    return {FactorOutcome::kBadPivot, plan.n_upper + st.row};
  }
  return {};
}

/// Even-Rows phase one (paper Fig. 8 FACTOR_L): every lower row eliminates
/// its upper-stage columns; rows are independent because their mutual
/// coupling lives entirely in the corner.
void lower_even_rows(Factorization& f, WorkspacePool& pool) {
  const TwoStagePlan& plan = f.plan;
  const RowKernelParams params = kernel_params(f.opts);
  FactorView fv{f.lu.row_ptr(), f.lu.col_idx(), f.lu.values_mut(), f.diag_pos};
#pragma omp parallel num_threads(plan.threads)
  {
    RowWorkspace& ws = pool.get(thread_id());
#pragma omp for schedule(dynamic, 1)
    for (index_t r = plan.n_upper; r < plan.n; ++r) {
      mark_row(fv, r, ws);
      eliminate_window(fv, r, 0, plan.n_upper, ws, params);
    }
  }
}

/// Segmented-Rows (paper Fig. 6): per upper level, spawn tile tasks that
/// divide by the pivot column and apply the U-row updates (DIVIDE_COLUMNS +
/// UPDATE_BLOCK fused per entry — equivalent because same-level columns are
/// decoupled under the lower(A+Aᵀ) ordering). taskwait separates levels.
void lower_segmented_rows(Factorization& f, WorkspacePool& pool) {
  const TwoStagePlan& plan = f.plan;
  const RowKernelParams params = kernel_params(f.opts);
  FactorView fv{f.lu.row_ptr(), f.lu.col_idx(), f.lu.values_mut(), f.diag_pos};
  const SrTiling& sr = f.sr;
#pragma omp parallel num_threads(plan.threads)
#pragma omp single
  {
    for (std::size_t l = 0; l + 1 < sr.level_task_ptr.size(); ++l) {
      const index_t kb = sr.level_task_ptr[l];
      const index_t ke = sr.level_task_ptr[l + 1];
      if (kb == ke) continue;
      for (index_t k = kb; k < ke; ++k) {
        // One task per coalesced tile group (~tile_nnz nonzeros of work).
#pragma omp task firstprivate(k) shared(sr, fv, pool, params)
        {
          const index_t tb = sr.task_tile_ptr[static_cast<std::size_t>(k)];
          const index_t te = sr.task_tile_ptr[static_cast<std::size_t>(k) + 1];
          RowWorkspace& ws = pool.get(thread_id());
          for (index_t ti = tb; ti < te; ++ti) {
            const SrTile& tile = sr.tiles[static_cast<std::size_t>(ti)];
            mark_row(fv, tile.row, ws);
            eliminate_nz_range(fv, tile.row, tile.nz_begin, tile.nz_end, ws,
                               params);
          }
        }
      }
#pragma omp taskwait
    }
  }
}

}  // namespace

SrTiling build_sr_tiling(const CsrMatrix& lu, const TwoStagePlan& plan,
                         index_t tile_nnz) {
  SrTiling sr;
  const index_t nlev = plan.num_upper_levels();
  sr.tile_ptr.assign(static_cast<std::size_t>(nlev) + 1, 0);
  if (plan.num_lower_rows() == 0 || nlev == 0) return sr;

  // Per lower row, split its upper-column nonzeros at level boundaries.
  // Levels are contiguous column ranges [ulp[l], ulp[l+1]) after the plan
  // permutation, so a binary search per boundary suffices.
  std::vector<std::vector<SrTile>> by_level(static_cast<std::size_t>(nlev));
  const auto& ulp = plan.upper_level_ptr;
  for (index_t r = plan.n_upper; r < plan.n; ++r) {
    auto cols = lu.row_cols(r);
    const index_t base = lu.row_begin(r);
    std::size_t k = 0;
    while (k < cols.size() && cols[k] < plan.n_upper) {
      // Level of this column.
      const auto it = std::upper_bound(ulp.begin(), ulp.end(), cols[k]);
      const index_t lev = static_cast<index_t>(it - ulp.begin()) - 1;
      const index_t level_end_col = ulp[static_cast<std::size_t>(lev) + 1];
      std::size_t k2 = k;
      while (k2 < cols.size() && cols[k2] < level_end_col) ++k2;
      by_level[static_cast<std::size_t>(lev)].push_back(
          SrTile{r, base + static_cast<index_t>(k),
                 base + static_cast<index_t>(k2)});
      k = k2;
    }
  }
  // Emit tiles level-major. A tile is one row-level segment; a segment never
  // splits across tiles (updates stay row-owned and race-free).
  for (index_t l = 0; l < nlev; ++l) {
    auto& segs = by_level[static_cast<std::size_t>(l)];
    for (const SrTile& t : segs) sr.tiles.push_back(t);
    sr.tile_ptr[static_cast<std::size_t>(l) + 1] =
        static_cast<index_t>(sr.tiles.size());
  }
  for (index_t l = 0; l < nlev; ++l) {
    if (sr.tile_ptr[static_cast<std::size_t>(l) + 1] >
        sr.tile_ptr[static_cast<std::size_t>(l)]) {
      ++sr.active_levels;
    }
  }
  // Coalesce adjacent small same-level tiles into tasks of up to tile_nnz
  // nonzeros: one OpenMP task then amortizes its spawn/steal overhead over
  // several tiny segments (the dominant cost the paper measured with VTune
  // in §V on many-small-level matrices). A task never crosses a level
  // boundary, and a tile larger than tile_nnz still forms its own task.
  const index_t cap = std::max<index_t>(1, tile_nnz);
  sr.level_task_ptr.assign(static_cast<std::size_t>(nlev) + 1, 0);
  sr.task_tile_ptr.push_back(0);
  for (index_t l = 0; l < nlev; ++l) {
    index_t t = sr.tile_ptr[static_cast<std::size_t>(l)];
    const index_t te = sr.tile_ptr[static_cast<std::size_t>(l) + 1];
    while (t < te) {
      const auto tile_size = [&](index_t i) {
        const SrTile& tl = sr.tiles[static_cast<std::size_t>(i)];
        return tl.nz_end - tl.nz_begin;
      };
      index_t acc = tile_size(t);
      index_t t2 = t + 1;
      // Never grow past cap by merging: an oversized tile always stands
      // alone, and a near-full task does not absorb a large neighbour.
      while (t2 < te && acc + tile_size(t2) <= cap) acc += tile_size(t2++);
      sr.task_tile_ptr.push_back(t2);
      t = t2;
    }
    sr.level_task_ptr[static_cast<std::size_t>(l) + 1] =
        static_cast<index_t>(sr.task_tile_ptr.size()) - 1;
  }
  return sr;
}

void scatter_values_searched(Factorization& f, const CsrMatrix& a) {
  // Values travel: a (preordered) -> symbolic pattern -> plan permutation.
  // The factor rows are plan.perm[r] of the symbolic pattern, whose columns
  // map through the inverse permutation; we reuse the stored column indices
  // and only refresh values, walking a's rows in permuted order.
  const index_t n = f.n();
  const auto& perm = f.plan.perm;
  const std::vector<index_t> inv = invert_permutation(perm);
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t r = 0; r < n; ++r) {
    const index_t old_r = perm[static_cast<std::size_t>(r)];
    auto vals = f.lu.row_vals_mut(r);
    auto cols = f.lu.row_cols(r);
    // Zero (fill positions) then scatter a's row via the permuted columns.
    for (auto& v : vals) v = 0;
    for (index_t k = a.row_begin(old_r); k < a.row_end(old_r); ++k) {
      const index_t new_c =
          inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])];
      const auto it = std::lower_bound(cols.begin(), cols.end(), new_c);
      if (it != cols.end() && *it == new_c) {
        vals[static_cast<std::size_t>(it - cols.begin())] =
            a.values()[static_cast<std::size_t>(k)];
      }
    }
  }
}

void build_scatter_map(Factorization& f, const CsrMatrix& a) {
  // Same index chase as scatter_values_searched, performed ONCE: record
  // where each a-nonzero lands. Walking a's rows in permuted order touches
  // every original row exactly once, so writes to a_scatter never race.
  const index_t n = f.n();
  const auto& perm = f.plan.perm;
  const std::vector<index_t> inv = invert_permutation(perm);
  f.a_scatter.assign(static_cast<std::size_t>(a.nnz()), kInvalidIndex);
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t r = 0; r < n; ++r) {
    const index_t old_r = perm[static_cast<std::size_t>(r)];
    auto cols = f.lu.row_cols(r);
    const index_t base = f.lu.row_begin(r);
    for (index_t k = a.row_begin(old_r); k < a.row_end(old_r); ++k) {
      const index_t new_c =
          inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])];
      const auto it = std::lower_bound(cols.begin(), cols.end(), new_c);
      if (it != cols.end() && *it == new_c) {
        f.a_scatter[static_cast<std::size_t>(k)] =
            base + static_cast<index_t>(it - cols.begin());
      }
    }
  }
}

void scatter_values(Factorization& f, const CsrMatrix& a) {
  if (f.a_scatter.size() != static_cast<std::size_t>(a.nnz())) {
    build_scatter_map(f, a);
  }
#ifndef NDEBUG
  // The nnz test above cannot see a pattern change with equal nnz (the
  // documented ilu_refactor precondition). Debug builds re-derive the map
  // and compare, catching a mismatched matrix before it corrupts the factor.
  {
    std::vector<index_t> saved = std::move(f.a_scatter);
    build_scatter_map(f, a);
    JAVELIN_CHECK(saved == f.a_scatter,
                  "scatter_values: matrix pattern differs from the factored "
                  "pattern the scatter map was built for");
  }
#endif
  // Flat O(nnz) refresh: zero everything (fill positions), then copy each
  // a-nonzero straight to its precomputed slot. Distinct slots — race-free.
  auto lv = f.lu.values_mut();
  const auto av = a.values();
  const auto& map = f.a_scatter;
  const std::ptrdiff_t lu_nnz = static_cast<std::ptrdiff_t>(lv.size());
  const std::ptrdiff_t a_nnz = static_cast<std::ptrdiff_t>(av.size());
#pragma omp parallel
  {
#pragma omp for schedule(static)
    for (std::ptrdiff_t k = 0; k < lu_nnz; ++k) {
      lv[static_cast<std::size_t>(k)] = 0;
    }
    // (implicit barrier: all zeroing precedes all scattering)
#pragma omp for schedule(static)
    for (std::ptrdiff_t k = 0; k < a_nnz; ++k) {
      const index_t p = map[static_cast<std::size_t>(k)];
      if (p != kInvalidIndex) {
        lv[static_cast<std::size_t>(p)] = av[static_cast<std::size_t>(k)];
      }
    }
  }
}

FactorStatus ilu_factor_numeric_status(Factorization& f) {
  const TwoStagePlan& plan = f.plan;
  WorkspacePool pool(plan.threads, f.n());
  const RowKernelParams params = kernel_params(f.opts);
  const FaultHook& hook = f.opts.fault_hook;
  FactorView fv{f.lu.row_ptr(), f.lu.col_idx(), f.lu.values_mut(), f.diag_pos};

  // Upper stage: level-scheduled up-looking rows under the factor's
  // execution backend. A refactorization team dialed below the plan
  // (omp_set_num_threads after factoring — the time-stepping use case)
  // retargets the schedule through the factor's own cache instead of
  // degrading to the serial order. The one-shot factor phase deliberately
  // skips the oversubscription clamp: the plan width was an explicit
  // request, and the numeric phase runs once, not thousands of times.
  const int team = std::max(1, std::min(plan.threads, max_threads()));
  const ExecSchedule* fwd = &f.fwd;
  if (team != f.fwd.threads) {
    if (f.numeric_cache.threads != team) {
      f.numeric_cache.fwd = retarget(f.fwd, lower_triangular_deps(f.lu), team);
      f.numeric_cache.bwd = ExecSchedule{};  // numeric phase never sweeps bwd
      f.numeric_cache.fused.reset();
      f.numeric_cache.threads = team;
      if (f.opts.verify_schedules) {
        verify::verify_schedule_or_throw(f.numeric_cache.fwd,
                                         lower_triangular_deps(f.lu),
                                         "numeric fwd retarget");
      }
    }
    fwd = &f.numeric_cache.fwd;
  }
  // Guarded row function: a failed pivot poisons the region, peers drain
  // out of their spin-waits, and the first failing row comes back in the
  // ExecStatus — no exception ever crosses the parallel region.
  const auto numeric_row = [&](index_t r, int t) -> bool {
    RowWorkspace& ws = pool.get(t);
    if (!factor_row(fv, r, ws, params)) return false;
    return !hook || hook(FaultSite::kFactorRow, r);
  };
  ExecStatus st;
  if (f.opts.exec_obs != nullptr && !hook) {
    ProgressCounters progress;
    st = exec_run_obs(*fwd, numeric_row, progress, *f.opts.exec_obs,
                      obs::Region::kFactor);
  } else {
    st = exec_run(*fwd, numeric_row);
  }
  if (!st.ok()) return {FactorOutcome::kBadPivot, st.row};

  // Lower stage. The ER/SR passes only divide by already-validated upper
  // pivots, so they cannot break down; the corner can.
  switch (plan.method) {
    case LowerMethod::kNone:
      return {};
    case LowerMethod::kEvenRows:
      lower_even_rows(f, pool);
      return factor_corner(f, pool);
    case LowerMethod::kSegmentedRows:
      lower_segmented_rows(f, pool);
      return factor_corner(f, pool);
    case LowerMethod::kAuto:
      throw Error("plan method must be resolved before the numeric phase");
  }
  return {};
}

void ilu_factor_numeric(Factorization& f) {
  const FactorStatus st = ilu_factor_numeric_status(f);
  if (!st.ok()) throw_pivot(st.row);
}

Factorization ilu_prepare(const CsrMatrix& a, const IluOptions& opts) {
  JAVELIN_CHECK(a.square(), "ILU requires a square matrix");
  Factorization f;
  f.opts = opts;

  CsrMatrix s = ilu_symbolic(a, opts.fill_level, &f.symbolic);
  f.plan = build_two_stage_plan(s, opts);
  f.lu = permute_symmetric(s, f.plan.perm);
  f.diag_pos = diagonal_positions(f.lu);
  // Plan-time scatter map: every ilu_refactor becomes a flat O(nnz) copy.
  build_scatter_map(f, a);

  const index_t chunk =
      opts.p2p_chunk_rows > 0 ? opts.p2p_chunk_rows : kDefaultChunkRows;
  f.fwd = build_upper_forward_schedule(f.lu, f.plan.upper_level_ptr,
                                       opts.exec_backend, f.plan.threads,
                                       chunk);
  f.bwd = build_backward_schedule(f.lu, opts.exec_backend, f.plan.threads,
                                  chunk);
  // Spin-wait escalation budget: carried by the schedules (retarget
  // preserves it) so every executor branch sees the configured ladder.
  f.fwd.spin_budget = opts.spin_max_pauses;
  f.bwd.spin_budget = opts.spin_max_pauses;
  if (opts.verify_schedules) {
    verify::verify_schedule_or_throw(f.fwd, lower_triangular_deps(f.lu),
                                     "fwd");
    verify::verify_schedule_or_throw(f.bwd, upper_triangular_deps(f.lu),
                                     "bwd");
  }
  if (f.plan.method == LowerMethod::kSegmentedRows) {
    f.sr = build_sr_tiling(f.lu, f.plan, opts.sr_tile_nnz);
  }
  if (opts.parallel_corner && f.plan.num_lower_rows() > 0) {
    // Barrier level-set schedule over the corner block pattern (lower rows,
    // corner columns), in LOCAL indices [0, n_lower).
    const index_t n_lower = f.plan.num_lower_rows();
    std::vector<index_t> rp(static_cast<std::size_t>(n_lower) + 1, 0);
    std::vector<index_t> ci;
    for (index_t i = 0; i < n_lower; ++i) {
      const index_t r = f.plan.n_upper + i;
      for (index_t c : f.lu.row_cols(r)) {
        if (c >= f.plan.n_upper && c <= r) ci.push_back(c - f.plan.n_upper);
      }
      rp[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(ci.size());
    }
    std::vector<value_t> vv(ci.size(), 1.0);
    const CsrMatrix corner_pat(n_lower, n_lower, std::move(rp), std::move(ci),
                               std::move(vv));
    const LevelSets cls = compute_level_sets_lower(corner_pat);
    f.corner = build_exec_schedule(ExecBackend::kBarrier, n_lower,
                                   cls.level_ptr, cls.rows_by_level,
                                   lower_triangular_deps(corner_pat),
                                   f.plan.threads, chunk);
    f.corner.spin_budget = opts.spin_max_pauses;
    // Verified here, while corner_pat (the dependency pattern) is alive.
    if (opts.verify_schedules) {
      verify::verify_schedule_or_throw(
          f.corner, lower_triangular_deps(corner_pat), "corner");
    }
  }

  return f;
}

Factorization ilu_factor(const CsrMatrix& a, const IluOptions& opts) {
  Factorization f = ilu_prepare(a, opts);
  ilu_factor_numeric(f);
  return f;
}

void ilu_refactor(Factorization& f, const CsrMatrix& a) {
  const FactorStatus st = ilu_refactor_status(f, a);
  if (!st.ok()) throw_pivot(st.row);
}

FactorStatus ilu_refactor_status(Factorization& f, const CsrMatrix& a) {
  JAVELIN_CHECK(a.rows() == f.n() && a.cols() == f.n(),
                "refactor dimension mismatch");
  scatter_values(f, a);
  return ilu_factor_numeric_status(f);
}

}  // namespace javelin
