// Serial up-looking incomplete factorization — the reference implementation
// every parallel path is validated against (they share the row kernel, so
// results are bitwise identical).
#pragma once

#include <vector>

#include "javelin/ilu/options.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

/// In-place numeric ILU on a matrix that already carries the target pattern
/// (output of ilu_symbolic) with A's values scattered on. After the call,
/// `lu` stores L (unit diagonal implicit, strictly-lower entries are the
/// multipliers) and U (diagonal + strictly-upper) in one CSR.
/// `diag_pos` must come from diagonal_positions(lu).
/// Throws Error on a zero/tiny pivot (row index in the message).
void ilu_factor_serial_inplace(CsrMatrix& lu, std::span<const index_t> diag_pos,
                               const IluOptions& opts);

/// Convenience: symbolic + copy + serial numeric in one call.
struct SerialFactorResult {
  CsrMatrix lu;
  std::vector<index_t> diag_pos;
};
SerialFactorResult ilu_factor_serial(const CsrMatrix& a, const IluOptions& opts);

/// Split a combined LU into explicit L (unit diagonal stored) and U factors;
/// used by tests and by consumers that want standalone triangles.
struct SplitFactors {
  CsrMatrix l;
  CsrMatrix u;
};
SplitFactors split_lu(const CsrMatrix& lu);

}  // namespace javelin
