#include "javelin/ilu/fused.hpp"

#include <algorithm>

#include "javelin/exec/run.hpp"
#include "javelin/ilu/forward_sweep.hpp"
#include "javelin/ilu/trsv_kernels.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin {

using detail::backward_row;
using detail::lower_partial;
using detail::spmv_row;

FusedApplySpmv build_fused_apply_spmv(const ExecSchedule& bwd,
                                      const TwoStagePlan& plan,
                                      const CsrMatrix& a, index_t chunk_rows,
                                      const ExecSchedule* fwd) {
  JAVELIN_CHECK(a.rows() == plan.n && a.cols() == plan.n,
                "fused apply+spmv requires A with the factor's dimension");
  FusedApplySpmv fs;
  const int T = bwd.threads;
  fs.threads = T;
  fs.n = plan.n;
  fs.chunk_rows = std::max<index_t>(1, chunk_rows);
  fs.thread_ptr.assign(static_cast<std::size_t>(std::max(T, 1)) + 1, 0);
  if (T <= 1) return fs;  // the serial path never consults the chunks

  // Producer lookup: which backward item finishes each permuted row.
  std::vector<index_t> owner, item_of;
  bwd.producer_positions(owner, item_of);
  // Column c of A is finished by permuted row to_perm[c] of the backward
  // sweep (to_perm inverts the plan's new-to-old permutation).
  const std::vector<index_t> to_perm = invert_permutation(plan.perm);

  // nnz-balanced thread ranges, blocked into chunks. The chunk is the wait
  // granule: one merged wait list amortized over chunk_rows rows.
  const index_t chunk = fs.chunk_rows;
  const RowPartition part = RowPartition::build(a, T);
  for (int t = 0; t < T; ++t) {
    const index_t lo = part.bounds[static_cast<std::size_t>(t)];
    const index_t hi = part.bounds[static_cast<std::size_t>(t) + 1];
    for (index_t b = lo; b < hi; b += chunk) {
      fs.chunk_begin.push_back(b);
      fs.chunk_end.push_back(std::min<index_t>(b + chunk, hi));
    }
    fs.thread_ptr[static_cast<std::size_t>(t) + 1] =
        static_cast<index_t>(fs.chunk_begin.size());
  }
  // Sparsified waits via the shared schedule-builder machinery. The consumer
  // thread has already performed every wait of its OWN backward items before
  // it reaches the SpMV phase (program order), so those high-water marks
  // seed the pruning.
  build_sparsified_waits(
      T, fs.thread_ptr,
      /*seed=*/
      [&bwd](int t, std::span<index_t> last_wait) {
        for (index_t i = bwd.thread_ptr[static_cast<std::size_t>(t)];
             i < bwd.thread_ptr[static_cast<std::size_t>(t) + 1]; ++i) {
          for (index_t w = bwd.wait_ptr[static_cast<std::size_t>(i)];
               w < bwd.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
            index_t& lw = last_wait[static_cast<std::size_t>(
                bwd.wait_thread[static_cast<std::size_t>(w)])];
            lw = std::max(lw, bwd.wait_count[static_cast<std::size_t>(w)]);
          }
        }
      },
      [&](int t, index_t c,
          const std::function<void(index_t, index_t)>& yield) {
        for (index_t r = fs.chunk_begin[static_cast<std::size_t>(c)];
             r < fs.chunk_end[static_cast<std::size_t>(c)]; ++r) {
          for (index_t col : a.row_cols(r)) {
            const index_t pr = to_perm[static_cast<std::size_t>(col)];
            const index_t ot = owner[static_cast<std::size_t>(pr)];
            JAVELIN_CHECK(ot != kInvalidIndex,
                          "backward schedule does not cover every row");
            if (ot == static_cast<index_t>(t)) continue;
            yield(ot, item_of[static_cast<std::size_t>(pr)] + 1);
          }
        }
      },
      fs.wait_ptr, fs.wait_thread, fs.wait_count, fs.deps_total,
      fs.deps_kept);

  // Backward-on-forward waits for the single-region pass: backward item i
  // may run once the forward items producing its rows' forward values have
  // published (on the forward counter bank). Only meaningful when the
  // forward schedule covers every row (no lower stage) and shares the team.
  if (fwd != nullptr && fwd->threads == T && plan.num_lower_rows() == 0) {
    std::vector<index_t> fowner, fitem;
    fwd->producer_positions(fowner, fitem);
    build_sparsified_waits(
        T, bwd.thread_ptr,
        // Program order: before its first backward item, thread t already
        // performed every wait of its OWN forward items.
        [fwd](int t, std::span<index_t> last_wait) {
          for (index_t i = fwd->thread_ptr[static_cast<std::size_t>(t)];
               i < fwd->thread_ptr[static_cast<std::size_t>(t) + 1]; ++i) {
            for (index_t w = fwd->wait_ptr[static_cast<std::size_t>(i)];
                 w < fwd->wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
              index_t& lw = last_wait[static_cast<std::size_t>(
                  fwd->wait_thread[static_cast<std::size_t>(w)])];
              lw = std::max(lw, fwd->wait_count[static_cast<std::size_t>(w)]);
            }
          }
        },
        [&](int t, index_t i,
            const std::function<void(index_t, index_t)>& yield) {
          for (index_t k = bwd.item_ptr[static_cast<std::size_t>(i)];
               k < bwd.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
            const index_t r = bwd.rows[static_cast<std::size_t>(k)];
            const index_t ot = fowner[static_cast<std::size_t>(r)];
            JAVELIN_CHECK(ot != kInvalidIndex,
                          "forward schedule does not cover every row");
            if (ot == static_cast<index_t>(t)) continue;
            yield(ot, fitem[static_cast<std::size_t>(r)] + 1);
          }
        },
        fs.fwd_wait_ptr, fs.fwd_wait_thread, fs.fwd_wait_count,
        fs.fwd_deps_total, fs.fwd_deps_kept);
    fs.fwd_synced = true;
  }
  return fs;
}

FusedApplySpmv build_fused_apply_spmv(const Factorization& f,
                                      const CsrMatrix& a, index_t chunk_rows) {
  return build_fused_apply_spmv(f.bwd, f.plan, a, chunk_rows, &f.fwd);
}

namespace {

/// Forward sweep with the rhs gather folded into each row: on exit
/// L x = P r, without the separate permute-in pass. The shared forward_sweep
/// makes this bitwise-identical to trsv_forward on a pre-gathered x by
/// construction.
ExecStatus fused_forward(const Factorization& f, std::span<const value_t> rv,
                         std::span<value_t> x, SolveWorkspace& ws) {
  const auto& perm = f.plan.perm;
  return detail::forward_sweep(
      f,
      [&rv, &perm](index_t r) {
        return rv[static_cast<std::size_t>(perm[static_cast<std::size_t>(r)])];
      },
      x, ws);
}

/// Straight-line backward sweep (scatter folded in) followed by the full
/// SpMV — the single-thread execution of the fused pass (a schedule
/// retargeted to T = 1) and the last-resort path when a parallel region
/// delivers a short team. One implementation so the zero-synchronization
/// paths cannot drift apart.
ExecStatus serial_backward_spmv(const Factorization& f, const CsrMatrix& a,
                                std::span<value_t> x, std::span<value_t> z,
                                std::span<value_t> t) {
  const auto& perm = f.plan.perm;
  const FaultHook& hook = f.opts.fault_hook;
  for (index_t row : f.bwd.serial_order) {
    backward_row(f.lu, f.diag_pos, row, x);
    z[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] =
        x[static_cast<std::size_t>(row)];
    if (hook && !hook(FaultSite::kBackwardRow, row)) {
      return {ExecOutcome::kAborted, row};
    }
  }
  for (index_t row = 0; row < a.rows(); ++row) {
    t[static_cast<std::size_t>(row)] = spmv_row(a, row, z);
  }
  return {};
}

[[noreturn]] void throw_fused_abort(index_t row) {
  throw AbortError("fused apply+spmv aborted at permuted row " +
                   std::to_string(row) + " (fault injection)");
}

}  // namespace

FusedRuntime runtime_fused_schedule(const Factorization& f, const CsrMatrix& a,
                                    const FusedApplySpmv& fs,
                                    SolveWorkspace& ws) {
  JAVELIN_CHECK(fs.n == f.n() && fs.threads == f.bwd.threads,
                "fused schedule does not match this factorization");
  // Runtime team selection: re-plan the backward schedule AND the SpMV
  // chunk structure when the team differs from the factor-time plan
  // (replaces the old oversubscription→serial policy — a mismatched team
  // retargets; only T = 1 runs the straight-line sweep, as its own plan).
  FusedRuntime rt;
  rt.bwd = &f.bwd;
  rt.chunks = &fs;
  const int team = runtime_team(f);
  if (team <= 1 || f.bwd.threads <= 1) {
    rt.team = 1;
    return rt;
  }
  rt.team = team;
  if (team != f.bwd.threads) {
    (void)runtime_bwd(f, ws.sched);  // fills ws.sched (fwd AND bwd) for `team`
    // The chunk wait lists depend on A's column structure, so the cache is
    // keyed on the matrix as well as the team — address, nnz and column
    // array together, so a recycled allocation cannot alias a different
    // matrix into a stale chunk structure.
    if (!ws.sched.fused || ws.sched.fused->threads != team ||
        ws.sched.fused_matrix != &a || ws.sched.fused_nnz != a.nnz() ||
        ws.sched.fused_cols != a.col_idx().data() ||
        ws.sched.fused->chunk_rows != fs.chunk_rows ||
        ws.sched.fused->fwd_synced != fs.fwd_synced) {
      ws.sched.fused = std::make_unique<FusedApplySpmv>(build_fused_apply_spmv(
          ws.sched.bwd, f.plan, a, fs.chunk_rows,
          fs.fwd_synced ? &ws.sched.fwd : nullptr));
      ws.sched.fused_matrix = &a;
      ws.sched.fused_cols = a.col_idx().data();
      ws.sched.fused_nnz = a.nnz();
    }
    rt.bwd = &ws.sched.bwd;
    rt.chunks = ws.sched.fused.get();
    rt.fwd = &ws.sched.fwd;
  } else {
    rt.fwd = f.fwd.threads == team ? &f.fwd : nullptr;
  }
  return rt;
}

void ilu_apply_spmv(const Factorization& f, const CsrMatrix& a,
                    const FusedApplySpmv& fs, std::span<const value_t> r,
                    std::span<value_t> z, std::span<value_t> t,
                    SolveWorkspace& ws) {
  const index_t n = f.n();
  ws.resize(n, f.plan.num_lower_rows());
  const auto& perm = f.plan.perm;
  const CsrMatrix& lu = f.lu;
  std::span<value_t> x(ws.x);

  const FusedRuntime rt = runtime_fused_schedule(f, a, fs, ws);
  const ExecSchedule* s = rt.bwd;
  const FusedApplySpmv* chunks = rt.chunks;
  const int team = rt.team;
  const FaultHook& hook = f.opts.fault_hook;
  if (team <= 1) {
    // Single-thread team: gather+forward, backward+scatter and the SpMV as
    // straight-line sweeps with zero synchronization — no point building
    // schedules this path never reads. Same accumulation orders —
    // bitwise-identical to the scheduled path.
    for (index_t row = 0; row < n; ++row) {
      x[static_cast<std::size_t>(row)] =
          r[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] -
          lower_partial(lu, row, n, x, 0);
      if (hook && !hook(FaultSite::kForwardRow, row)) throw_fused_abort(row);
    }
    const ExecStatus bst = serial_backward_spmv(f, a, x, z, t);
    if (!bst.ok()) throw_fused_abort(bst.row);
    return;
  }

  // Single-region fast path: forward sweep, backward sweep AND SpMV in ONE
  // parallel region. Eligible when the plan has no lower stage (the forward
  // schedule covers every row, no tail/corner phases), both sweeps run
  // uniform P2P, and the pass is unguarded/uninstrumented. The forward
  // items publish on a second counter bank (ws.progress_fwd); each backward
  // item first waits for the forward items producing its rows' forward
  // values (chunks->fwd_wait_*), then for its backward producers, and
  // solves OUT OF PLACE into ws.xb so late forward rows on other threads
  // never observe a clobbered x. Same kernels, same accumulation orders —
  // bitwise equal to the two-phase pass.
  const ExecSchedule* fsched = rt.fwd;
  if (chunks->fwd_synced && !hook && f.opts.exec_obs == nullptr &&
      fsched != nullptr && fsched->threads == s->threads &&
      f.plan.num_lower_rows() == 0 && s->backend == ExecBackend::kP2P &&
      !s->hybrid() && fsched->backend == ExecBackend::kP2P &&
      !fsched->hybrid()) {
    ProgressCounters& fprog = ws.progress_fwd;
    ProgressCounters& bprog = ws.progress;
    if (fprog.num_threads() < s->threads) {
      fprog.reset(s->threads);
    } else {
      fprog.rearm();
    }
    if (bprog.num_threads() < s->threads) {
      bprog.reset(s->threads);
    } else {
      bprog.rearm();
    }
    if (ws.xb.size() < static_cast<std::size_t>(n)) {
      ws.xb.resize(static_cast<std::size_t>(n));
    }
    std::span<value_t> xb(ws.xb);
    bool merged_fallback = false;
#pragma omp parallel num_threads(s->threads)
    {
      if (team_size() < s->threads) {
        if (thread_id() == 0) merged_fallback = true;  // sole writer
      } else {
        const int tid = thread_id();
        const int spin_budget =
            s->spin_budget > 0 ? s->spin_budget : spin_budget_for(s->threads);
        // Phase 1: forward items (rhs gather folded in, as fused_forward).
        index_t fdone = 0;
        for (index_t i = fsched->thread_ptr[static_cast<std::size_t>(tid)];
             i < fsched->thread_ptr[static_cast<std::size_t>(tid) + 1]; ++i) {
          for (index_t w = fsched->wait_ptr[static_cast<std::size_t>(i)];
               w < fsched->wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
            (void)fprog.wait_for(
                static_cast<int>(
                    fsched->wait_thread[static_cast<std::size_t>(w)]),
                fsched->wait_count[static_cast<std::size_t>(w)], spin_budget,
                nullptr);
          }
          for (index_t k = fsched->item_ptr[static_cast<std::size_t>(i)];
               k < fsched->item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
            const index_t row = fsched->rows[static_cast<std::size_t>(k)];
            x[static_cast<std::size_t>(row)] =
                r[static_cast<std::size_t>(
                    perm[static_cast<std::size_t>(row)])] -
                lower_partial(lu, row, row, x, 0);
          }
          ++fdone;
          fprog.publish(tid, fdone);
        }
        // Phase 2: backward items, gated on the forward bank then their own.
        index_t done = 0;
        for (index_t i = s->thread_ptr[static_cast<std::size_t>(tid)];
             i < s->thread_ptr[static_cast<std::size_t>(tid) + 1]; ++i) {
          for (index_t w = chunks->fwd_wait_ptr[static_cast<std::size_t>(i)];
               w < chunks->fwd_wait_ptr[static_cast<std::size_t>(i) + 1];
               ++w) {
            (void)fprog.wait_for(
                static_cast<int>(
                    chunks->fwd_wait_thread[static_cast<std::size_t>(w)]),
                chunks->fwd_wait_count[static_cast<std::size_t>(w)],
                spin_budget, nullptr);
          }
          for (index_t w = s->wait_ptr[static_cast<std::size_t>(i)];
               w < s->wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
            (void)bprog.wait_for(
                static_cast<int>(
                    s->wait_thread[static_cast<std::size_t>(w)]),
                s->wait_count[static_cast<std::size_t>(w)], spin_budget,
                nullptr);
          }
          for (index_t k = s->item_ptr[static_cast<std::size_t>(i)];
               k < s->item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
            const index_t row = s->rows[static_cast<std::size_t>(k)];
            detail::backward_row_into(lu, f.diag_pos, row, x, xb);
            z[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] =
                xb[static_cast<std::size_t>(row)];
          }
          ++done;
          bprog.publish(tid, done);
        }
        // Phase 3: SpMV chunks behind the backward sweep (existing waits).
        for (index_t c = chunks->thread_ptr[static_cast<std::size_t>(tid)];
             c < chunks->thread_ptr[static_cast<std::size_t>(tid) + 1]; ++c) {
          for (index_t w = chunks->wait_ptr[static_cast<std::size_t>(c)];
               w < chunks->wait_ptr[static_cast<std::size_t>(c) + 1]; ++w) {
            (void)bprog.wait_for(
                static_cast<int>(
                    chunks->wait_thread[static_cast<std::size_t>(w)]),
                chunks->wait_count[static_cast<std::size_t>(w)], spin_budget,
                nullptr);
          }
          for (index_t row = chunks->chunk_begin[static_cast<std::size_t>(c)];
               row < chunks->chunk_end[static_cast<std::size_t>(c)]; ++row) {
            t[static_cast<std::size_t>(row)] = spmv_row(a, row, z);
          }
        }
      }
    }
    if (merged_fallback) {
      // Short team: redo the whole pass as the straight-line serial sweep
      // (deterministic overwrite of any partial work).
      for (index_t row = 0; row < n; ++row) {
        x[static_cast<std::size_t>(row)] =
            r[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] -
            lower_partial(lu, row, n, x, 0);
      }
      (void)serial_backward_spmv(f, a, x, z, t);  // hook-free here
    }
    return;
  }

  const ExecStatus fst = fused_forward(f, r, x, ws);
  if (!fst.ok()) throw_fused_abort(fst.row);

  if (s->hybrid()) {
    // Hybrid (per-level regime) backward schedule: the fused region's sweep
    // halves below mirror only the uniform backends, so route the backward
    // sweep through exec_run — whose hybrid branch owns the cross-regime
    // handoff protocol — with the z scatter fused into the row loop, then
    // multiply A in a second region. One extra join versus the uniform
    // fused pass; accumulation orders unchanged, so the result stays
    // bitwise equal to the unfused pair.
    const auto backward_scatter_row = [&](index_t row) {
      backward_row(lu, f.diag_pos, row, x);
      z[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] =
          x[static_cast<std::size_t>(row)];
    };
    if (hook) {
      const ExecStatus bst = exec_run(
          *s,
          [&](index_t row, int) -> bool {
            backward_scatter_row(row);
            return hook(FaultSite::kBackwardRow, row);
          },
          ws.progress);
      if (!bst.ok()) throw_fused_abort(bst.row);
    } else if (f.opts.exec_obs != nullptr) {
      exec_run_obs(
          *s, [&](index_t row, int) { backward_scatter_row(row); },
          ws.progress, *f.opts.exec_obs, obs::Region::kFused);
    } else {
      exec_run(
          *s, [&](index_t row, int) { backward_scatter_row(row); },
          ws.progress);
    }
#pragma omp parallel for schedule(static) num_threads(team)
    for (index_t row = 0; row < a.rows(); ++row) {
      t[static_cast<std::size_t>(row)] = spmv_row(a, row, z);
    }
    return;
  }

  // Cooperative abort (fault injection only): the flag is shared by the
  // backward items and the SpMV chunk waits, so a poisoned backward row
  // drains the whole fused region — including chunks waiting on rows that
  // will never publish. Hook-free solves keep `ab` null and every wait on
  // its historical no-polling path.
  AbortFlag abort_flag;
  AbortFlag* const ab = hook ? &abort_flag : nullptr;
  // Coarse observability for the fused region (thread-level counters and
  // phase spans; no per-level attribution — the SpMV chunks have no level).
  // Gated at compile time through the `obs_on` tag below, like exec_run's
  // Obs parameter: the uninstrumented instantiation carries no clock reads
  // and no counter stores. The fault hook takes precedence.
  obs::SweepObs* so = nullptr;
  if (f.opts.exec_obs != nullptr && !hook) {
    so = &f.opts.exec_obs->begin_sweep(obs::Region::kFused, *s);
  }
  bool fallback = false;
  {
    ProgressCounters& progress = ws.progress;
    if (s->backend == ExecBackend::kP2P) {
      if (progress.num_threads() < s->threads) {
        progress.reset(s->threads);
      } else {
        progress.rearm();
      }
    }
    SpinBarrier level_barrier(s->threads);
    // One region for the backward sweep AND the SpMV: each thread solves its
    // backward items (scattering finished entries straight into z), then
    // streams its A-row chunks behind the sweep — guarded by sparsified
    // waits on the same counters (P2P) or by the final level barrier
    // (CSR-LS). The sweep halves mirror exec_run (exec/run.hpp) with the
    // scatter fused into the row loop and the SpMV epilogue interleaved on
    // the same counters — keep the synchronization structure (including the
    // abort protocol) in sync with exec_run when changing either.
    const auto fused_thread = [&](const int tid, auto obs_on) {
      constexpr bool kObs = decltype(obs_on)::value;
      const int spin_budget =
          s->spin_budget > 0 ? s->spin_budget : spin_budget_for(s->threads);
      [[maybe_unused]] obs::TraceBuffer* buf = nullptr;
      [[maybe_unused]] std::int64_t t_start = 0;
      [[maybe_unused]] std::uint64_t sync_ns = 0;
      if constexpr (kObs) {
        if (so->tracing()) buf = &obs::TraceSession::instance().buffer();
        t_start = obs::now_ns();
        if (buf != nullptr) buf->begin_at("fused_bwd", t_start);
      }
      const auto backward_scatter = [&](index_t row) -> bool {
        backward_row(lu, f.diag_pos, row, x);
        z[static_cast<std::size_t>(perm[static_cast<std::size_t>(row)])] =
            x[static_cast<std::size_t>(row)];
        if (hook && !hook(FaultSite::kBackwardRow, row)) {
          ab->request(row);
          return false;
        }
        return true;
      };
      bool live = true;
      if (s->backend == ExecBackend::kBarrier) {
        for (index_t l = 0; l < s->num_levels && live; ++l) {
          if (ab != nullptr && ab->aborted()) {
            live = false;
            break;
          }
          const index_t base = s->level_ptr[static_cast<std::size_t>(l)];
          const index_t lsz =
              s->level_ptr[static_cast<std::size_t>(l) + 1] - base;
          const Range rr = partition_range(lsz, s->threads, tid);
          for (index_t k = base + rr.begin; k < base + rr.end; ++k) {
            if (!backward_scatter(
                    s->serial_order[static_cast<std::size_t>(k)])) {
              live = false;
              break;
            }
          }
          // A failed thread never arrives, so no peer passes this level:
          // they drain out of the abort-aware barrier wait instead.
          if (!live) break;
          if constexpr (kObs) {
            const std::int64_t b0 = obs::now_ns();
            const bool turned = level_barrier.arrive_and_wait_counted(
                spin_budget, ab, so->slot(tid));
            const std::int64_t b1 = obs::now_ns();
            so->slot(tid).barrier_ns += static_cast<std::uint64_t>(b1 - b0);
            sync_ns += static_cast<std::uint64_t>(b1 - b0);
            if (!turned) live = false;
          } else {
            if (!level_barrier.arrive_and_wait(spin_budget, ab)) live = false;
          }
        }
        if constexpr (kObs) {
          if (buf != nullptr) {
            const std::int64_t mid = obs::now_ns();
            buf->end_at("fused_bwd", mid);
            buf->begin_at("fused_spmv", mid);
          }
        }
        // The last level barrier ordered every z entry before this point;
        // the SpMV chunks run unguarded. An aborted sweep skips them.
        if (live && !(ab != nullptr && ab->aborted())) {
          for (index_t c = chunks->thread_ptr[static_cast<std::size_t>(tid)];
               c < chunks->thread_ptr[static_cast<std::size_t>(tid) + 1];
               ++c) {
            for (index_t row =
                     chunks->chunk_begin[static_cast<std::size_t>(c)];
                 row < chunks->chunk_end[static_cast<std::size_t>(c)];
                 ++row) {
              t[static_cast<std::size_t>(row)] = spmv_row(a, row, z);
            }
          }
        }
      } else {
        index_t done = 0;
        for (index_t i = s->thread_ptr[static_cast<std::size_t>(tid)];
             i < s->thread_ptr[static_cast<std::size_t>(tid) + 1] && live;
             ++i) {
          if (ab != nullptr && ab->aborted()) {
            live = false;
            break;
          }
          [[maybe_unused]] std::int64_t w0 = 0;
          if constexpr (kObs) w0 = obs::now_ns();
          for (index_t w = s->wait_ptr[static_cast<std::size_t>(i)];
               w < s->wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
            const int pt =
                static_cast<int>(s->wait_thread[static_cast<std::size_t>(w)]);
            const index_t pc = s->wait_count[static_cast<std::size_t>(w)];
            bool arrived;
            if constexpr (kObs) {
              arrived = progress.wait_for_counted(pt, pc, spin_budget, ab,
                                                  so->slot(tid));
            } else {
              arrived = progress.wait_for(pt, pc, spin_budget, ab);
            }
            if (!arrived) {
              live = false;
              break;
            }
          }
          if constexpr (kObs) {
            const std::int64_t w1 = obs::now_ns();
            so->slot(tid).wait_ns += static_cast<std::uint64_t>(w1 - w0);
            sync_ns += static_cast<std::uint64_t>(w1 - w0);
          }
          if (!live) break;
          for (index_t k = s->item_ptr[static_cast<std::size_t>(i)];
               k < s->item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
            if (!backward_scatter(s->rows[static_cast<std::size_t>(k)])) {
              live = false;
              break;
            }
          }
          // A failed item is never published: chunk waits on it observe
          // the flag and drain instead of spinning forever.
          if (!live) break;
          ++done;
          progress.publish(tid, done);
        }
        if constexpr (kObs) {
          if (buf != nullptr) {
            const std::int64_t mid = obs::now_ns();
            buf->end_at("fused_bwd", mid);
            buf->begin_at("fused_spmv", mid);
          }
        }
        for (index_t c = chunks->thread_ptr[static_cast<std::size_t>(tid)];
             c < chunks->thread_ptr[static_cast<std::size_t>(tid) + 1] &&
             live;
             ++c) {
          [[maybe_unused]] std::int64_t w0 = 0;
          if constexpr (kObs) w0 = obs::now_ns();
          for (index_t w = chunks->wait_ptr[static_cast<std::size_t>(c)];
               w < chunks->wait_ptr[static_cast<std::size_t>(c) + 1]; ++w) {
            const int pt = static_cast<int>(
                chunks->wait_thread[static_cast<std::size_t>(w)]);
            const index_t pc = chunks->wait_count[static_cast<std::size_t>(w)];
            bool arrived;
            if constexpr (kObs) {
              arrived = progress.wait_for_counted(pt, pc, spin_budget, ab,
                                                  so->slot(tid));
            } else {
              arrived = progress.wait_for(pt, pc, spin_budget, ab);
            }
            if (!arrived) {
              live = false;
              break;
            }
          }
          if constexpr (kObs) {
            const std::int64_t w1 = obs::now_ns();
            so->slot(tid).wait_ns += static_cast<std::uint64_t>(w1 - w0);
            sync_ns += static_cast<std::uint64_t>(w1 - w0);
          }
          if (!live) break;
          for (index_t row = chunks->chunk_begin[static_cast<std::size_t>(c)];
               row < chunks->chunk_end[static_cast<std::size_t>(c)]; ++row) {
            t[static_cast<std::size_t>(row)] = spmv_row(a, row, z);
          }
        }
      }
      if constexpr (kObs) {
        const std::int64_t t_end = obs::now_ns();
        if (buf != nullptr) buf->end_at("fused_spmv", t_end);
        const std::uint64_t total = static_cast<std::uint64_t>(t_end - t_start);
        so->slot(tid).busy_ns += total > sync_ns ? total - sync_ns : 0;
      }
    };
#pragma omp parallel num_threads(s->threads)
    {
      // Uniform team-size verdict, no single+barrier round (see exec_run).
      if (team_size() < s->threads) {
        if (thread_id() == 0) fallback = true;  // sole writer
      } else if (so != nullptr) {
        fused_thread(thread_id(), std::true_type{});
      } else {
        fused_thread(thread_id(), std::false_type{});
      }
    }
  }
  if (so != nullptr) f.opts.exec_obs->end_sweep(obs::Region::kFused, *s);
  if (ab != nullptr && ab->aborted()) throw_fused_abort(ab->row());
  if (fallback) {
    const ExecStatus bst = serial_backward_spmv(f, a, x, z, t);
    if (!bst.ok()) throw_fused_abort(bst.row);
  }
}

}  // namespace javelin
