// Small statistics helpers used by the planner (row-density heuristics) and
// the benchmark harness (geometric-mean speedups, level-size medians as in
// paper Tables III/IV).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace javelin {

template <class T>
double mean(std::span<const T> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const T& x : xs) s += static_cast<double>(x);
  return s / static_cast<double>(xs.size());
}

/// Median by copy-and-nth_element; even-length inputs return the average of
/// the two middle elements (matches how Table III reports "Med").
template <class T>
double median(std::span<const T> xs) {
  if (xs.empty()) return 0.0;
  std::vector<T> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = static_cast<double>(v[mid]);
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (hi + static_cast<double>(v[mid - 1]));
}

/// Geometric mean (paper §V reports geometric-mean speedups).
template <class T>
double geometric_mean(std::span<const T> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const T& x : xs) s += std::log(static_cast<double>(x));
  return std::exp(s / static_cast<double>(xs.size()));
}

template <class T>
T min_value(std::span<const T> xs) {
  return xs.empty() ? T{} : *std::min_element(xs.begin(), xs.end());
}

template <class T>
T max_value(std::span<const T> xs) {
  return xs.empty() ? T{} : *std::max_element(xs.begin(), xs.end());
}

}  // namespace javelin
