// Prefix-scan utilities: exclusive/inclusive scans (serial and OpenMP
// two-pass) and a segmented sum/scan used by the SR lower stage and the
// segmented-scan spmv variant (paper §II cites CSR5 / Blelloch et al. [13],
// [14] as the foundation for these kernels).
#pragma once

#include <cassert>
#include <numeric>
#include <span>
#include <vector>

#include "javelin/support/parallel.hpp"
#include "javelin/support/types.hpp"

namespace javelin {

/// In-place exclusive prefix sum; returns the total. data[i] becomes
/// sum(data[0..i)). Classic CSR rowptr construction helper.
template <class T>
T exclusive_scan_inplace(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

/// In-place inclusive prefix sum; returns the total.
template <class T>
T inclusive_scan_inplace(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    running += v;
    v = running;
  }
  return running;
}

/// Two-pass parallel exclusive scan. Falls back to serial for short inputs
/// where the parallel constant costs more than it saves.
template <class T>
T parallel_exclusive_scan_inplace(std::span<T> data) {
  const std::size_t n = data.size();
  const int p = max_threads();
  if (n < 1u << 14 || p == 1) return exclusive_scan_inplace(data);

  std::vector<T> partial(static_cast<std::size_t>(p) + 1, T{});
#pragma omp parallel num_threads(p)
  {
    const int t = thread_id();
    const auto r = partition_range(static_cast<index_t>(n), team_size(), t);
    T local{};
    for (index_t i = r.begin; i < r.end; ++i) local += data[static_cast<std::size_t>(i)];
    partial[static_cast<std::size_t>(t) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (int i = 1; i <= p; ++i) partial[static_cast<std::size_t>(i)] += partial[static_cast<std::size_t>(i) - 1];
    }
    T running = partial[static_cast<std::size_t>(t)];
    for (index_t i = r.begin; i < r.end; ++i) {
      T next = running + data[static_cast<std::size_t>(i)];
      data[static_cast<std::size_t>(i)] = running;
      running = next;
    }
  }
  return partial.back();
}

/// Segmented sum: given values[0..nnz) and segment boundaries seg_ptr
/// (CSR-style, seg_ptr.size() == nseg+1), writes per-segment totals into
/// out[0..nseg). This is the reduction at the heart of a segmented-scan
/// spmv: each matrix row is one segment.
template <class T>
void segmented_sum(std::span<const T> values, std::span<const index_t> seg_ptr,
                   std::span<T> out) {
  assert(seg_ptr.size() >= 1);
  const std::size_t nseg = seg_ptr.size() - 1;
  assert(out.size() >= nseg);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t s = 0; s < static_cast<std::ptrdiff_t>(nseg); ++s) {
    T acc{};
    for (index_t k = seg_ptr[static_cast<std::size_t>(s)]; k < seg_ptr[static_cast<std::size_t>(s) + 1]; ++k) {
      acc += values[static_cast<std::size_t>(k)];
    }
    out[static_cast<std::size_t>(s)] = acc;
  }
}

/// Flag-based inclusive segmented scan (Blelloch-style), serial reference.
/// flags[i] == true marks the first element of a segment. Exposed mainly for
/// the property tests that validate the tiled spmv against it.
template <class T>
void segmented_inclusive_scan(std::span<const T> values,
                              std::span<const bool> flags, std::span<T> out) {
  assert(values.size() == flags.size());
  assert(out.size() >= values.size());
  T running{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (flags[i]) running = T{};
    running += values[i];
    out[i] = running;
  }
}

}  // namespace javelin
