// Light-weight synchronization primitives for point-to-point level-scheduled
// execution (paper §III-A).
//
// The central object is ProgressCounters: one cache-line-padded atomic per
// thread that counts how many of that thread's scheduled rows have been
// published. A consumer that needs rows {r1..rk} owned by thread t waits for
// a single counter to pass max(position(ri)) — the "sparsified" dependency
// of Park et al. [11] that Javelin builds on.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#include "javelin/support/types.hpp"

namespace javelin {

/// CPU-friendly busy-wait hint.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Hardware destructive interference size; hardcoded because
/// std::hardware_destructive_interference_size is still flaky across
/// compilers and we only target x86-64/aarch64 class machines here.
inline constexpr std::size_t kCacheLine = 64;

/// A single atomic counter padded to a cache line so neighbouring threads'
/// publishes never false-share.
struct alignas(kCacheLine) PaddedCounter {
  std::atomic<index_t> value{0};
  char pad[kCacheLine - sizeof(std::atomic<index_t>)] = {};
};
static_assert(sizeof(PaddedCounter) == kCacheLine);

/// Spin iterations between yields in wait_for (~1 µs of pause-spinning).
inline constexpr int kSpinsBeforeYield = 1024;

/// Cached hardware concurrency (the query is a syscall on some libstdc++
/// builds); 0 when unknown.
inline int hardware_cores() noexcept {
  static const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw;
}

/// A team of `threads` oversubscribes the machine: more runnable spinners
/// than cores, so a waited-on producer is likely not running.
inline bool team_oversubscribed(int threads) noexcept {
  const int hw = hardware_cores();
  return hw > 0 && threads > hw;
}

/// Spin budget for a team of `threads`: when the team oversubscribes the
/// hardware the producer we are waiting on cannot be running, so burning a
/// pause-spin window before every yield only delays its next time slice —
/// yield immediately instead.
inline int spin_budget_for(int threads) noexcept {
  return team_oversubscribed(threads) ? 1 : kSpinsBeforeYield;
}

/// Bounded exponential backoff for busy-wait loops: pause-spin windows that
/// double (1, 2, 4, … pauses) up to `max_pauses`, then escalate to
/// std::this_thread::yield on every further miss. Short waits — the common
/// case on a dedicated machine — stay in cheap pause territory; long waits
/// and oversubscribed teams (max_pauses = spin_budget_for(team) = 1) hand
/// the core to the producer almost immediately instead of starving it
/// behind a spinner.
class Backoff {
 public:
  explicit Backoff(int max_pauses) noexcept
      : max_pauses_(max_pauses < 1 ? 1 : max_pauses) {}

  /// One miss: burn the current pause window (doubling it) or yield once
  /// the window is exhausted. Returns true when the miss escalated to a
  /// yield — the pause→yield transition the stall telemetry counts; plain
  /// callers ignore the return value at zero cost.
  bool miss() noexcept {
    if (window_ <= max_pauses_) {
      for (int i = 0; i < window_; ++i) cpu_pause();
      window_ <<= 1;
      return false;
    }
    std::this_thread::yield();
    return true;
  }

 private:
  int window_ = 1;
  const int max_pauses_;
};

/// Cooperative poison flag for a parallel region: the first worker that
/// detects a condition the region cannot recover from (zero pivot,
/// injected fault, non-finite value) publishes the offending row here and
/// stops publishing progress. Every spin-wait in the region polls the flag,
/// so peers that would otherwise wait forever on the dead row drain out of
/// their wait loops within a bounded number of misses instead. The flag
/// carries the *first* reported row (CAS, first writer wins) so the caller
/// can attribute the abort deterministically when only one row can fail.
class AbortFlag {
 public:
  /// Request an abort attributed to `row`. Returns true when this call won
  /// the race to be the recorded cause.
  bool request(index_t row) noexcept {
    index_t expected = kInvalidIndex;
    return first_.compare_exchange_strong(expected, row,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  bool aborted() const noexcept {
    return first_.load(std::memory_order_acquire) != kInvalidIndex;
  }

  /// Row recorded by the winning request (kInvalidIndex when not aborted).
  index_t row() const noexcept {
    return first_.load(std::memory_order_acquire);
  }

  void reset() noexcept { first_.store(kInvalidIndex, std::memory_order_release); }

 private:
  alignas(kCacheLine) std::atomic<index_t> first_{kInvalidIndex};
};

/// Per-thread monotone progress counters with acquire/release publication.
///
/// Thread t executes its scheduled items in a fixed order; after finishing
/// its i-th item (0-based) it calls publish(t, i + 1). Any thread may then
/// wait_for(t, n) to block until t has published at least n items. Because
/// counters are monotone, one wait on the *maximum* needed position per
/// producer thread subsumes all earlier dependencies on that thread.
class ProgressCounters {
 public:
  ProgressCounters() = default;
  explicit ProgressCounters(int num_threads) { reset(num_threads); }

  void reset(int num_threads) {
    // Atomics are not copyable; construct the counters in place.
    counters_ = std::vector<PaddedCounter>(static_cast<std::size_t>(num_threads));
  }

  /// Reset all counters to zero without reallocating (start of a new sweep).
  void rearm() noexcept {
    for (auto& c : counters_) c.value.store(0, std::memory_order_relaxed);
  }

  int num_threads() const noexcept { return static_cast<int>(counters_.size()); }

  /// Publish that `count` items of thread `t` are now globally visible.
  /// Release order: all stores made while computing those items happen-before
  /// any acquire load that observes the new count.
  void publish(int t, index_t count) noexcept {
    counters_[static_cast<std::size_t>(t)].value.store(count,
                                                       std::memory_order_release);
  }

  /// Current published count (acquire).
  index_t load(int t) const noexcept {
    return counters_[static_cast<std::size_t>(t)].value.load(
        std::memory_order_acquire);
  }

  /// Spin until thread `t` has published at least `count` items, under
  /// bounded exponential backoff: pause windows double up to `spin_budget`
  /// pauses, then every further miss yields the core so an oversubscribed
  /// producer (more threads than cores) can be scheduled instead of starving
  /// behind the spinner. Callers that know their team is oversubscribed pass
  /// spin_budget_for(team) so already the second miss yields.
  ///
  /// When `abort` is non-null the wait also polls the abort flag on every
  /// miss and gives up as soon as it is raised — the producer may never
  /// publish `count`. Returns false on abort, true when the count arrived.
  bool wait_for(int t, index_t count, int spin_budget = kSpinsBeforeYield,
                const AbortFlag* abort = nullptr) const noexcept {
    const auto& c = counters_[static_cast<std::size_t>(t)].value;
    Backoff backoff(spin_budget);
    while (c.load(std::memory_order_acquire) < count) {
      if (abort != nullptr && abort->aborted()) return false;
      backoff.miss();
    }
    return true;
  }

  /// wait_for with per-event accounting into `c` — any struct with the
  /// counter fields of obs::WaitCounters (duck-typed template so this
  /// header stays free of obs/ includes). Counts: one `waits` per call,
  /// classified `waits_immediate` (first poll succeeded) or
  /// `waits_stalled`; per miss one `spins`, plus `yields` when the backoff
  /// escalated and `abort_polls` when a flag was polled. Time attribution
  /// is the caller's job (it already brackets the wait-list loop with one
  /// clock read on each side; re-reading the clock per counter poll here
  /// would perturb the stall being measured).
  ///
  /// Identical wait semantics to wait_for — same loads, same backoff, same
  /// abort protocol — so instrumented runs stay bitwise-equal in results.
  template <class Counters>
  bool wait_for_counted(int t, index_t count, int spin_budget,
                        const AbortFlag* abort, Counters& c) const noexcept {
    const auto& v = counters_[static_cast<std::size_t>(t)].value;
    c.waits += 1;
    if (v.load(std::memory_order_acquire) >= count) {
      c.waits_immediate += 1;
      return true;
    }
    c.waits_stalled += 1;
    Backoff backoff(spin_budget);
    while (v.load(std::memory_order_acquire) < count) {
      if (abort != nullptr) {
        c.abort_polls += 1;
        if (abort->aborted()) return false;
      }
      c.spins += 1;
      if (backoff.miss()) c.yields += 1;
    }
    return true;
  }

 private:
  std::vector<PaddedCounter> counters_;
};

/// Minimal test-and-test-and-set spin lock (used only on short critical
/// sections such as lower-stage corner hand-off; the hot paths use
/// ProgressCounters and are lock-free).
class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) cpu_pause();
    }
  }
  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Sense-reversing centralized barrier — the per-level synchronization of
/// the CSR-LS (barrier level-set) execution backend (paper §VI compares
/// point-to-point scheduling against exactly this); Javelin's own P2P
/// backend never barriers between levels. Waiters degrade under the same
/// bounded exponential backoff as the P2P spin-waits, so an oversubscribed
/// barrier team yields instead of pause-storming.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) noexcept : parties_(parties) {}

  /// Arrive and wait for the barrier to turn. When `abort` is non-null a
  /// waiter also polls the abort flag and bails out (returning false)
  /// instead of waiting on parties that aborted before arriving; the
  /// barrier's internal state is then inconsistent, which is fine because
  /// an aborted region abandons the whole level loop — and with it this
  /// (per-call) barrier — on every thread. Returns true when the barrier
  /// completed normally.
  bool arrive_and_wait(int spin_budget = kSpinsBeforeYield,
                       const AbortFlag* abort = nullptr) noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      Backoff backoff(spin_budget);
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (abort != nullptr && abort->aborted()) return false;
        backoff.miss();
      }
    }
    return true;
  }

  /// arrive_and_wait with per-event accounting into `c` (duck-typed like
  /// ProgressCounters::wait_for_counted): one `barrier_waits` per crossing,
  /// `spins`/`yields`/`abort_polls` per miss while spinning on the sense
  /// flip (the last arriver spins zero times). Only barrier_* and the
  /// shared miss counters are touched — the waits/waits_immediate/
  /// waits_stalled identity of the P2P counters stays exact. Wait time is
  /// bracketed by the caller. Synchronization behaviour is identical to
  /// arrive_and_wait.
  template <class Counters>
  bool arrive_and_wait_counted(int spin_budget, const AbortFlag* abort,
                               Counters& c) noexcept {
    c.barrier_waits += 1;
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return true;
    }
    Backoff backoff(spin_budget);
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (abort != nullptr) {
        c.abort_polls += 1;
        if (abort->aborted()) return false;
      }
      c.spins += 1;
      if (backoff.miss()) c.yields += 1;
    }
    return true;
  }

 private:
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace javelin
