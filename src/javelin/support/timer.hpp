// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace javelin {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly and reports the minimum wall time over `reps`
/// repetitions after `warmup` unmeasured runs. Minimum (not mean) matches
/// how scalability papers report kernel times: it filters scheduler noise.
template <class Fn>
double min_time_seconds(Fn&& fn, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace javelin
