// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace javelin {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly and reports the minimum wall time over `reps`
/// repetitions after `warmup` unmeasured runs. Minimum (not mean) matches
/// how scalability papers report kernel times: it filters scheduler noise.
template <class Fn>
double min_time_seconds(Fn&& fn, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Min + median wall time over `reps` measured repetitions (after `warmup`
/// unmeasured ones). Min filters scheduler noise; median bounds how far the
/// typical run sits from it — a large gap flags a noisy measurement, which
/// single-number reporting silently hides.
struct RepTimes {
  double min_s = 0;
  double median_s = 0;
};

template <class Fn>
RepTimes rep_times_seconds(Fn&& fn, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  reps = std::max(1, reps);
  std::vector<double> times(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    times[static_cast<std::size_t>(i)] = t.seconds();
  }
  std::sort(times.begin(), times.end());
  RepTimes out;
  out.min_s = times.front();
  const std::size_t mid = times.size() / 2;
  out.median_s = times.size() % 2 == 1
                     ? times[mid]
                     : 0.5 * (times[mid - 1] + times[mid]);
  return out;
}

}  // namespace javelin
