// Thin wrappers around OpenMP runtime queries plus small parallel loops used
// by preprocessing (first-touch copies, counting passes).
#pragma once

#include <algorithm>
#include <cstddef>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "javelin/support/types.hpp"

namespace javelin {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside).
inline int thread_id() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Team size inside a parallel region (1 outside).
inline int team_size() noexcept {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// RAII override of the global thread count (used by benches to sweep p).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) : saved_(max_threads()) {
#ifdef _OPENMP
    omp_set_num_threads(std::max(1, threads));
#else
    (void)threads;
#endif
  }
  ~ThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// Evenly split [0, n) into `parts` contiguous chunks; returns [begin, end)
/// of chunk `part`. Remainder rows are distributed to the leading chunks, so
/// chunk sizes differ by at most one (the ER lower stage relies on this for
/// its balance argument, paper §III-B).
struct Range {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const noexcept { return end - begin; }
};

inline Range partition_range(index_t n, int parts, int part) noexcept {
  const index_t q = n / parts;
  const index_t r = n % parts;
  const index_t lo = static_cast<index_t>(part) * q + std::min<index_t>(part, r);
  const index_t hi = lo + q + (part < r ? 1 : 0);
  return {lo, hi};
}

}  // namespace javelin
