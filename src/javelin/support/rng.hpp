// Deterministic random number generation for the synthetic matrix suite.
//
// Everything in javelin::gen must be reproducible across runs and thread
// counts, so generators take explicit seeds and never touch global state.
#pragma once

#include <cstdint>

namespace javelin {

/// splitmix64 — tiny, high-quality 64-bit mixer; used both directly and to
/// seed Xoshiro256**.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

/// Xoshiro256** — fast general-purpose PRNG for pattern/value generation.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) without modulo bias for the n we use
  /// (n << 2^64 makes the bias negligible; matrix dimensions are < 2^31).
  constexpr std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace javelin
