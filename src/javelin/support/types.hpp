// Core scalar and index types used throughout Javelin.
//
// Javelin stores sparse matrices with 32-bit indices by default: every matrix
// in the paper's test suite (Table I) fits comfortably, and halving index
// width roughly halves pattern bandwidth, which matters for the memory-bound
// kernels (spmv / stri / up-looking ILU) the framework co-optimizes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace javelin {

/// Index type for rows, columns and nonzero counts inside one matrix.
using index_t = std::int32_t;

/// Wide type for global nonzero offsets (CSR row pointers of large matrices).
using offset_t = std::int64_t;

/// Floating-point value type. The library is written against double; the
/// templated kernels also instantiate float where it is cheap to do so.
using value_t = double;

/// Sentinel for "no vertex / not assigned".
inline constexpr index_t kInvalidIndex = -1;

/// Throwing narrow-cast used at API boundaries (e.g. file I/O can produce
/// 64-bit counts that must fit index_t).
template <class To, class From>
To checked_cast(From v, const char* what = "index") {
  if (v < static_cast<From>(std::numeric_limits<To>::lowest()) ||
      v > static_cast<From>(std::numeric_limits<To>::max())) {
    throw std::overflow_error(std::string("javelin: ") + what +
                              " out of range for target type");
  }
  return static_cast<To>(v);
}

/// Library error type: thrown for structural problems (non-square input,
/// missing diagonal, unsorted rows where sorted are required, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error("javelin: " + msg) {}
};

/// Thrown by throwing apply/solve wrappers when a parallel region drained
/// through the cooperative-abort protocol (fault injection, poisoned
/// values). The abort itself never crosses the region as an exception —
/// exec_run returns an ExecStatus and the wrapper converts it outside the
/// region; status-returning entry points never throw this at all.
class AbortError : public Error {
 public:
  explicit AbortError(const std::string& msg) : Error(msg) {}
};

#define JAVELIN_CHECK(cond, msg)            \
  do {                                      \
    if (!(cond)) throw ::javelin::Error(msg); \
  } while (0)

}  // namespace javelin
