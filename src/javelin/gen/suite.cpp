// The synthetic analog of paper Table I. Each entry names its SuiteSparse
// counterpart and reproduces its class: dimension (scaled), row density,
// pattern symmetry, and level-structure character.
#include <cmath>

#include "javelin/gen/generators.hpp"

namespace javelin::gen {

namespace {

index_t scaled(index_t paper_n, double scale, index_t floor_n = 1000) {
  const double s = static_cast<double>(paper_n) * scale;
  return std::max<index_t>(floor_n, static_cast<index_t>(s));
}

index_t grid_side_2d(index_t n) {
  return std::max<index_t>(8, static_cast<index_t>(std::lround(std::sqrt(static_cast<double>(n)))));
}

index_t grid_side_3d(index_t n) {
  return std::max<index_t>(4, static_cast<index_t>(std::lround(std::cbrt(static_cast<double>(n)))));
}

}  // namespace

std::vector<std::string> suite_names() {
  return {"wang3",         "TSOPF_RS_b300_c2", "3D_28984_Tetra", "ibm_matrix_2",
          "fem_filter",    "trans4",           "scircuit",       "transient",
          "offshore",      "ASIC_320ks",       "af_shell3",      "parabolic_fem",
          "ASIC_680ks",    "apache2",          "tmt_sym",        "ecology2",
          "thermal2",      "G3_circuit"};
}

std::vector<std::string> degenerate_names() {
  return {"zero_diag", "saddle_point", "near_singular"};
}

SuiteEntry make_suite_matrix(const std::string& name, const SuiteOptions& opts) {
  const double sc = opts.scale;
  const std::uint64_t seed = opts.seed;
  SuiteEntry e;
  e.name = name;

  if (name == "wang3") {
    // 3-D semiconductor device, N=26064, RD 6.8, sym pattern, 10 levels.
    const index_t s = grid_side_3d(scaled(26064, sc));
    e.matrix = laplacian3d(s, s, s, 7);
    e.paper_n = 26064; e.paper_rd = 6.8; e.paper_sym_pattern = true; e.paper_levels = 10;
  } else if (name == "TSOPF_RS_b300_c2") {
    // Power flow, N=28338, RD 103.9, unsym pattern, 180 levels.
    const index_t n = scaled(28338, sc);
    e.matrix = power_system(n, std::max<index_t>(16, n / 40), std::max<index_t>(32, n / 300), seed ^ 0x1);
    e.paper_n = 28338; e.paper_rd = 103.88; e.paper_sym_pattern = false; e.paper_levels = 180;
  } else if (name == "3D_28984_Tetra") {
    // Tetrahedral mesh, N=28984, RD 9.8, unsym pattern, 34 levels.
    const index_t n = scaled(28984, sc);
    e.matrix = random_fem(n, 9, seed ^ 0x2, 0.01);
    e.paper_n = 28984; e.paper_rd = 9.84; e.paper_sym_pattern = false; e.paper_levels = 34;
  } else if (name == "ibm_matrix_2") {
    // Circuit, N=51448, RD 10.4, unsym pattern, 29 levels.
    const index_t n = scaled(51448, sc);
    e.matrix = circuit(n, 9.0, seed ^ 0x3, /*symmetric_pattern=*/false,
                       std::max<index_t>(2, n / 1500));
    e.paper_n = 51448; e.paper_rd = 10.44; e.paper_sym_pattern = false; e.paper_levels = 29;
  } else if (name == "fem_filter") {
    // FEM waveguide filter, N=74062, RD 23.4, sym pattern, 554 levels (many
    // tiny levels — the pathological case of §V/§VII).
    const index_t n = scaled(74062, sc);
    e.matrix = long_chain(n, 40, 10, seed ^ 0x4);
    e.paper_n = 74062; e.paper_rd = 23.38; e.paper_sym_pattern = true; e.paper_levels = 554;
  } else if (name == "trans4") {
    // Circuit transient, N=116835, RD 6.4, unsym pattern, 20 levels.
    const index_t n = scaled(116835, sc);
    e.matrix = circuit(n, 5.5, seed ^ 0x5, /*symmetric_pattern=*/false,
                       std::max<index_t>(2, n / 4000));
    e.paper_n = 116835; e.paper_rd = 6.42; e.paper_sym_pattern = false; e.paper_levels = 20;
  } else if (name == "scircuit") {
    // Circuit, N=170998, RD 5.6, sym pattern, 34 levels.
    const index_t n = scaled(170998, sc);
    e.matrix = circuit(n, 5.0, seed ^ 0x6, /*symmetric_pattern=*/true,
                       std::max<index_t>(2, n / 3000));
    e.paper_n = 170998; e.paper_rd = 5.61; e.paper_sym_pattern = true; e.paper_levels = 34;
  } else if (name == "transient") {
    // Circuit transient, N=178866, RD 5.4, sym pattern, 16 levels.
    const index_t n = scaled(178866, sc);
    e.matrix = circuit(n, 4.8, seed ^ 0x7, /*symmetric_pattern=*/true,
                       std::max<index_t>(2, n / 5000));
    e.paper_n = 178866; e.paper_rd = 5.37; e.paper_sym_pattern = true; e.paper_levels = 16;
  } else if (name == "offshore") {
    // 3-D EM FEM, N=259789, RD 16.3, sym, 74 levels. Group A.
    const index_t n = scaled(259789, sc);
    e.group = 'A';
    e.matrix = random_fem(n, 16, seed ^ 0x8, 0.004);
    e.paper_n = 259789; e.paper_rd = 16.33; e.paper_sym_pattern = true; e.paper_levels = 74;
  } else if (name == "ASIC_320ks") {
    const index_t n = scaled(321671, sc);
    e.matrix = circuit(n, 3.6, seed ^ 0x9, /*symmetric_pattern=*/true,
                       std::max<index_t>(2, n / 8000));
    e.paper_n = 321671; e.paper_rd = 4.09; e.paper_sym_pattern = true; e.paper_levels = 16;
  } else if (name == "af_shell3") {
    // Sheet-metal forming shell, N=504855, RD 34.8, sym, 630 levels. Group A.
    const index_t n = scaled(504855, sc);
    e.group = 'A';
    e.matrix = long_chain(n, 60, 16, seed ^ 0xA);
    e.paper_n = 504855; e.paper_rd = 34.79; e.paper_sym_pattern = true; e.paper_levels = 630;
  } else if (name == "parabolic_fem") {
    // Parabolic FEM, N=525825, RD 7.0, sym, 28 levels. Group A.
    const index_t n = scaled(525825, sc);
    e.group = 'A';
    const index_t s = grid_side_2d(n);
    e.matrix = anisotropic2d(s, s, 0.25);
    e.paper_n = 525825; e.paper_rd = 6.99; e.paper_sym_pattern = true; e.paper_levels = 28;
  } else if (name == "ASIC_680ks") {
    const index_t n = scaled(682712, sc);
    e.matrix = circuit(n, 2.2, seed ^ 0xB, /*symmetric_pattern=*/true,
                       std::max<index_t>(2, n / 10000));
    e.paper_n = 682712; e.paper_rd = 2.48; e.paper_sym_pattern = true; e.paper_levels = 21;
  } else if (name == "apache2") {
    // 3-D structural, N=715176, RD 6.7, sym, 13 levels. Group A.
    const index_t n = scaled(715176, sc);
    e.group = 'A';
    const index_t s = grid_side_3d(n);
    e.matrix = laplacian3d(s, s, s, 7);
    e.paper_n = 715176; e.paper_rd = 6.74; e.paper_sym_pattern = true; e.paper_levels = 13;
  } else if (name == "tmt_sym") {
    const index_t n = scaled(726713, sc);
    const index_t s = grid_side_2d(n);
    e.matrix = laplacian2d(s, s, 9);
    e.paper_n = 726713; e.paper_rd = 6.99; e.paper_sym_pattern = true; e.paper_levels = 28;
  } else if (name == "ecology2") {
    // 2-D circuit-theory landscape model, N=999999, RD 5.0, 13 levels. Group A.
    const index_t n = scaled(999999, sc);
    e.group = 'A';
    const index_t s = grid_side_2d(n);
    e.matrix = laplacian2d(s, s, 5);
    e.paper_n = 999999; e.paper_rd = 5.0; e.paper_sym_pattern = true; e.paper_levels = 13;
  } else if (name == "thermal2") {
    // Thermal FEM, N=1.2M, RD 7.0, 27 levels. Group A.
    const index_t n = scaled(1228045, sc);
    e.group = 'A';
    e.matrix = random_fem(n, 7, seed ^ 0xC, 0.003);
    e.paper_n = 1228045; e.paper_rd = 6.99; e.paper_sym_pattern = true; e.paper_levels = 27;
  } else if (name == "G3_circuit") {
    const index_t n = scaled(1585478, sc);
    const index_t s = grid_side_2d(n);
    e.matrix = laplacian2d(s, s, 5);
    e.paper_n = 1585478; e.paper_rd = 4.83; e.paper_sym_pattern = true; e.paper_levels = 13;
  } else if (name == "zero_diag") {
    // Degenerate (group D): structurally-zero level-0 diagonal — guaranteed
    // ILU(0) numeric breakdown, shift-recoverable. Robustness fixture; the
    // paper_* stats have no SuiteSparse counterpart.
    e.group = 'D';
    e.matrix = degenerate_zero_diag(32, 32);
  } else if (name == "saddle_point") {
    // Degenerate (group D): symmetric indefinite KKT block system with a
    // redundant constraint (exact zero pivot + PCG→GMRES escalation).
    e.group = 'D';
    e.matrix = degenerate_saddle(24, 24, 16);
  } else if (name == "near_singular") {
    // Degenerate (group D): eps-shifted Neumann Laplacian (condition ~1e10),
    // a stagnation/conditioning stressor that factors fine.
    e.group = 'D';
    e.matrix = degenerate_near_singular(40, 40, 1e-10);
  } else {
    throw Error("unknown suite matrix: " + name);
  }
  return e;
}

std::vector<SuiteEntry> make_suite(const SuiteOptions& opts) {
  std::vector<SuiteEntry> out;
  for (const std::string& name : suite_names()) {
    SuiteEntry e = make_suite_matrix(name, opts);
    if (opts.group_a_only && e.group != 'A') continue;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace javelin::gen
