#include <cmath>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/coo.hpp"
#include "javelin/support/rng.hpp"

namespace javelin::gen {

CsrMatrix laplacian2d(index_t nx, index_t ny, int stencil) {
  JAVELIN_CHECK(stencil == 5 || stencil == 9, "2-D stencil must be 5 or 9");
  const index_t n = nx * ny;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(stencil));
  const auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      double diag = 4.0;
      const auto add = [&](index_t ii, index_t jj, value_t w) {
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) return;
        coo.push(r, id(ii, jj), w);
      };
      add(i - 1, j, -1.0);
      add(i + 1, j, -1.0);
      add(i, j - 1, -1.0);
      add(i, j + 1, -1.0);
      if (stencil == 9) {
        add(i - 1, j - 1, -1.0 / 3.0);
        add(i + 1, j - 1, -1.0 / 3.0);
        add(i - 1, j + 1, -1.0 / 3.0);
        add(i + 1, j + 1, -1.0 / 3.0);
        diag = 4.0 + 4.0 / 3.0;
      }
      coo.push(r, r, diag);
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix laplacian3d(index_t nx, index_t ny, index_t nz, int stencil) {
  JAVELIN_CHECK(stencil == 7 || stencil == 27, "3-D stencil must be 7 or 27");
  const index_t n = nx * ny * nz;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(stencil));
  const auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        value_t diag = 0;
        for (index_t dk = -1; dk <= 1; ++dk) {
          for (index_t dj = -1; dj <= 1; ++dj) {
            for (index_t di = -1; di <= 1; ++di) {
              if (di == 0 && dj == 0 && dk == 0) continue;
              const index_t manhattan =
                  std::abs(di) + std::abs(dj) + std::abs(dk);
              if (stencil == 7 && manhattan != 1) continue;
              const index_t ii = i + di, jj = j + dj, kk = k + dk;
              if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz) {
                diag += (stencil == 7 || manhattan == 1)
                            ? 1.0
                            : 1.0 / static_cast<value_t>(manhattan);
                continue;
              }
              const value_t w = (stencil == 7 || manhattan == 1)
                                    ? 1.0
                                    : 1.0 / static_cast<value_t>(manhattan);
              coo.push(r, id(ii, jj, kk), -w);
              diag += w;
            }
          }
        }
        coo.push(r, r, diag + 1e-3);  // slight shift keeps it SPD with Dirichlet-free boundary
      }
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix anisotropic2d(index_t nx, index_t ny, double eps) {
  const index_t n = nx * ny;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 5);
  const auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      value_t diag = 0;
      const auto add = [&](index_t ii, index_t jj, value_t w) {
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) {
          diag += w;
          return;
        }
        coo.push(r, id(ii, jj), -w);
        diag += w;
      };
      add(i - 1, j, 1.0);
      add(i + 1, j, 1.0);
      add(i, j - 1, static_cast<value_t>(eps));
      add(i, j + 1, static_cast<value_t>(eps));
      coo.push(r, r, diag);
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix anisotropic3d(index_t nx, index_t ny, index_t nz, double eps_y,
                        double eps_z) {
  const index_t n = nx * ny * nz;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 7);
  const auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        value_t diag = 0;
        const auto add = [&](index_t ii, index_t jj, index_t kk, value_t w) {
          if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz) {
            diag += w;  // fold the boundary flux into the diagonal (SPD)
            return;
          }
          coo.push(r, id(ii, jj, kk), -w);
          diag += w;
        };
        add(i - 1, j, k, 1.0);
        add(i + 1, j, k, 1.0);
        add(i, j - 1, k, static_cast<value_t>(eps_y));
        add(i, j + 1, k, static_cast<value_t>(eps_y));
        add(i, j, k - 1, static_cast<value_t>(eps_z));
        add(i, j, k + 1, static_cast<value_t>(eps_z));
        coo.push(r, r, diag);
      }
    }
  }
  return coo_to_csr(coo);
}

namespace {

/// Coefficient of the block containing cell (i, j, k): log-uniform in
/// [1, contrast], keyed on the block coordinates so any cell of a block —
/// and any traversal order — sees the same value.
value_t jump_coefficient(index_t i, index_t j, index_t k, index_t block,
                         double contrast, std::uint64_t seed) {
  const std::uint64_t bi = static_cast<std::uint64_t>(i / block);
  const std::uint64_t bj = static_cast<std::uint64_t>(j / block);
  const std::uint64_t bk = static_cast<std::uint64_t>(k / block);
  SplitMix64 mix(seed ^ (bi * 0x8DA6B343ull) ^ (bj * 0xD8163841ull) ^
                 (bk * 0xCB1AB31Full));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return static_cast<value_t>(std::exp(u * std::log(contrast)));
}

}  // namespace

CsrMatrix jump3d(index_t nx, index_t ny, index_t nz, index_t block,
                 double contrast, std::uint64_t seed) {
  JAVELIN_CHECK(block >= 1, "jump3d requires block >= 1");
  JAVELIN_CHECK(contrast >= 1.0, "jump3d requires contrast >= 1");
  const index_t n = nx * ny * nz;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 7);
  const auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  const auto c = [&](index_t i, index_t j, index_t k) {
    return jump_coefficient(i, j, k, block, contrast, seed);
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        const value_t cc = c(i, j, k);
        value_t diag = 0;
        const auto add = [&](index_t ii, index_t jj, index_t kk) {
          if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz) {
            // Dirichlet-free boundary: no flux, nothing added.
            return;
          }
          const value_t cn = c(ii, jj, kk);
          // Harmonic mean of the two cell coefficients: the standard
          // finite-volume face transmissibility, which keeps the matrix
          // symmetric (the face value is the same from both sides).
          const value_t w = 2.0 * cc * cn / (cc + cn);
          coo.push(r, id(ii, jj, kk), -w);
          diag += w;
        };
        add(i - 1, j, k);
        add(i + 1, j, k);
        add(i, j - 1, k);
        add(i, j + 1, k);
        add(i, j, k - 1);
        add(i, j, k + 1);
        coo.push(r, r, diag + 1e-3);  // shift off the Neumann null space
      }
    }
  }
  return coo_to_csr(coo);
}

}  // namespace javelin::gen
