#include <cmath>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/coo.hpp"

namespace javelin::gen {

CsrMatrix laplacian2d(index_t nx, index_t ny, int stencil) {
  JAVELIN_CHECK(stencil == 5 || stencil == 9, "2-D stencil must be 5 or 9");
  const index_t n = nx * ny;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(stencil));
  const auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      double diag = 4.0;
      const auto add = [&](index_t ii, index_t jj, value_t w) {
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) return;
        coo.push(r, id(ii, jj), w);
      };
      add(i - 1, j, -1.0);
      add(i + 1, j, -1.0);
      add(i, j - 1, -1.0);
      add(i, j + 1, -1.0);
      if (stencil == 9) {
        add(i - 1, j - 1, -1.0 / 3.0);
        add(i + 1, j - 1, -1.0 / 3.0);
        add(i - 1, j + 1, -1.0 / 3.0);
        add(i + 1, j + 1, -1.0 / 3.0);
        diag = 4.0 + 4.0 / 3.0;
      }
      coo.push(r, r, diag);
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix laplacian3d(index_t nx, index_t ny, index_t nz, int stencil) {
  JAVELIN_CHECK(stencil == 7 || stencil == 27, "3-D stencil must be 7 or 27");
  const index_t n = nx * ny * nz;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(stencil));
  const auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return (k * ny + j) * nx + i;
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        value_t diag = 0;
        for (index_t dk = -1; dk <= 1; ++dk) {
          for (index_t dj = -1; dj <= 1; ++dj) {
            for (index_t di = -1; di <= 1; ++di) {
              if (di == 0 && dj == 0 && dk == 0) continue;
              const index_t manhattan =
                  std::abs(di) + std::abs(dj) + std::abs(dk);
              if (stencil == 7 && manhattan != 1) continue;
              const index_t ii = i + di, jj = j + dj, kk = k + dk;
              if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz) {
                diag += (stencil == 7 || manhattan == 1)
                            ? 1.0
                            : 1.0 / static_cast<value_t>(manhattan);
                continue;
              }
              const value_t w = (stencil == 7 || manhattan == 1)
                                    ? 1.0
                                    : 1.0 / static_cast<value_t>(manhattan);
              coo.push(r, id(ii, jj, kk), -w);
              diag += w;
            }
          }
        }
        coo.push(r, r, diag + 1e-3);  // slight shift keeps it SPD with Dirichlet-free boundary
      }
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix anisotropic2d(index_t nx, index_t ny, double eps) {
  const index_t n = nx * ny;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 5);
  const auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      value_t diag = 0;
      const auto add = [&](index_t ii, index_t jj, value_t w) {
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) {
          diag += w;
          return;
        }
        coo.push(r, id(ii, jj), -w);
        diag += w;
      };
      add(i - 1, j, 1.0);
      add(i + 1, j, 1.0);
      add(i, j - 1, static_cast<value_t>(eps));
      add(i, j + 1, static_cast<value_t>(eps));
      coo.push(r, r, diag);
    }
  }
  return coo_to_csr(coo);
}

}  // namespace javelin::gen
