// Deterministic synthetic matrix generators.
//
// The paper evaluates on 18 SuiteSparse matrices (Table I). Those files are
// not redistributable here, so javelin::gen builds synthetic analogs that
// reproduce the *pattern statistics that drive Javelin's behaviour*: matrix
// dimension, nonzeros per row (RD), symbolic symmetry (SP), and the level
// structure class (few huge levels for grid PDEs, hundreds of small levels
// for shell/filter problems, a handful of dense rows for power systems).
// See DESIGN.md's substitution table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin::gen {

/// 2-D structured grid Laplacian, 5-point (stencil=5) or 9-point (stencil=9)
/// on an nx × ny grid. SPD, pattern-symmetric.
CsrMatrix laplacian2d(index_t nx, index_t ny, int stencil = 5);

/// 3-D structured grid Laplacian, 7-point or 27-point on nx × ny × nz.
CsrMatrix laplacian3d(index_t nx, index_t ny, index_t nz, int stencil = 7);

/// Anisotropic 2-D diffusion: 5-point with coefficients (1, eps) — stretches
/// the level structure like parabolic_fem-class problems.
CsrMatrix anisotropic2d(index_t nx, index_t ny, double eps);

/// Anisotropic 3-D diffusion: 7-point with directional coefficients
/// (1, eps_y, eps_z). Strong coupling along x only (the production-scale
/// analog of anisotropic2d); SPD with Neumann-style boundary fold-in.
CsrMatrix anisotropic3d(index_t nx, index_t ny, index_t nz, double eps_y,
                        double eps_z);

/// Jumpy-coefficient 3-D diffusion: 7-point finite-volume discretization of
/// -div(c grad u) where c is piecewise-constant on cubes of `block`³ grid
/// cells, log-uniform in [1, contrast] (deterministic: the coefficient of a
/// block is a SplitMix64 hash of its coordinates and `seed`). Face
/// transmissibilities are harmonic means, so the matrix is SPD with entry
/// magnitudes spanning the full contrast ratio — the hard-preconditioning
/// analog of SPE-style reservoir problems.
CsrMatrix jump3d(index_t nx, index_t ny, index_t nz, index_t block,
                 double contrast, std::uint64_t seed);

/// Unstructured FEM-like symmetric matrix: n rows, ~row_degree random
/// symmetric off-diagonals with short-range locality; SPD by diagonal
/// dominance. Models tetrahedral meshes (3D_28984_Tetra class).
CsrMatrix random_fem(index_t n, index_t row_degree, std::uint64_t seed,
                     double locality = 0.02);

/// Circuit-like matrix: power-law degree distribution (few hub nets touching
/// many nodes), unsymmetric values, optionally unsymmetric pattern.
/// Models scircuit / trans4 / ASIC_*ks.
CsrMatrix circuit(index_t n, double avg_degree, std::uint64_t seed,
                  bool symmetric_pattern = true, index_t hub_count = 0);

/// Power-system matrix with dense row blocks: a sparse grid base plus
/// `dense_rows` rows each containing ~dense_row_nnz entries.
/// Models TSOPF_RS_* (RD ≈ 100, unsymmetric pattern).
CsrMatrix power_system(index_t n, index_t dense_rows, index_t dense_row_nnz,
                       std::uint64_t seed);

/// Banded matrix with long thin structure and strong sequential coupling:
/// produces many tiny levels like fem_filter / af_shell3.
CsrMatrix long_chain(index_t n, index_t band, index_t coupling,
                     std::uint64_t seed);

/// Make strictly diagonally dominant in place (|a_ii| > Σ|a_ij| + margin) so
/// ILU(0) exists and iterative methods converge — the usual synthetic-suite
/// convention.
void make_diagonally_dominant(CsrMatrix& a, value_t margin = 1.0);

// --- degenerate matrices (gen/degenerate.cpp) ------------------------------
// Robustness fixtures for the breakdown-safe pipeline. NOT part of
// suite_names(): the bench parity suite stays factorable.

/// 2-D Laplacian whose ROW-0 diagonal is exactly 0 — a level-0 row has no
/// lower dependencies, so ILU(0) breaks down deterministically there and a
/// Manteuffel diagonal shift repairs it.
CsrMatrix degenerate_zero_diag(index_t nx, index_t ny);

/// Symmetric saddle point [[A Bᵀ],[B 0]] (A = 2-D Laplacian, m constraint
/// rows with explicit 0.0 C-block diagonals). The last constraint is
/// redundant (all-zero row), so its pivot is exactly 0; the system is
/// indefinite (PCG → GMRES fallback) and singular-but-consistent for
/// right-hand sides of the form K x.
CsrMatrix degenerate_saddle(index_t nx, index_t ny, index_t m);

/// Near-singular pure-Neumann 2-D Laplacian: diag = neighbor count + eps.
/// SPD, factorable, condition ~1/eps — exercises the stagnation/non-finite
/// Krylov guards instead of the factorization path.
CsrMatrix degenerate_near_singular(index_t nx, index_t ny, double eps);

/// A named matrix of the synthetic suite, plus the statistics the paper
/// reports in Table I for its SuiteSparse counterpart.
struct SuiteEntry {
  std::string name;        ///< SuiteSparse counterpart name
  char group = 'B';        ///< paper group: 'A' (convergence set) or 'B'
  CsrMatrix matrix;
  // Paper-reported reference statistics (at full scale):
  index_t paper_n = 0;
  double paper_rd = 0;
  bool paper_sym_pattern = true;
  index_t paper_levels = 0;
};

/// Options controlling suite generation.
struct SuiteOptions {
  /// Scale factor on matrix dimension (1.0 = the paper's sizes; benches
  /// default to a smaller scale so the full harness runs in minutes).
  double scale = 0.05;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  /// Generate only group A (convergence study) matrices.
  bool group_a_only = false;
};

/// Build the full 18-matrix synthetic analog of paper Table I.
std::vector<SuiteEntry> make_suite(const SuiteOptions& opts = {});

/// Build one suite entry by its SuiteSparse counterpart name; throws if
/// unknown.
SuiteEntry make_suite_matrix(const std::string& name,
                             const SuiteOptions& opts = {});

/// Names in suite order.
std::vector<std::string> suite_names();

/// Names of the degenerate robustness fixtures (group 'D'). Disjoint from
/// suite_names() — the parity/bench suite never sees them; make_suite_matrix
/// accepts both sets.
std::vector<std::string> degenerate_names();

}  // namespace javelin::gen
