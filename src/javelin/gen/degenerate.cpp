// Degenerate matrices for the breakdown-safe pipeline (solver/robust.hpp):
// each one defeats plain ILU(0)+Krylov in a DIFFERENT way, and each failure
// mode is constructed to be guaranteed, not probabilistic.
//
// - zero diagonal on a LEVEL-0 row: an interior zero diagonal is usually
//   repaired by the elimination updates (the pivot accumulates -Σ l·u from
//   its lower entries), so the structurally-zero diagonal sits on row 0 —
//   no lower dependencies, the pivot stays exactly 0, the numeric phase
//   breaks down deterministically and a Manteuffel shift α repairs it.
// - saddle point with a redundant constraint: the [[A Bᵀ],[B 0]] block
//   system is symmetric indefinite (PCG breaks down → GMRES retry), and the
//   LAST constraint row is all-zero except an explicit 0.0 diagonal, so its
//   pivot is exactly 0 no matter what the elimination does above it.
// - near-singular Neumann Laplacian: SPD but with smallest eigenvalue ~eps;
//   factorization succeeds, the solve is a conditioning/stagnation
//   stressor for the residual guards rather than a breakdown.
#include <algorithm>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/coo.hpp"

namespace javelin::gen {

CsrMatrix degenerate_zero_diag(index_t nx, index_t ny) {
  CsrMatrix a = laplacian2d(nx, ny, 5);
  const index_t p = a.find(0, 0);
  JAVELIN_CHECK(p != kInvalidIndex, "laplacian2d lost its diagonal");
  // Row 0 has no lower entries in any level order (it depends on nothing),
  // so this exact 0 reaches finish_row unrepaired.
  a.values_mut()[static_cast<std::size_t>(p)] = 0;
  return a;
}

CsrMatrix degenerate_saddle(index_t nx, index_t ny, index_t m) {
  const CsrMatrix a = laplacian2d(nx, ny, 5);
  const index_t n = a.rows();
  JAVELIN_CHECK(m >= 1, "degenerate_saddle requires at least one constraint");
  // Keep constraint supports disjoint (stride >= 3 columns apart) so the
  // COO assembly stays duplicate-free.
  const index_t stride = std::max<index_t>(3, n / std::max<index_t>(m, 1));

  CooMatrix coo;
  coo.rows = coo.cols = n + m;
  coo.reserve(static_cast<std::size_t>(a.nnz()) +
              static_cast<std::size_t>(m) * 7);
  for (index_t r = 0; r < n; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.push(r, cols[k], vals[k]);
    }
  }
  // B (and Bᵀ, bitwise-symmetric): every constraint but the last couples
  // three grid unknowns. The last one couples NOTHING — a redundant
  // constraint whose row is identically zero off its explicit 0.0 diagonal.
  for (index_t i = 0; i + 1 < m; ++i) {
    for (index_t t = 0; t < 3; ++t) {
      const index_t c = i * stride + t;
      if (c >= n) break;
      coo.push(n + i, c, 1.0);
      coo.push(c, n + i, 1.0);
    }
  }
  // Explicit structural 0.0 diagonals keep the C block inside the ILU(0)
  // pattern (up-looking ILU requires a present diagonal); the VALUES are
  // exactly zero, which is the breakdown.
  for (index_t i = 0; i < m; ++i) coo.push(n + i, n + i, 0.0);
  return coo_to_csr(coo);
}

CsrMatrix degenerate_near_singular(index_t nx, index_t ny, double eps) {
  // Pure-Neumann 5-point Laplacian: diagonal = neighbor count, so the
  // constant vector is an eps-eigenvector — SPD but condition ~1/eps.
  const index_t n = nx * ny;
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 5);
  const auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      index_t degree = 0;
      if (i > 0) ++degree;
      if (i + 1 < nx) ++degree;
      if (j > 0) ++degree;
      if (j + 1 < ny) ++degree;
      if (j > 0) coo.push(r, id(i, j - 1), -1.0);
      if (i > 0) coo.push(r, id(i - 1, j), -1.0);
      coo.push(r, r, static_cast<value_t>(degree) + static_cast<value_t>(eps));
      if (i + 1 < nx) coo.push(r, id(i + 1, j), -1.0);
      if (j + 1 < ny) coo.push(r, id(i, j + 1), -1.0);
    }
  }
  return coo_to_csr(coo);
}

}  // namespace javelin::gen
