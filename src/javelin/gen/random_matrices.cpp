#include <algorithm>
#include <cmath>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/coo.hpp"
#include "javelin/support/rng.hpp"

namespace javelin::gen {

CsrMatrix random_fem(index_t n, index_t row_degree, std::uint64_t seed,
                     double locality) {
  // Random symmetric pattern with short-range locality: neighbour j of i is
  // drawn from a window of width locality*n around i (wrapping), which gives
  // the moderate level counts (tens) of mesh problems rather than the
  // near-diagonal structure of banded matrices.
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  const index_t half_edges = row_degree / 2;
  const auto window =
      std::max<index_t>(2, static_cast<index_t>(locality * static_cast<double>(n)));
  coo.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(half_edges) * 2 + 1));
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = 0; e < half_edges; ++e) {
      const index_t off = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(window))) + 1;
      const index_t j = (i + off) % n;
      if (j == i) continue;
      const value_t w = -(0.25 + rng.uniform());
      coo.push(i, j, w);
      coo.push(j, i, w);
    }
    coo.push(i, i, 1.0);
  }
  CsrMatrix a = coo_to_csr(coo);
  make_diagonally_dominant(a);
  return a;
}

CsrMatrix circuit(index_t n, double avg_degree, std::uint64_t seed,
                  bool symmetric_pattern, index_t hub_count) {
  // Power-law-ish: a ring of weak local coupling plus hubs connected to many
  // random nodes (supply nets / clock trees). Circuit matrices are very
  // sparse (RD 2.5–6.5 in Table I) and often have a few extremely dense rows.
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  if (hub_count == 0) hub_count = std::max<index_t>(1, n / 2000);
  const index_t local_edges =
      std::max<index_t>(1, static_cast<index_t>(avg_degree / 2.0));
  coo.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(local_edges) * 2 + 2));
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = 0; e < local_edges; ++e) {
      const index_t off = 1 + static_cast<index_t>(rng.below(16));
      const index_t j = (i + off) % n;
      if (j == i) continue;
      const value_t w = -(0.1 + rng.uniform());
      coo.push(i, j, w);
      if (symmetric_pattern) {
        coo.push(j, i, -(0.1 + rng.uniform()));  // symmetric pattern, unsymmetric values
      }
    }
    coo.push(i, i, 1.0);
  }
  // Hubs: first hub_count rows fan out widely.
  const index_t fan = std::max<index_t>(8, n / (hub_count * 8));
  for (index_t h = 0; h < hub_count; ++h) {
    for (index_t e = 0; e < fan; ++e) {
      const index_t j = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      if (j == h) continue;
      const value_t w = -(0.05 + 0.1 * rng.uniform());
      coo.push(h, j, w);
      if (symmetric_pattern) coo.push(j, h, w);
    }
  }
  CsrMatrix a = coo_to_csr(coo);
  make_diagonally_dominant(a);
  return a;
}

CsrMatrix power_system(index_t n, index_t dense_rows, index_t dense_row_nnz,
                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * 4 +
              static_cast<std::size_t>(dense_rows) * static_cast<std::size_t>(dense_row_nnz));
  // Sparse admittance-like base: short-range unsymmetric pattern.
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = 0; e < 3; ++e) {
      const index_t off = 1 + static_cast<index_t>(rng.below(12));
      const index_t j = (i + off) % n;
      if (j != i) coo.push(i, j, -(0.2 + rng.uniform()));
      // Unsymmetric: reverse edge only sometimes.
      if (rng.uniform() < 0.6 && j != i) coo.push(j, i, -(0.2 + rng.uniform()));
    }
    coo.push(i, i, 1.0);
  }
  // Dense rows spread through the back half of the matrix (power-flow
  // Jacobian blocks): these create the high-RD, unbalanced rows the SR lower
  // stage is designed for (paper §III-B).
  for (index_t d = 0; d < dense_rows; ++d) {
    const index_t r = n / 2 + static_cast<index_t>(
        rng.below(static_cast<std::uint64_t>(std::max<index_t>(1, n / 2))));
    for (index_t e = 0; e < dense_row_nnz; ++e) {
      const index_t j = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
      if (j != r) coo.push(r, j, -(0.01 + 0.05 * rng.uniform()));
    }
  }
  CsrMatrix a = coo_to_csr(coo);
  make_diagonally_dominant(a);
  return a;
}

CsrMatrix long_chain(index_t n, index_t band, index_t coupling,
                     std::uint64_t seed) {
  // Strong sequential coupling: each row depends on a few immediately
  // preceding rows, which forces hundreds of small levels (fem_filter /
  // af_shell3 class in Tables I/III).
  Xoshiro256 rng(seed);
  CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(coupling) * 2 + 3));
  for (index_t i = 0; i < n; ++i) {
    for (index_t e = 1; e <= coupling; ++e) {
      if (i - e >= 0) {
        const value_t w = -(0.3 + rng.uniform());
        coo.push(i, i - e, w);
        coo.push(i - e, i, w);
      }
    }
    // Occasional wide-band entries for realism.
    if (band > coupling && rng.uniform() < 0.3) {
      const index_t off =
          coupling + 1 + static_cast<index_t>(rng.below(static_cast<std::uint64_t>(band - coupling)));
      if (i - off >= 0) {
        const value_t w = -(0.1 + 0.2 * rng.uniform());
        coo.push(i, i - off, w);
        coo.push(i - off, i, w);
      }
    }
    coo.push(i, i, 1.0);
  }
  CsrMatrix a = coo_to_csr(coo);
  make_diagonally_dominant(a);
  return a;
}

void make_diagonally_dominant(CsrMatrix& a, value_t margin) {
  const index_t n = a.rows();
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    value_t off = 0;
    index_t diag_pos = kInvalidIndex;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      if (a.col_idx()[static_cast<std::size_t>(k)] == r) {
        diag_pos = k;
      } else {
        off += std::abs(a.values()[static_cast<std::size_t>(k)]);
      }
    }
    JAVELIN_CHECK(diag_pos != kInvalidIndex,
                  "make_diagonally_dominant requires a full diagonal");
    a.values_mut()[static_cast<std::size_t>(diag_pos)] = off + margin;
  }
}

}  // namespace javelin::gen
