#include "javelin/verify/verify.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace javelin::verify {

namespace {

constexpr std::size_t uz(std::int64_t i) noexcept {
  return static_cast<std::size_t>(i);
}

/// Capped diagnostic sink: a schedule with every wait dropped has O(deps)
/// findings; storing the first `cap` and counting the rest keeps
/// verification allocation-bounded while still reporting totals.
class Sink {
 public:
  Sink(VerifyReport& rep, index_t cap) : rep_(rep), cap_(cap) {}

  void add(DiagKind kind, index_t consumer_row, index_t producer_row,
           int consumer_thread, int producer_thread, index_t level,
           index_t item, std::string detail) {
    if (static_cast<index_t>(rep_.diagnostics.size()) < cap_) {
      rep_.diagnostics.push_back({kind, consumer_row, producer_row,
                                  consumer_thread, producer_thread, level,
                                  item, std::move(detail)});
    } else {
      ++rep_.suppressed;
    }
  }

  void structural(std::string detail) {
    add(DiagKind::kMalformed, kInvalidIndex, kInvalidIndex, -1, -1,
        kInvalidIndex, kInvalidIndex, std::move(detail));
  }

  bool has(DiagKind kind) const {
    for (const ScheduleDiagnostic& d : rep_.diagnostics) {
      if (d.kind == kind) return true;
    }
    return false;
  }

 private:
  VerifyReport& rep_;
  index_t cap_;
};

bool monotone(const std::vector<index_t>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) return false;
  }
  return true;
}

}  // namespace

const char* diag_kind_name(DiagKind k) noexcept {
  switch (k) {
    case DiagKind::kMalformed: return "malformed";
    case DiagKind::kPartition: return "partition";
    case DiagKind::kLevelOrder: return "level_order";
    case DiagKind::kLevelDependency: return "level_dependency";
    case DiagKind::kWaitMetadata: return "wait_metadata";
    case DiagKind::kDeadlock: return "deadlock";
    case DiagKind::kUncoveredDependency: return "uncovered_dependency";
    case DiagKind::kRetargetMismatch: return "retarget_mismatch";
    case DiagKind::kStatsMismatch: return "stats_mismatch";
    case DiagKind::kRegimeTag: return "regime_tag";
  }
  return "unknown";
}

std::string ScheduleDiagnostic::to_string() const {
  std::ostringstream os;
  os << '[' << diag_kind_name(kind) << ']';
  if (consumer_row != kInvalidIndex) {
    os << " row " << consumer_row;
    if (consumer_thread >= 0) os << " (thread " << consumer_thread;
    if (consumer_thread >= 0 && item != kInvalidIndex) os << ", item " << item;
    if (consumer_thread >= 0 && level != kInvalidIndex)
      os << ", level " << level;
    if (consumer_thread >= 0) os << ')';
  }
  if (producer_row != kInvalidIndex) {
    os << " <- row " << producer_row;
    if (producer_thread >= 0) os << " (thread " << producer_thread << ')';
  }
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "ok: " << stats.deps_cross_thread << " cross-thread deps ("
       << stats.deps_covered_direct << " direct, "
       << stats.deps_covered_transitive << " transitive";
    if (stats.deps_covered_regime > 0) {
      os << ", " << stats.deps_covered_regime << " regime";
    }
    os << "), " << stats.waits_total << " waits, " << stats.items
       << " items, " << stats.levels << " levels";
    return os.str();
  }
  os << diagnostics.size() + static_cast<std::size_t>(suppressed)
     << " diagnostic(s)";
  const std::size_t show = std::min<std::size_t>(diagnostics.size(), 4);
  for (std::size_t i = 0; i < show; ++i) {
    os << (i == 0 ? ": " : "; ") << diagnostics[i].to_string();
  }
  if (diagnostics.size() + static_cast<std::size_t>(suppressed) > show) {
    os << "; ...";
  }
  return os.str();
}

VerifyReport verify_schedule(const ExecSchedule& s, const DepsFn& deps,
                             index_t max_diagnostics) {
  VerifyReport rep;
  Sink sink(rep, max_diagnostics);

  // ---- Phase 0: shape. Everything downstream indexes through these
  // arrays, so a shape violation aborts the analysis (one diagnostic, no
  // undefined behavior) instead of limping on.
  const index_t n_rows = static_cast<index_t>(s.rows.size());
  const index_t n_serial = static_cast<index_t>(s.serial_order.size());

  if (s.thread_ptr.empty()) {
    // Default-constructed schedule: acceptable only if it schedules nothing
    // (ilu keeps empty corner schedules around for pure-triangular plans).
    if (n_rows != 0 || n_serial != 0) {
      sink.structural("thread_ptr empty but rows are scheduled");
    }
    return rep;
  }

  const int T = s.threads;
  if (T < 1) {
    sink.structural("threads < 1");
    return rep;
  }
  if (static_cast<index_t>(s.thread_ptr.size()) !=
          static_cast<index_t>(T) + 1 ||
      s.thread_ptr.front() != 0 || !monotone(s.thread_ptr)) {
    sink.structural("thread_ptr is not a monotone (threads+1)-pointer array");
    return rep;
  }
  const index_t n_items = s.thread_ptr.back();
  if (n_items > 0 &&
      (static_cast<index_t>(s.item_ptr.size()) != n_items + 1 ||
       s.item_ptr.front() != 0 || !monotone(s.item_ptr) ||
       s.item_ptr.back() != n_rows)) {
    sink.structural("item_ptr does not partition rows into items");
    return rep;
  }
  if (s.level_ptr.empty() || s.level_ptr.front() != 0 ||
      !monotone(s.level_ptr) || s.level_ptr.back() != n_serial) {
    sink.structural("level_ptr does not partition serial_order into levels");
    return rep;
  }
  const index_t n_levels = static_cast<index_t>(s.level_ptr.size()) - 1;
  if (s.num_levels != n_levels) {
    sink.add(DiagKind::kStatsMismatch, kInvalidIndex, kInvalidIndex, -1, -1,
             kInvalidIndex, kInvalidIndex,
             "stored num_levels disagrees with level_ptr");
  }
  // Per-level regime tags: a malformed vector makes the hybrid executor's
  // segment walk meaningless (and its wait pruning unjustified), so flag it
  // and analyze the schedule as uniform under `backend` — which then
  // reports the pruned waits as the races they would be.
  bool hybrid = !s.level_tags.empty();
  if (hybrid && static_cast<index_t>(s.level_tags.size()) != n_levels) {
    sink.add(DiagKind::kRegimeTag, kInvalidIndex, kInvalidIndex, -1, -1,
             kInvalidIndex, kInvalidIndex,
             "level_tags length disagrees with level_ptr");
    hybrid = false;
  }
  if (hybrid) {
    for (index_t l = 0; l < n_levels; ++l) {
      if (s.level_tags[uz(l)] >
          static_cast<std::uint8_t>(LevelRegime::kSerial)) {
        sink.add(DiagKind::kRegimeTag, kInvalidIndex, kInvalidIndex, -1, -1,
                 l, kInvalidIndex, "unknown regime tag value");
        hybrid = false;
        break;
      }
    }
  }
  for (index_t k = 0; k < n_rows; ++k) {
    const index_t r = s.rows[uz(k)];
    if (r < 0 || r >= s.n_total) {
      sink.structural("rows[] entry out of [0, n_total)");
      return rep;
    }
  }
  for (index_t k = 0; k < n_serial; ++k) {
    const index_t r = s.serial_order[uz(k)];
    if (r < 0 || r >= s.n_total) {
      sink.structural("serial_order[] entry out of [0, n_total)");
      return rep;
    }
  }
  // Wait arrays: a shape violation here only disables the happens-before
  // phase — partition and level analysis do not read them.
  bool waits_ok = true;
  if (n_items > 0) {
    if (static_cast<index_t>(s.wait_ptr.size()) != n_items + 1 ||
        s.wait_ptr.front() != 0 || !monotone(s.wait_ptr) ||
        static_cast<index_t>(s.wait_thread.size()) != s.wait_ptr.back() ||
        static_cast<index_t>(s.wait_count.size()) != s.wait_ptr.back()) {
      sink.structural("wait_ptr/wait_thread/wait_count shapes disagree");
      waits_ok = false;
    } else if (s.deps_kept != s.wait_ptr.back()) {
      sink.add(DiagKind::kStatsMismatch, kInvalidIndex, kInvalidIndex, -1, -1,
               kInvalidIndex, kInvalidIndex,
               "stored deps_kept disagrees with wait_ptr");
    }
  }

  // ---- Phase 1: partition — the items and the retained level structure
  // must name the same row set, each row exactly once on both sides. Along
  // the way record the producer maps the happens-before phase consumes
  // (owner thread, item position, global rows[] position).
  std::vector<index_t> owner(uz(s.n_total), kInvalidIndex);
  std::vector<index_t> posn(uz(s.n_total), kInvalidIndex);
  std::vector<index_t> item_at(uz(s.n_total), kInvalidIndex);
  std::vector<index_t> first_pos(uz(s.n_total), kInvalidIndex);
  for (int t = 0; t < T; ++t) {
    for (index_t i = s.thread_ptr[uz(t)]; i < s.thread_ptr[uz(t) + 1]; ++i) {
      for (index_t k = s.item_ptr[uz(i)]; k < s.item_ptr[uz(i) + 1]; ++k) {
        const index_t r = s.rows[uz(k)];
        if (first_pos[uz(r)] != kInvalidIndex) {
          sink.add(DiagKind::kPartition, r, kInvalidIndex, t,
                   static_cast<int>(owner[uz(r)]), kInvalidIndex, i,
                   "row executed by more than one item");
        } else {
          first_pos[uz(r)] = k;
        }
        owner[uz(r)] = static_cast<index_t>(t);
        posn[uz(r)] = i - s.thread_ptr[uz(t)];
        item_at[uz(r)] = i;
      }
    }
  }
  std::vector<index_t> level_of(uz(s.n_total), kInvalidIndex);
  for (index_t l = 0; l < n_levels; ++l) {
    for (index_t k = s.level_ptr[uz(l)]; k < s.level_ptr[uz(l) + 1]; ++k) {
      const index_t r = s.serial_order[uz(k)];
      if (level_of[uz(r)] != kInvalidIndex) {
        sink.add(DiagKind::kPartition, r, kInvalidIndex, -1, -1, l,
                 kInvalidIndex, "row listed twice in the level structure");
      }
      level_of[uz(r)] = l;
    }
  }
  for (index_t r = 0; r < s.n_total; ++r) {
    const bool in_items = first_pos[uz(r)] != kInvalidIndex;
    const bool in_levels = level_of[uz(r)] != kInvalidIndex;
    if (in_levels && !in_items) {
      sink.add(DiagKind::kPartition, r, kInvalidIndex, -1, -1, level_of[uz(r)],
               kInvalidIndex, "row in the level structure is never executed");
    } else if (in_items && !in_levels) {
      sink.add(DiagKind::kPartition, r, kInvalidIndex,
               static_cast<int>(owner[uz(r)]), -1, kInvalidIndex,
               item_at[uz(r)],
               "executed row is absent from the level structure");
    }
  }
  const bool partition_clean = !sink.has(DiagKind::kPartition);

  // ---- Phase 2: level soundness. (a) Items must not mix levels and each
  // thread's item sequence must be level-monotone — the P2P pruning
  // argument ("dependencies live in strictly earlier items on every
  // thread") rests on exactly this. (b) Every scheduled dependency must
  // live in a STRICTLY earlier level: the barrier backend synchronizes only
  // between levels, so a same-or-later-level dependency is a data race
  // under kBarrier no matter what the wait lists say.
  std::vector<index_t> item_level(uz(n_items), kInvalidIndex);
  for (int t = 0; t < T; ++t) {
    index_t prev_level = kInvalidIndex;
    for (index_t i = s.thread_ptr[uz(t)]; i < s.thread_ptr[uz(t) + 1]; ++i) {
      for (index_t k = s.item_ptr[uz(i)]; k < s.item_ptr[uz(i) + 1]; ++k) {
        const index_t r = s.rows[uz(k)];
        const index_t lv = level_of[uz(r)];
        if (lv == kInvalidIndex) continue;  // partition already flagged it
        if (item_level[uz(i)] == kInvalidIndex) {
          item_level[uz(i)] = lv;
        } else if (item_level[uz(i)] != lv) {
          sink.add(DiagKind::kLevelOrder, r, kInvalidIndex, t, -1, lv, i,
                   "item mixes rows of different levels");
        }
      }
      if (item_level[uz(i)] != kInvalidIndex) {
        if (prev_level != kInvalidIndex && item_level[uz(i)] < prev_level) {
          sink.add(DiagKind::kLevelOrder,
                   s.item_ptr[uz(i)] < s.item_ptr[uz(i) + 1]
                       ? s.rows[uz(s.item_ptr[uz(i)])]
                       : kInvalidIndex,
                   kInvalidIndex, t, -1, item_level[uz(i)], i,
                   "thread's items are not in level order");
        }
        prev_level = item_level[uz(i)];
      }
    }
  }
  for (index_t l = 0; l < n_levels; ++l) {
    for (index_t k = s.level_ptr[uz(l)]; k < s.level_ptr[uz(l) + 1]; ++k) {
      const index_t r = s.serial_order[uz(k)];
      deps(r, [&](index_t d) {
        if (d < 0 || d >= s.n_total) {
          sink.structural("dependency row out of [0, n_total)");
          return;
        }
        if (level_of[uz(d)] == kInvalidIndex) return;  // outside the set
        if (level_of[uz(d)] >= l) {
          sink.add(DiagKind::kLevelDependency, r, d,
                   static_cast<int>(owner[uz(r)]),
                   static_cast<int>(owner[uz(d)]), l, item_at[uz(r)],
                   "dependency is not in a strictly earlier level (barrier "
                   "backend would race)");
        }
      });
    }
  }

  rep.stats.items = n_items;
  rep.stats.levels = n_levels;
  if (!waits_ok) return rep;
  rep.stats.waits_total = n_items > 0 ? s.wait_ptr.back() : 0;

  // ---- Phase 3: wait metadata. Invalid edges are diagnosed and excluded
  // from the graph phases (they cannot be given a meaning).
  const index_t n_waits = rep.stats.waits_total;
  std::vector<char> wait_valid(uz(n_waits), 1);
  auto items_of = [&](index_t p) {
    return s.thread_ptr[uz(p) + 1] - s.thread_ptr[uz(p)];
  };
  auto item_head_row = [&](index_t i) {
    return s.item_ptr[uz(i)] < s.item_ptr[uz(i) + 1]
               ? s.rows[uz(s.item_ptr[uz(i)])]
               : kInvalidIndex;
  };
  for (int t = 0; t < T; ++t) {
    for (index_t i = s.thread_ptr[uz(t)]; i < s.thread_ptr[uz(t) + 1]; ++i) {
      for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
        const index_t pt = s.wait_thread[uz(w)];
        const index_t cnt = s.wait_count[uz(w)];
        const char* what = nullptr;
        if (pt < 0 || pt >= static_cast<index_t>(T)) {
          what = "wait names a thread outside the team";
        } else if (pt == static_cast<index_t>(t)) {
          what = "item waits on its own thread";
        } else if (cnt < 1) {
          what = "wait count < 1 is a no-op (dependency effectively dropped)";
        } else if (cnt > items_of(pt)) {
          what = "wait count exceeds the producer thread's item count (can "
                 "never be satisfied)";
        }
        if (what != nullptr) {
          sink.add(DiagKind::kWaitMetadata, item_head_row(i), kInvalidIndex, t,
                   pt >= 0 && pt < static_cast<index_t>(T)
                       ? static_cast<int>(pt)
                       : -1,
                   item_level[uz(i)], i, what);
          wait_valid[uz(w)] = 0;
        }
      }
    }
  }

  // ---- Phase 4: deadlock. Kahn's toposort over the item graph — edges are
  // per-thread program order plus (producer item -> waiting item) for every
  // valid wait. Hybrid schedules add VIRTUAL SYNC NODES for the executor's
  // extra synchronization (segment-entry barriers, per-level barriers of
  // kBarrier runs, and the serialization of kSerial levels, which orders
  // levels just as hard): every thread's last item below the sync level
  // precedes the node, every thread's first item at or above it follows,
  // and the nodes chain. Items left unprocessed sit on a cycle (or behind
  // one): at runtime they would spin forever.
  std::vector<index_t> thread_of(uz(n_items), 0);
  for (int t = 0; t < T; ++t) {
    for (index_t i = s.thread_ptr[uz(t)]; i < s.thread_ptr[uz(t) + 1]; ++i) {
      thread_of[uz(i)] = static_cast<index_t>(t);
    }
  }
  // Sync points: level l has one at entry unless both l-1 and l are kP2P
  // levels of the same segment — the only level boundary the hybrid
  // executor crosses without synchronizing. Uniform schedules have none.
  std::vector<index_t> sync_levels;
  std::vector<index_t> sync_of_level(uz(n_levels), kInvalidIndex);
  if (hybrid) {
    const auto tag = [&](index_t l) {
      return static_cast<LevelRegime>(s.level_tags[uz(l)]);
    };
    for (index_t l = 0; l < n_levels; ++l) {
      if (l == 0 || tag(l) != LevelRegime::kP2P ||
          tag(l - 1) != LevelRegime::kP2P) {
        sync_levels.push_back(l);
      }
      sync_of_level[uz(l)] = static_cast<index_t>(sync_levels.size()) - 1;
    }
  }
  const index_t n_sync = static_cast<index_t>(sync_levels.size());
  const index_t n_nodes = n_items + n_sync;
  std::vector<std::pair<index_t, index_t>> sync_edges;
  for (index_t j = 1; j < n_sync; ++j) {
    sync_edges.emplace_back(n_items + j - 1, n_items + j);
  }
  if (n_sync > 0) {
    for (int t = 0; t < T; ++t) {
      index_t j = 0;
      index_t last_item = kInvalidIndex;
      for (index_t i = s.thread_ptr[uz(t)]; i < s.thread_ptr[uz(t) + 1];
           ++i) {
        const index_t lv = item_level[uz(i)];
        if (lv == kInvalidIndex) continue;
        const index_t j0 = j;
        while (j < n_sync && sync_levels[uz(j)] <= lv) {
          if (last_item != kInvalidIndex) {
            sync_edges.emplace_back(last_item, n_items + j);
          }
          ++j;
        }
        if (j > j0) sync_edges.emplace_back(n_items + j - 1, i);
        last_item = i;
      }
      for (; j < n_sync; ++j) {
        if (last_item != kInvalidIndex) {
          sync_edges.emplace_back(last_item, n_items + j);
        }
      }
    }
  }
  std::vector<index_t> indeg(uz(n_nodes), 0);
  std::vector<index_t> succ_ptr(uz(n_nodes) + 1, 0);
  auto wait_producer_item = [&](index_t w) {
    return s.thread_ptr[uz(s.wait_thread[uz(w)])] + s.wait_count[uz(w)] - 1;
  };
  for (index_t i = 0; i < n_items; ++i) {
    const int t = static_cast<int>(thread_of[uz(i)]);
    if (i != s.thread_ptr[uz(t)]) {
      ++succ_ptr[uz(i - 1) + 1];
      ++indeg[uz(i)];
    }
    for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
      if (!wait_valid[uz(w)]) continue;
      ++succ_ptr[uz(wait_producer_item(w)) + 1];
      ++indeg[uz(i)];
    }
  }
  for (const auto& [u, v] : sync_edges) {
    ++succ_ptr[uz(u) + 1];
    ++indeg[uz(v)];
  }
  for (std::size_t i = 1; i < succ_ptr.size(); ++i) {
    succ_ptr[i] += succ_ptr[i - 1];
  }
  std::vector<index_t> succ(uz(n_nodes > 0 ? succ_ptr.back() : 0), 0);
  {
    std::vector<index_t> cursor(succ_ptr.begin(), succ_ptr.end() - 1);
    for (index_t i = 0; i < n_items; ++i) {
      const int t = static_cast<int>(thread_of[uz(i)]);
      if (i != s.thread_ptr[uz(t)]) {
        succ[uz(cursor[uz(i - 1)]++)] = i;
      }
      for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
        if (!wait_valid[uz(w)]) continue;
        succ[uz(cursor[uz(wait_producer_item(w))]++)] = i;
      }
    }
    for (const auto& [u, v] : sync_edges) {
      succ[uz(cursor[uz(u)]++)] = v;
    }
  }
  std::vector<index_t> topo;
  topo.reserve(uz(n_nodes));
  for (index_t i = 0; i < n_nodes; ++i) {
    if (indeg[uz(i)] == 0) topo.push_back(i);
  }
  for (std::size_t head = 0; head < topo.size(); ++head) {
    const index_t i = topo[head];
    for (index_t q = succ_ptr[uz(i)]; q < succ_ptr[uz(i) + 1]; ++q) {
      const index_t j = succ[uz(q)];
      if (--indeg[uz(j)] == 0) topo.push_back(j);
    }
  }
  index_t items_done = 0;
  for (index_t u : topo) {
    if (u < n_items) ++items_done;
  }
  if (items_done < n_items) {
    std::vector<char> processed(uz(n_items), 0);
    for (index_t i : topo) {
      if (i < n_items) processed[uz(i)] = 1;
    }
    for (index_t i = 0; i < n_items; ++i) {
      if (processed[uz(i)]) continue;
      // Attach the first blocking wait edge for precision; a stuck
      // predecessor chain is reported on the item that owns the stuck wait.
      index_t pr = kInvalidIndex;
      int pt = -1;
      for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
        if (!wait_valid[uz(w)]) continue;
        const index_t p_item = wait_producer_item(w);
        if (!processed[uz(p_item)]) {
          pr = item_head_row(p_item);
          pt = static_cast<int>(s.wait_thread[uz(w)]);
          break;
        }
      }
      sink.add(DiagKind::kDeadlock, item_head_row(i), pr,
               static_cast<int>(thread_of[uz(i)]), pt, item_level[uz(i)], i,
               "item can never start: cyclic or unsatisfiable wait chain");
    }
  }

  // ---- Phase 5: happens-before coverage via vector clocks. Processing
  // items in topological order, clock[i][p] = number of items thread p is
  // guaranteed to have PUBLISHED once item i has published: program order
  // carries the previous item's clock, each valid wait merges the producer
  // item's clock (the P2P executor's acquire-load of the progress counter
  // makes everything the producer saw visible too — transitive publish
  // order). A cross-thread dependency on row d owned by thread p at item
  // position q is covered iff the consumer's pre-execution clock has
  // clock[p] >= q+1; it is DIRECT if one of the consuming item's own waits
  // reaches q+1, else TRANSITIVE (the sparsification's savings, quantified).
  // Sync nodes carry clocks too: a node's clock is the JOIN of everything
  // its predecessors published (accumulated as they process, complete by
  // the time the node pops in topo order), and an item at level lv merges
  // the clock of its nearest preceding sync node — that is exactly what
  // the hybrid executor's barrier guarantees, and what justifies the waits
  // apply_level_tags pruned (counted as deps_covered_regime).
  std::vector<index_t> clock(uz(n_nodes) * uz(T), 0);
  std::vector<index_t> before(uz(T), 0);
  std::vector<index_t> direct_high(uz(T), 0);
  VerifyStats& st = rep.stats;
  auto push_to_sync_succs = [&](index_t u) {
    const index_t* cu = clock.data() + uz(u) * uz(T);
    for (index_t q = succ_ptr[uz(u)]; q < succ_ptr[uz(u) + 1]; ++q) {
      const index_t v = succ[uz(q)];
      if (v < n_items) continue;
      index_t* cv = clock.data() + uz(v) * uz(T);
      for (int p = 0; p < T; ++p) {
        cv[uz(p)] = std::max(cv[uz(p)], cu[uz(p)]);
      }
    }
  };
  for (std::size_t head = 0; head < topo.size(); ++head) {
    const index_t i = topo[head];
    if (i >= n_items) {
      push_to_sync_succs(i);  // forward the join along the sync chain
      continue;
    }
    const int t = static_cast<int>(thread_of[uz(i)]);
    if (i == s.thread_ptr[uz(t)]) {
      std::fill(before.begin(), before.end(), 0);
    } else {
      const index_t* prev = clock.data() + uz(i - 1) * uz(T);
      std::copy(prev, prev + T, before.begin());
    }
    const index_t* sync_floor = nullptr;
    if (n_sync > 0 && item_level[uz(i)] != kInvalidIndex &&
        sync_of_level[uz(item_level[uz(i)])] != kInvalidIndex) {
      sync_floor = clock.data() +
                   uz(n_items + sync_of_level[uz(item_level[uz(i)])]) * uz(T);
      for (int p = 0; p < T; ++p) {
        before[uz(p)] = std::max(before[uz(p)], sync_floor[uz(p)]);
      }
    }
    std::fill(direct_high.begin(), direct_high.end(), 0);
    for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
      if (!wait_valid[uz(w)]) continue;
      const index_t pt = s.wait_thread[uz(w)];
      const index_t cnt = s.wait_count[uz(w)];
      direct_high[uz(pt)] = std::max(direct_high[uz(pt)], cnt);
      const index_t* pc = clock.data() + uz(wait_producer_item(w)) * uz(T);
      for (int p = 0; p < T; ++p) {
        before[uz(p)] = std::max(before[uz(p)], pc[uz(p)]);
      }
    }
    for (index_t k = s.item_ptr[uz(i)]; k < s.item_ptr[uz(i) + 1]; ++k) {
      const index_t r = s.rows[uz(k)];
      deps(r, [&](index_t d) {
        if (d < 0 || d >= s.n_total) return;  // diagnosed in phase 2
        const index_t ot = owner[uz(d)];
        if (ot == kInvalidIndex) {
          ++st.deps_external;
          return;
        }
        if (ot == static_cast<index_t>(t)) {
          ++st.deps_same_thread;
          const bool ordered =
              item_at[uz(d)] < i ||
              (item_at[uz(d)] == i && first_pos[uz(d)] < k);
          if (!ordered) {
            sink.add(DiagKind::kUncoveredDependency, r, d, t, t,
                     level_of[uz(r)], i,
                     "same-thread dependency executes at or after its "
                     "consumer in program order");
          }
          return;
        }
        ++st.deps_cross_thread;
        const index_t need = posn[uz(d)] + 1;
        if (before[uz(ot)] >= need) {
          if (direct_high[uz(ot)] >= need) {
            ++st.deps_covered_direct;
          } else if (sync_floor != nullptr && sync_floor[uz(ot)] >= need) {
            ++st.deps_covered_regime;
          } else {
            ++st.deps_covered_transitive;
          }
        } else {
          ++st.deps_uncovered;
          sink.add(DiagKind::kUncoveredDependency, r, d, t,
                   static_cast<int>(ot), level_of[uz(r)], i,
                   "no wait or transitive publish chain orders the producer "
                   "before the consumer (latent data race)");
        }
      });
    }
    index_t* after = clock.data() + uz(i) * uz(T);
    std::copy(before.begin(), before.end(), after);
    after[uz(t)] = (i - s.thread_ptr[uz(t)]) + 1;
    if (n_sync > 0) push_to_sync_succs(i);
  }

  // Stats bookkeeping is only comparable when the row sets agree and every
  // item was enumerated (duplicated rows double-count their dependencies;
  // deadlocked items are never reached).
  if (partition_clean && items_done == n_items &&
      s.deps_total != st.deps_cross_thread) {
    sink.add(DiagKind::kStatsMismatch, kInvalidIndex, kInvalidIndex, -1, -1,
             kInvalidIndex, kInvalidIndex,
             "stored deps_total disagrees with the dependency enumeration");
  }
  return rep;
}

VerifyReport verify_retarget(const ExecSchedule& s, const DepsFn& deps,
                             int threads, index_t max_diagnostics) {
  // A schedule with no retained level structure cannot be retargeted;
  // verifying it as-is reports whatever is wrong with it.
  if (s.level_ptr.empty()) return verify_schedule(s, deps, max_diagnostics);

  ExecSchedule fresh =
      build_exec_schedule(s.backend, s.n_total, s.level_ptr, s.serial_order,
                          deps, threads, s.chunk_rows);
  fresh.spin_budget = s.spin_budget;
  if (!s.level_tags.empty()) apply_level_tags(fresh, s.level_tags);
  const ExecSchedule rt = retarget(s, deps, threads);
  VerifyReport rep = verify_schedule(rt, deps, max_diagnostics);
  Sink sink(rep, max_diagnostics);
  auto mismatch = [&](const char* field) {
    sink.add(DiagKind::kRetargetMismatch, kInvalidIndex, kInvalidIndex, -1,
             -1, kInvalidIndex, kInvalidIndex,
             std::string("retargeted schedule differs from a fresh build: ") +
                 field);
  };
  if (rt.backend != fresh.backend) mismatch("backend");
  if (rt.threads != fresh.threads) mismatch("threads");
  if (rt.n_total != fresh.n_total) mismatch("n_total");
  if (rt.chunk_rows != fresh.chunk_rows) mismatch("chunk_rows");
  if (rt.thread_ptr != fresh.thread_ptr) mismatch("thread_ptr");
  if (rt.item_ptr != fresh.item_ptr) mismatch("item_ptr");
  if (rt.rows != fresh.rows) mismatch("rows");
  if (rt.wait_ptr != fresh.wait_ptr) mismatch("wait_ptr");
  if (rt.wait_thread != fresh.wait_thread) mismatch("wait_thread");
  if (rt.wait_count != fresh.wait_count) mismatch("wait_count");
  if (rt.level_ptr != fresh.level_ptr) mismatch("level_ptr");
  if (rt.serial_order != fresh.serial_order) mismatch("serial_order");
  if (rt.level_tags != fresh.level_tags) mismatch("level_tags");
  if (rt.spin_budget != fresh.spin_budget) mismatch("spin_budget");
  if (rt.deps_total != fresh.deps_total) mismatch("deps_total");
  if (rt.deps_kept != fresh.deps_kept) mismatch("deps_kept");
  if (rt.num_levels != fresh.num_levels) mismatch("num_levels");
  return rep;
}

void verify_schedule_or_throw(const ExecSchedule& s, const DepsFn& deps,
                              const char* what) {
  const VerifyReport rep = verify_schedule(s, deps, /*max_diagnostics=*/8);
  if (!rep.ok()) {
    throw Error(std::string("schedule verification failed (") + what +
                "): " + rep.summary());
  }
}

}  // namespace javelin::verify
