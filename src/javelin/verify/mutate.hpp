// Adversarial self-test for the schedule verifier: seeded single-defect
// mutations of a correct ExecSchedule, one per defect class the analyzer
// claims to catch. test_verify applies each mutation and asserts the
// verifier flags it with row-precise diagnostics — the analyzer is itself
// tested adversarially, mirroring how test_robust fault-injects the exec
// path.
//
// Wait-level mutations (drop / weaken / redirect) have a subtlety: the
// builder prunes same-consumer-thread redundancy but NOT redundancy through
// third-thread chains, so a stored wait CAN be transitively covered and
// dropping it is then behavior-preserving — no defect to detect. Those
// mutations therefore search candidate sites (seed-deterministically) for a
// LOAD-BEARING wait, using the verifier itself as the oracle, and commit
// the first mutation that actually breaks coverage. At least one such site
// exists in any schedule with cross-thread dependencies: the first wait in
// topological order has nothing before it to cover its dependency.
#pragma once

#include <cstdint>
#include <string>

#include "javelin/exec/schedule.hpp"
#include "javelin/support/types.hpp"

namespace javelin::verify {

enum class Mutation {
  kDropWait,           ///< remove a load-bearing stored wait
  kWeakenWait,         ///< decrement a load-bearing wait's count
  kRedirectWait,       ///< point a load-bearing wait at the wrong thread
  kMoveRowAcrossLevel, ///< shift a level_ptr boundary by one row
  kDuplicateRow,       ///< one row executed twice, another lost
  kCorruptWaitCount,   ///< count beyond the producer's item count
  kRegimeRetag,        ///< retag a synced level kP2P, orphaning pruned waits
  kRegimeTagShape,     ///< truncate level_tags / plant an unknown tag value
};

inline constexpr Mutation kAllMutations[] = {
    Mutation::kDropWait,           Mutation::kWeakenWait,
    Mutation::kRedirectWait,       Mutation::kMoveRowAcrossLevel,
    Mutation::kDuplicateRow,       Mutation::kCorruptWaitCount,
};

/// Regime-boundary defect classes. Only meaningful on HYBRID schedules
/// (non-empty level_tags, waits pruned to regime floors); kept out of
/// kAllMutations so the uniform-schedule sweeps stay regime-free.
inline constexpr Mutation kRegimeMutations[] = {
    Mutation::kRegimeRetag,
    Mutation::kRegimeTagShape,
};

const char* mutation_name(Mutation m) noexcept;

struct MutationResult {
  bool applied = false;            ///< false: schedule has no valid site
  index_t consumer_row = kInvalidIndex;  ///< row whose ordering broke
  index_t producer_row = kInvalidIndex;  ///< counterpart row, if meaningful
  std::string detail;              ///< what was mutated, for test logs
};

/// Apply one seeded mutation in place. `deps` must be the enumeration the
/// schedule was built with (the drop/weaken/redirect search verifies
/// candidates against it). Deterministic for a given (schedule, m, seed).
/// Mutations keep the stored stats consistent where they can, so the
/// verifier's finding is the SEMANTIC defect, not bookkeeping drift.
MutationResult apply_mutation(ExecSchedule& s, Mutation m, const DepsFn& deps,
                              std::uint64_t seed);

}  // namespace javelin::verify
