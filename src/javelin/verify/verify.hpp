// Static schedule verification: prove an ExecSchedule correct WITHOUT
// executing it.
//
// Bitwise parity tests sample a handful of team sizes; TSan catches a
// dropped wait only if the interleaving happens to lose the race. This
// analyzer instead reconstructs the true row-level RAW dependencies from the
// same DepsFn closures retarget() consumes and proves, per dependency, that
// the schedule orders producer before consumer:
//
//   * partition — every row of the retained level structure is executed by
//     exactly one item, and no item executes a row outside it;
//   * level soundness — items never mix levels, per-thread item order is
//     level-monotone, and every scheduled dependency lives in a STRICTLY
//     earlier level (the barrier backend synchronizes only between levels,
//     so a same-level dependency is a data race under kBarrier);
//   * happens-before coverage — for the P2P backend, intra-thread program
//     order plus the sparsified wait edges must cover every cross-thread
//     dependency. The proof runs a vector clock over the item graph
//     (Lamport-style): item i's clock entry for thread p is the number of
//     items p is guaranteed to have published before i starts. A dependency
//     is COVERED-DIRECT when one of the consuming item's own waits reaches
//     the producer's position, COVERED-TRANSITIVE when only the transitive
//     publish order does (the pruning the paper's sparsification performs),
//     and UNCOVERED otherwise — an uncovered edge is a latent data race;
//   * deadlock freedom — the item graph (program order + wait edges) must be
//     acyclic; an item waiting on a counter value its producer thread only
//     reaches after that item publishes can never start.
//
// Both the level check and the wait check always run regardless of
// s.backend: set_exec_backend() flips the tag in place, so a schedule must
// be sound for either executor at all times.
//
// HYBRID schedules (non-empty level_tags) add synchronization the stored
// waits no longer carry: the executor barriers at every same-tag segment
// entry, after every kBarrier level, and runs kSerial levels alone on
// thread 0 — and apply_level_tags prunes every wait those sync points
// already cover. The analyzer models each such sync point as a virtual
// node in the item graph (predecessors: every thread's last item below the
// sync level; successors: every thread's first item at or above it, plus
// the next sync node) and joins clocks across it, so pruned waits are
// proven covered (deps_covered_regime) rather than misreported as races —
// and a tag edit that orphans a pruned wait IS reported (kUncoveredDependency
// or kDeadlock). Malformed tag vectors are kRegimeTag and analyzed as
// uniform.
//
// Diagnostics are structured (ScheduleDiagnostic: consumer row, producer
// row, threads, level, item) so tests can assert row-precise detection and
// the bench can serialize verification stats (schema v5).
#pragma once

#include <string>
#include <vector>

#include "javelin/exec/schedule.hpp"
#include "javelin/support/types.hpp"

namespace javelin::verify {

/// Defect classes the analyzer distinguishes. Every diagnostic carries one.
enum class DiagKind {
  kMalformed,            ///< arrays not indexable / indices out of range
  kPartition,            ///< row missing, duplicated, or unknown
  kLevelOrder,           ///< item mixes levels / thread items out of level order
  kLevelDependency,      ///< dependency not in a strictly earlier level
  kWaitMetadata,         ///< wait names self / bad thread / unsatisfiable count
  kDeadlock,             ///< cycle in program-order + wait-edge item graph
  kUncoveredDependency,  ///< cross-thread RAW dep with no happens-before edge
  kRetargetMismatch,     ///< retarget(s, deps, T) differs from a fresh build
  kStatsMismatch,        ///< stored deps_total/deps_kept/num_levels stale
  kRegimeTag,            ///< level_tags wrong length or unknown regime value
};

const char* diag_kind_name(DiagKind k) noexcept;

/// One verification finding, row-precise where the defect has rows attached:
/// fields that do not apply hold kInvalidIndex / -1.
struct ScheduleDiagnostic {
  DiagKind kind = DiagKind::kMalformed;
  index_t consumer_row = kInvalidIndex;  ///< row whose ordering is broken
  index_t producer_row = kInvalidIndex;  ///< row it depends on (if any)
  int consumer_thread = -1;
  int producer_thread = -1;
  index_t level = kInvalidIndex;  ///< consumer's level
  index_t item = kInvalidIndex;   ///< consumer's global item index
  std::string detail;

  std::string to_string() const;
};

/// Dependency-coverage accounting. Also quantifies the paper's
/// sparsification: deps_covered_transitive are exactly the cross-thread
/// dependencies the schedule orders without storing a wait for them.
struct VerifyStats {
  index_t items = 0;
  index_t levels = 0;
  index_t waits_total = 0;            ///< stored waits (== deps_kept when clean)
  index_t deps_external = 0;          ///< outside the scheduled set (by construction)
  index_t deps_same_thread = 0;       ///< covered by program order
  index_t deps_cross_thread = 0;
  index_t deps_covered_direct = 0;    ///< one of the item's own waits covers it
  index_t deps_covered_regime = 0;    ///< a hybrid sync point covers it (waits pruned)
  index_t deps_covered_transitive = 0;///< only the transitive publish order does
  index_t deps_uncovered = 0;         ///< latent data races
};

struct VerifyReport {
  std::vector<ScheduleDiagnostic> diagnostics;
  index_t suppressed = 0;  ///< findings beyond the diagnostic cap
  VerifyStats stats;

  bool ok() const noexcept { return diagnostics.empty() && suppressed == 0; }
  /// One-line human-readable digest (first few diagnostics when failing).
  std::string summary() const;
};

/// Analyze one schedule against the dependency enumeration it was built
/// with. Pure: never executes the schedule, never modifies it. The cap
/// bounds stored diagnostics so verifying a badly broken schedule stays
/// O(deps); findings beyond it are counted in `suppressed`.
VerifyReport verify_schedule(const ExecSchedule& s, const DepsFn& deps,
                             index_t max_diagnostics = 64);

/// Prove retargeting correct for team size `threads`: retarget(s, deps,
/// threads) must be field-for-field identical to a fresh build from the
/// retained level structure (kRetargetMismatch otherwise), and the
/// retargeted schedule must itself verify clean.
VerifyReport verify_retarget(const ExecSchedule& s, const DepsFn& deps,
                             int threads, index_t max_diagnostics = 64);

/// Assertion form used by the build/retarget paths when
/// IluOptions::verify_schedules is set: throws javelin::Error carrying the
/// report summary. `what` names the schedule ("fwd", "bwd retarget", ...).
void verify_schedule_or_throw(const ExecSchedule& s, const DepsFn& deps,
                              const char* what);

}  // namespace javelin::verify
