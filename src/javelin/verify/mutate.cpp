#include "javelin/verify/mutate.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "javelin/verify/verify.hpp"

namespace javelin::verify {

namespace {

constexpr std::size_t uz(std::int64_t i) noexcept {
  return static_cast<std::size_t>(i);
}

/// splitmix64: tiny, seed-stable, and good enough for site selection — the
/// harness needs determinism per (schedule, mutation, seed), not quality.
std::uint64_t splitmix(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

index_t num_waits(const ExecSchedule& s) {
  return s.wait_ptr.empty() ? 0 : s.wait_ptr.back();
}

index_t items_of(const ExecSchedule& s, index_t t) {
  return s.thread_ptr[uz(t) + 1] - s.thread_ptr[uz(t)];
}

/// Owning item of wait slot w: the last item whose wait range starts at or
/// before w (wait_ptr is monotone; empty items collapse correctly under
/// upper_bound).
index_t item_of_wait(const ExecSchedule& s, index_t w) {
  const auto it =
      std::upper_bound(s.wait_ptr.begin(), s.wait_ptr.end(), w);
  return static_cast<index_t>(it - s.wait_ptr.begin()) - 1;
}

index_t thread_of_item(const ExecSchedule& s, index_t i) {
  const auto it =
      std::upper_bound(s.thread_ptr.begin(), s.thread_ptr.end(), i);
  return static_cast<index_t>(it - s.thread_ptr.begin()) - 1;
}

index_t item_head_row(const ExecSchedule& s, index_t i) {
  return s.item_ptr[uz(i)] < s.item_ptr[uz(i) + 1]
             ? s.rows[uz(s.item_ptr[uz(i)])]
             : kInvalidIndex;
}

/// Remove wait slot w, keeping deps_kept in sync so the verifier's finding
/// is the uncovered dependency, not bookkeeping drift. deps_total is left
/// alone: the dependency still exists — losing its wait IS the defect.
void erase_wait(ExecSchedule& s, index_t w) {
  const index_t i = item_of_wait(s, w);
  s.wait_thread.erase(s.wait_thread.begin() + w);
  s.wait_count.erase(s.wait_count.begin() + w);
  for (std::size_t q = uz(i) + 1; q < s.wait_ptr.size(); ++q) {
    --s.wait_ptr[q];
  }
  --s.deps_kept;
}

/// Copy the first diagnostic of an expected kind into the result — the rows
/// the test asserts precision against.
bool grab_rows(const VerifyReport& rep, std::initializer_list<DiagKind> kinds,
               MutationResult& res) {
  for (const ScheduleDiagnostic& d : rep.diagnostics) {
    for (DiagKind k : kinds) {
      if (d.kind == k) {
        res.consumer_row = d.consumer_row;
        res.producer_row = d.producer_row;
        return true;
      }
    }
  }
  return false;
}

/// drop / weaken / redirect share the load-bearing-site search: apply the
/// candidate to a copy, ask the verifier, commit the first site whose loss
/// actually breaks coverage (see the header for why redundant sites exist).
MutationResult mutate_wait(ExecSchedule& s, Mutation m, const DepsFn& deps,
                           std::uint64_t seed) {
  MutationResult res;
  const index_t W = num_waits(s);
  if (W == 0) {
    res.detail = "no stored waits to mutate";
    return res;
  }
  std::vector<index_t> sites;
  for (index_t w = 0; w < W; ++w) {
    // Weakening a count-1 wait to zero is metadata corruption, not a
    // coverage defect — keep the classes disjoint.
    if (m == Mutation::kWeakenWait && s.wait_count[uz(w)] <= 1) continue;
    sites.push_back(w);
  }
  if (sites.empty()) {
    res.detail = "no candidate wait sites";
    return res;
  }
  std::uint64_t st = seed;
  const std::size_t start = uz(static_cast<std::int64_t>(
      splitmix(st) % static_cast<std::uint64_t>(sites.size())));
  // 64 seeded probes: most stored waits are load-bearing (the builder
  // already pruned same-thread redundancy), so the search ends in one or
  // two verifier calls in practice; the cap bounds pathological inputs.
  const std::size_t tries = std::min<std::size_t>(sites.size(), 64);
  for (std::size_t k = 0; k < tries; ++k) {
    const index_t w = sites[(start + k) % sites.size()];
    const index_t item = item_of_wait(s, w);
    const index_t t = thread_of_item(s, item);
    ExecSchedule cand = s;
    if (m == Mutation::kDropWait) {
      erase_wait(cand, w);
      res.detail = "dropped wait";
    } else if (m == Mutation::kWeakenWait) {
      --cand.wait_count[uz(w)];
      res.detail = "weakened wait count by one";
    } else {
      // Redirect to the next thread (cyclically) that is neither the
      // consumer nor the current producer and has items to point at.
      const index_t old_pt = s.wait_thread[uz(w)];
      index_t new_pt = kInvalidIndex;
      for (index_t step = 1; step < static_cast<index_t>(s.threads); ++step) {
        const index_t p =
            (old_pt + step) % static_cast<index_t>(s.threads);
        if (p == t || p == old_pt || items_of(s, p) == 0) continue;
        new_pt = p;
        break;
      }
      if (new_pt == kInvalidIndex) continue;  // needs >= 3 active threads
      cand.wait_thread[uz(w)] = new_pt;
      cand.wait_count[uz(w)] =
          std::min(s.wait_count[uz(w)], items_of(s, new_pt));
      res.detail = "redirected wait to the wrong producer thread";
    }
    const VerifyReport rep = verify_schedule(cand, deps);
    if (!rep.ok() &&
        grab_rows(rep, {DiagKind::kUncoveredDependency, DiagKind::kDeadlock},
                  res)) {
      s = std::move(cand);
      res.applied = true;
      return res;
    }
  }
  res.detail = "no load-bearing wait found within the search budget";
  return res;
}

}  // namespace

const char* mutation_name(Mutation m) noexcept {
  switch (m) {
    case Mutation::kDropWait: return "drop_wait";
    case Mutation::kWeakenWait: return "weaken_wait";
    case Mutation::kRedirectWait: return "redirect_wait";
    case Mutation::kMoveRowAcrossLevel: return "move_row_across_level";
    case Mutation::kDuplicateRow: return "duplicate_row";
    case Mutation::kCorruptWaitCount: return "corrupt_wait_count";
    case Mutation::kRegimeRetag: return "regime_retag";
    case Mutation::kRegimeTagShape: return "regime_tag_shape";
  }
  return "unknown";
}

MutationResult apply_mutation(ExecSchedule& s, Mutation m, const DepsFn& deps,
                              std::uint64_t seed) {
  MutationResult res;
  std::uint64_t st = seed;
  switch (m) {
    case Mutation::kDropWait:
    case Mutation::kWeakenWait:
    case Mutation::kRedirectWait:
      return mutate_wait(s, m, deps, seed);

    case Mutation::kMoveRowAcrossLevel: {
      // Shift a level boundary right by one: the first row of level l
      // becomes the last row of level l-1 while the stored items keep
      // executing it in the level-l slice. With true level sets (level(r)
      // = 1 + max level of r's dependencies) the moved row always has a
      // dependency in level l-1, which is now same-level — a barrier-
      // backend data race the verifier must flag.
      std::vector<index_t> sites;
      for (index_t l = 1; l < s.num_levels; ++l) {
        if (s.level_ptr[uz(l)] < s.level_ptr[uz(l) + 1]) sites.push_back(l);
      }
      if (sites.empty()) {
        res.detail = "single-level schedule: no boundary to move";
        return res;
      }
      const index_t l = sites[uz(static_cast<std::int64_t>(
          splitmix(st) % static_cast<std::uint64_t>(sites.size())))];
      res.consumer_row = s.serial_order[uz(s.level_ptr[uz(l)])];
      ++s.level_ptr[uz(l)];
      res.applied = true;
      res.detail = "moved first row of a level into the previous level";
      return res;
    }

    case Mutation::kDuplicateRow: {
      const index_t n = static_cast<index_t>(s.rows.size());
      if (n < 2) {
        res.detail = "fewer than two scheduled rows";
        return res;
      }
      const index_t i = static_cast<index_t>(
          splitmix(st) % static_cast<std::uint64_t>(n));
      index_t j = kInvalidIndex;
      for (index_t step = 1; step < n; ++step) {
        const index_t c = (i + step) % n;
        if (s.rows[uz(c)] != s.rows[uz(i)]) {
          j = c;
          break;
        }
      }
      if (j == kInvalidIndex) {
        res.detail = "all scheduled rows identical";
        return res;
      }
      res.producer_row = s.rows[uz(i)];  // the row that is lost
      res.consumer_row = s.rows[uz(j)];  // the row now executed twice
      s.rows[uz(i)] = s.rows[uz(j)];
      res.applied = true;
      res.detail = "overwrote one scheduled row with another";
      return res;
    }

    case Mutation::kCorruptWaitCount: {
      const index_t W = num_waits(s);
      if (W == 0) {
        res.detail = "no stored waits to corrupt";
        return res;
      }
      const index_t w = static_cast<index_t>(
          splitmix(st) % static_cast<std::uint64_t>(W));
      const index_t i = item_of_wait(s, w);
      s.wait_count[uz(w)] = items_of(s, s.wait_thread[uz(w)]) + 1;
      res.consumer_row = item_head_row(s, i);
      res.applied = true;
      res.detail = "raised a wait count beyond the producer's item count";
      return res;
    }

    case Mutation::kRegimeRetag: {
      // Flip a barrier/serial level to kP2P WITHOUT restoring the waits its
      // sync point justified pruning — exactly the defect a buggy tuner or
      // a stale tag edit would produce. Like the wait mutations, retagging
      // a level can leave every orphaned dependency transitively covered,
      // so search seeded candidate levels with the verifier as oracle.
      if (s.level_tags.empty()) {
        res.detail = "uniform schedule: no regime tags to retag";
        return res;
      }
      std::vector<index_t> sites;
      for (index_t l = 0; l < s.num_levels; ++l) {
        if (s.level_tags[uz(l)] !=
            static_cast<std::uint8_t>(LevelRegime::kP2P)) {
          sites.push_back(l);
        }
      }
      if (sites.empty()) {
        res.detail = "no barrier/serial level to retag";
        return res;
      }
      const std::size_t start = uz(static_cast<std::int64_t>(
          splitmix(st) % static_cast<std::uint64_t>(sites.size())));
      const std::size_t tries = std::min<std::size_t>(sites.size(), 64);
      for (std::size_t k = 0; k < tries; ++k) {
        const index_t l = sites[(start + k) % sites.size()];
        ExecSchedule cand = s;
        cand.level_tags[uz(l)] =
            static_cast<std::uint8_t>(LevelRegime::kP2P);
        const VerifyReport rep = verify_schedule(cand, deps);
        if (!rep.ok() &&
            grab_rows(rep,
                      {DiagKind::kUncoveredDependency, DiagKind::kDeadlock},
                      res)) {
          s = std::move(cand);
          res.applied = true;
          res.detail = "retagged a synced level to p2p with its waits pruned";
          return res;
        }
      }
      res.detail = "no load-bearing regime boundary within the search budget";
      return res;
    }

    case Mutation::kRegimeTagShape: {
      if (s.level_tags.empty()) {
        res.detail = "uniform schedule: no regime tags to corrupt";
        return res;
      }
      // Truncating a one-entry vector would leave it EMPTY — a legal
      // uniform schedule, not a shape defect — so that variant needs two
      // levels.
      if (s.level_tags.size() >= 2 && splitmix(st) % 2 == 0) {
        s.level_tags.pop_back();
        res.detail = "truncated level_tags by one level";
      } else {
        const index_t l = static_cast<index_t>(
            splitmix(st) % static_cast<std::uint64_t>(s.level_tags.size()));
        s.level_tags[uz(l)] = 0xFF;
        res.detail = "planted an unknown regime tag value";
      }
      res.applied = true;
      return res;
    }
  }
  res.detail = "unknown mutation";
  return res;
}

}  // namespace javelin::verify
