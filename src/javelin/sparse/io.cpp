#include "javelin/sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "javelin/sparse/coo.hpp"

namespace javelin {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  JAVELIN_CHECK(static_cast<bool>(std::getline(in, line)), "empty Matrix-Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  JAVELIN_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  JAVELIN_CHECK(object == "matrix", "only 'matrix' objects supported");
  JAVELIN_CHECK(format == "coordinate", "only 'coordinate' format supported");
  JAVELIN_CHECK(field == "real" || field == "integer" || field == "pattern",
                "unsupported field type: " + field);
  const bool is_pattern = field == "pattern";
  const bool is_symmetric = symmetry == "symmetric";
  const bool is_skew = symmetry == "skew-symmetric";
  JAVELIN_CHECK(is_symmetric || is_skew || symmetry == "general",
                "unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::int64_t rows64 = 0, cols64 = 0, nnz64 = 0;
  size_line >> rows64 >> cols64 >> nnz64;
  JAVELIN_CHECK(!size_line.fail(), "malformed size line");
  JAVELIN_CHECK(rows64 >= 0 && cols64 >= 0 && nnz64 >= 0,
                "negative dimension or count in size line");

  CooMatrix coo;
  coo.rows = checked_cast<index_t>(rows64, "rows");
  coo.cols = checked_cast<index_t>(cols64, "cols");
  coo.reserve(static_cast<std::size_t>(nnz64) * ((is_symmetric || is_skew) ? 2 : 1));

  for (std::int64_t k = 0; k < nnz64; ++k) {
    std::int64_t r64 = 0, c64 = 0;
    double v = 1.0;
    in >> r64 >> c64;
    if (!is_pattern) in >> v;
    // A failed extraction covers both malformed tokens and fields that
    // overflow their type (indices wider than int64, values outside double
    // range) — all must fail HERE, with the entry number, not later as
    // garbage coordinates or poisoned factor values.
    if (in.fail()) {
      throw Error("matrix-market entry " + std::to_string(k + 1) +
                  ": malformed or overflowing entry line");
    }
    if (!std::isfinite(v)) {
      // NaN/Inf values would silently poison every downstream kernel (the
      // solvers guard, but the matrix itself must be rejected at the door).
      throw Error("matrix-market entry " + std::to_string(k + 1) +
                  ": non-finite value " + std::to_string(v));
    }
    // Coordinate entries are 1-based and must land inside the declared
    // dimensions; a malformed file must fail here, not as an out-of-bounds
    // access when the COO entries reach the CSR kernels.
    if (r64 < 1 || r64 > rows64 || c64 < 1 || c64 > cols64) {
      throw Error("matrix-market entry " + std::to_string(k + 1) +
                  " index (" + std::to_string(r64) + ", " +
                  std::to_string(c64) + ") outside declared " +
                  std::to_string(rows64) + " x " + std::to_string(cols64) +
                  " matrix");
    }
    const index_t r = checked_cast<index_t>(r64 - 1, "row index");
    const index_t c = checked_cast<index_t>(c64 - 1, "col index");
    coo.push(r, c, static_cast<value_t>(v));
    if ((is_symmetric || is_skew) && r != c) {
      coo.push(c, r, static_cast<value_t>(is_skew ? -v : v));
    }
  }
  return coo_to_csr(coo);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  JAVELIN_CHECK(f.good(), "cannot open file: " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      out << (r + 1) << ' ' << (a.col_idx()[static_cast<std::size_t>(k)] + 1) << ' '
          << a.values()[static_cast<std::size_t>(k)] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream f(path);
  JAVELIN_CHECK(f.good(), "cannot open file for writing: " + path);
  write_matrix_market(f, a);
}

}  // namespace javelin
