// Coordinate-format staging container used by the generators and the
// Matrix-Market reader before conversion to CSR.
#pragma once

#include <vector>

#include "javelin/sparse/csr.hpp"
#include "javelin/support/types.hpp"

namespace javelin {

struct CooMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<value_t> val;

  index_t nnz() const noexcept { return static_cast<index_t>(row.size()); }

  void reserve(std::size_t n) {
    row.reserve(n);
    col.reserve(n);
    val.reserve(n);
  }

  void push(index_t r, index_t c, value_t v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }
};

/// Convert COO to CSR. Duplicate (r, c) entries are summed (the Matrix-Market
/// convention); rows come out sorted by column. Runs the counting and
/// scatter passes in parallel.
CsrMatrix coo_to_csr(const CooMatrix& coo);

}  // namespace javelin
