// Matrix-Market (.mtx) reader/writer so the library interoperates with the
// SuiteSparse collection the paper evaluates on (paper §IV cites [16]).
// Supports `matrix coordinate real|integer|pattern general|symmetric`.
#pragma once

#include <iosfwd>
#include <string>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Parse a Matrix-Market stream into CSR. Symmetric files are expanded to
/// full storage (both triangles); `pattern` files get value 1 on every entry.
CsrMatrix read_matrix_market(std::istream& in);

/// Convenience overload opening `path`; throws Error on I/O failure.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Write `a` as `matrix coordinate real general` (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& a);

void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

}  // namespace javelin
