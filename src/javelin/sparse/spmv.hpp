// Sparse matrix–vector multiplication kernels.
//
// Javelin's raison d'être is leaving the preconditioner in a format where
// spmv and stri run at state-of-the-art speed (paper §II). Three variants:
//   * spmv_serial     — reference kernel
//   * spmv            — OpenMP row-parallel CSR
//   * spmv_segmented  — CSR5-inspired: nonzeros split into fixed-size tiles,
//     per-tile partial products reduced with a segmented pass; exercises the
//     same tile machinery the SR lower stage uses.
#pragma once

#include <span>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Nonzero-balanced static row partition: chunk p owns rows
/// [bounds[p], bounds[p+1]), chosen so every chunk covers ~nnz/parts
/// nonzeros (row-aligned). Precompute once and reuse across the thousands of
/// spmv calls of an iterative solve — replaces dynamic scheduling, whose
/// per-chunk dequeue overhead dominates on skewed suites like
/// TSOPF_RS_b300_c2.
struct RowPartition {
  std::vector<index_t> bounds;  ///< size parts+1, bounds.front()==0, back()==rows

  int parts() const noexcept { return static_cast<int>(bounds.size()) - 1; }

  /// Build for `parts` chunks (<= 0 means the current OpenMP thread count).
  static RowPartition build(const CsrMatrix& a, int parts = 0);
};

/// y = A x (serial reference).
void spmv_serial(const CsrMatrix& a, std::span<const value_t> x,
                 std::span<value_t> y);

/// y = A x, OpenMP parallel over rows; each thread takes a row range
/// balanced by nonzero count (computed on the fly, two binary searches per
/// thread).
void spmv(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y);

/// y = A x over a precomputed partition (the solver hot path).
void spmv(const CsrMatrix& a, const RowPartition& part,
          std::span<const value_t> x, std::span<value_t> y);

/// Multi-vector (panel) SpMV: Y = A X for k dense vectors stored
/// column-major (X is cols()×k with column stride cols(), Y is rows()×k with
/// column stride rows()). A's entries are loaded once per register block of
/// columns (sparse/panel.hpp), so the bandwidth-bound multiply amortizes the
/// matrix traffic across the panel. Column j of Y is bitwise equal to
/// spmv(a, part, column j of X). Throws when k < 1 or the spans don't cover
/// the panel.
void spmv_panel(const CsrMatrix& a, const RowPartition& part,
                std::span<const value_t> x, std::span<value_t> y, index_t k);

/// y = alpha * A x + beta * y, OpenMP parallel over rows (nnz-balanced).
void spmv_axpby(const CsrMatrix& a, value_t alpha, std::span<const value_t> x,
                value_t beta, std::span<value_t> y);

/// y = alpha * A x + beta * y over a precomputed partition.
void spmv_axpby(const CsrMatrix& a, const RowPartition& part, value_t alpha,
                std::span<const value_t> x, value_t beta, std::span<value_t> y);

/// Precomputed tile decomposition for the segmented-scan spmv. Tiles are
/// fixed-length runs of nonzeros (last tile ragged); each records the first
/// row intersecting it so the reduction can stitch row sums across tile
/// boundaries — the "small additional array of pointers" CSR5 needs
/// (paper §II).
struct SegmentedTiles {
  index_t tile_size = 0;
  index_t num_tiles = 0;
  /// First row whose nonzeros intersect tile t (size num_tiles).
  std::vector<index_t> first_row;

  static SegmentedTiles build(const CsrMatrix& a, index_t tile_size = 256);
};

/// y = A x using the tile decomposition. Tiles run in parallel; partial row
/// sums at tile boundaries are combined with atomic adds (at most two per
/// tile), everything interior is a plain serial reduction within the tile.
void spmv_segmented(const CsrMatrix& a, const SegmentedTiles& tiles,
                    std::span<const value_t> x, std::span<value_t> y);

// --- Dense vector helpers shared by the solvers -----------------------------

value_t dot(std::span<const value_t> a, std::span<const value_t> b);
value_t norm2(std::span<const value_t> a);
/// y += alpha x
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);
/// y = x + beta y
void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y);
void scale(value_t alpha, std::span<value_t> x);
void copy(std::span<const value_t> src, std::span<value_t> dst);
void fill(std::span<value_t> x, value_t v);

}  // namespace javelin
