#include "javelin/sparse/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "javelin/support/scan.hpp"

namespace javelin {

CsrMatrix transpose(const CsrMatrix& a) {
  const index_t n = a.rows();
  const index_t m = a.cols();
  const index_t nnz = a.nnz();
  const int chunks = std::max(1, max_threads());

  // Small inputs: the serial counting transpose beats any parallel setup.
  if (chunks == 1 || nnz < (1 << 15)) {
    std::vector<index_t> rp(static_cast<std::size_t>(m) + 1, 0);
    for (index_t k = 0; k < nnz; ++k) {
      ++rp[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)]) + 1];
    }
    inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
    std::vector<index_t> cursor(rp.begin(), rp.end() - 1);
    std::vector<index_t> ci(static_cast<std::size_t>(nnz));
    std::vector<value_t> vv(static_cast<std::size_t>(nnz));
    for (index_t r = 0; r < n; ++r) {
      for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
        const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
        const index_t pos = cursor[static_cast<std::size_t>(c)]++;
        ci[static_cast<std::size_t>(pos)] = r;
        vv[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
      }
    }
    // Row-major traversal of A emits ascending r per column, so rows of the
    // transpose come out sorted already.
    return CsrMatrix(m, n, std::move(rp), std::move(ci), std::move(vv));
  }

  // Chunked parallel scatter: each chunk owns a contiguous row range of A and
  // a private column histogram; prefix-summing histograms across chunks gives
  // every chunk a disjoint write window per output row, so the fill pass has
  // one writer per slot. Chunks are processed in ascending row order within a
  // column, so output rows come out sorted regardless of team size.
  std::vector<index_t> hist(static_cast<std::size_t>(chunks) *
                                static_cast<std::size_t>(m),
                            0);
#pragma omp parallel for schedule(static)
  for (int ch = 0; ch < chunks; ++ch) {
    const Range rr = partition_range(n, chunks, ch);
    index_t* h = hist.data() + static_cast<std::size_t>(ch) * static_cast<std::size_t>(m);
    for (index_t k = a.row_ptr()[static_cast<std::size_t>(rr.begin)];
         k < a.row_ptr()[static_cast<std::size_t>(rr.end)]; ++k) {
      ++h[a.col_idx()[static_cast<std::size_t>(k)]];
    }
  }
  // Per-column totals and per-(chunk, column) write cursors in one sweep.
  std::vector<index_t> rp(static_cast<std::size_t>(m) + 1, 0);
  index_t running = 0;
  for (index_t c = 0; c < m; ++c) {
    rp[static_cast<std::size_t>(c)] = running;
    for (int ch = 0; ch < chunks; ++ch) {
      index_t& h = hist[static_cast<std::size_t>(ch) * static_cast<std::size_t>(m) +
                        static_cast<std::size_t>(c)];
      const index_t cnt = h;
      h = running;  // becomes chunk ch's write cursor for column c
      running += cnt;
    }
  }
  rp[static_cast<std::size_t>(m)] = running;
  std::vector<index_t> ci(static_cast<std::size_t>(nnz));
  std::vector<value_t> vv(static_cast<std::size_t>(nnz));
#pragma omp parallel for schedule(static)
  for (int ch = 0; ch < chunks; ++ch) {
    const Range rr = partition_range(n, chunks, ch);
    index_t* cursor = hist.data() + static_cast<std::size_t>(ch) * static_cast<std::size_t>(m);
    for (index_t r = rr.begin; r < rr.end; ++r) {
      for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
        const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
        const index_t pos = cursor[static_cast<std::size_t>(c)]++;
        ci[static_cast<std::size_t>(pos)] = r;
        vv[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
      }
    }
  }
  return CsrMatrix(m, n, std::move(rp), std::move(ci), std::move(vv));
}

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  JAVELIN_CHECK(a.cols() == b.rows(), "spgemm dimension mismatch");
  const index_t n = a.rows();
  const index_t m = b.cols();

  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);

  // Symbolic pass: count distinct output columns per row with a dense marker
  // stamped by row index (no clearing between rows).
#pragma omp parallel
  {
    std::vector<index_t> marker(static_cast<std::size_t>(m), kInvalidIndex);
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < n; ++r) {
      index_t cnt = 0;
      for (index_t ka = a.row_begin(r); ka < a.row_end(r); ++ka) {
        const index_t ca = a.col_idx()[static_cast<std::size_t>(ka)];
        for (index_t kb = b.row_begin(ca); kb < b.row_end(ca); ++kb) {
          const index_t cb = b.col_idx()[static_cast<std::size_t>(kb)];
          if (marker[static_cast<std::size_t>(cb)] != r) {
            marker[static_cast<std::size_t>(cb)] = r;
            ++cnt;
          }
        }
      }
      rp[static_cast<std::size_t>(r) + 1] = cnt;
    }
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));

  const std::size_t out_nnz = static_cast<std::size_t>(rp.back());
  std::vector<index_t> ci(out_nnz);
  std::vector<value_t> vv(out_nnz);

  // Numeric pass: the marker now holds the output position of each live
  // column. Every output entry accumulates its products in A-row-major,
  // B-row-major storage order — fixed by the inputs, not by the thread
  // decomposition — then the finished row is sorted by column (values carried
  // along; sorting after accumulation cannot change any sum).
#pragma omp parallel
  {
    std::vector<index_t> marker(static_cast<std::size_t>(m), kInvalidIndex);
    std::vector<std::pair<index_t, value_t>> row_buf;
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < n; ++r) {
      const index_t row_beg = rp[static_cast<std::size_t>(r)];
      index_t row_end = row_beg;
      for (index_t ka = a.row_begin(r); ka < a.row_end(r); ++ka) {
        const index_t ca = a.col_idx()[static_cast<std::size_t>(ka)];
        const value_t va = a.values()[static_cast<std::size_t>(ka)];
        for (index_t kb = b.row_begin(ca); kb < b.row_end(ca); ++kb) {
          const index_t cb = b.col_idx()[static_cast<std::size_t>(kb)];
          const value_t vb = b.values()[static_cast<std::size_t>(kb)];
          // "Seen in this row" iff the stored position lies inside this
          // row's fill window. Stale marker entries from other rows land
          // strictly below row_beg or at/above this row's rp terminator
          // (>= row_end), whichever order the runtime dispatched rows in.
          const index_t pos = marker[static_cast<std::size_t>(cb)];
          if (pos < row_beg || pos >= row_end) {
            marker[static_cast<std::size_t>(cb)] = row_end;
            ci[static_cast<std::size_t>(row_end)] = cb;
            vv[static_cast<std::size_t>(row_end)] = va * vb;
            ++row_end;
          } else {
            vv[static_cast<std::size_t>(pos)] += va * vb;
          }
        }
      }
      row_buf.clear();
      for (index_t k = row_beg; k < row_end; ++k) {
        row_buf.emplace_back(ci[static_cast<std::size_t>(k)],
                             vv[static_cast<std::size_t>(k)]);
      }
      std::sort(row_buf.begin(), row_buf.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      index_t w = row_beg;
      for (const auto& [c, v] : row_buf) {
        ci[static_cast<std::size_t>(w)] = c;
        vv[static_cast<std::size_t>(w)] = v;
        ++w;
      }
    }
  }
  return CsrMatrix(n, m, std::move(rp), std::move(ci), std::move(vv));
}

CsrMatrix pattern_symmetrize(const CsrMatrix& a) {
  JAVELIN_CHECK(a.square(), "pattern_symmetrize requires a square matrix");
  const CsrMatrix at = transpose(a);
  const index_t n = a.rows();
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> ci;
  std::vector<value_t> vv;
  ci.reserve(static_cast<std::size_t>(a.nnz()) * 2);
  vv.reserve(static_cast<std::size_t>(a.nnz()) * 2);
  for (index_t r = 0; r < n; ++r) {
    auto ac = a.row_cols(r);
    auto av = a.row_vals(r);
    auto bc = at.row_cols(r);
    auto bv = at.row_vals(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      index_t col;
      value_t val;
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        col = ac[i];
        val = av[i];
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        col = bc[j];
        val = bv[j];
        ++j;
      } else {
        col = ac[i];
        val = av[i] + bv[j];
        ++i;
        ++j;
      }
      ci.push_back(col);
      vv.push_back(val);
    }
    rp[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(ci.size());
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

bool pattern_symmetric(const CsrMatrix& a) {
  if (!a.square()) return false;
  const CsrMatrix at = transpose(a);
  return a.row_ptr().size() == at.row_ptr().size() &&
         std::equal(a.row_ptr().begin(), a.row_ptr().end(), at.row_ptr().begin()) &&
         std::equal(a.col_idx().begin(), a.col_idx().end(), at.col_idx().begin());
}

bool is_permutation(std::span<const index_t> perm) {
  const index_t n = static_cast<index_t>(perm.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t v : perm) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
  std::vector<index_t> inv(perm.size(), kInvalidIndex);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  }
  return inv;
}

std::vector<index_t> compose_permutations(std::span<const index_t> first,
                                          std::span<const index_t> second) {
  JAVELIN_CHECK(first.size() == second.size(), "permutation size mismatch");
  std::vector<index_t> out(first.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = first[static_cast<std::size_t>(second[i])];
  }
  return out;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const index_t> perm) {
  JAVELIN_CHECK(a.square(), "symmetric permutation requires a square matrix");
  JAVELIN_CHECK(perm.size() == static_cast<std::size_t>(a.rows()),
                "permutation length mismatch");
  const index_t n = a.rows();
  const std::vector<index_t> inv = invert_permutation(perm);

  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    rp[static_cast<std::size_t>(r) + 1] = a.row_nnz(perm[static_cast<std::size_t>(r)]);
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
  std::vector<index_t> ci(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vv(static_cast<std::size_t>(a.nnz()));

  // Parallel first-touch copy into the permuted layout (paper §III: "we
  // permute the nonzeros ... while copying A into the CSR data-structure of
  // L and U in parallel allowing for first-touch").
#pragma omp parallel
  {
    std::vector<std::pair<index_t, value_t>> buf;
#pragma omp for schedule(dynamic, 64)
    for (index_t r = 0; r < n; ++r) {
      const index_t old_r = perm[static_cast<std::size_t>(r)];
      buf.clear();
      for (index_t k = a.row_begin(old_r); k < a.row_end(old_r); ++k) {
        buf.emplace_back(inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])],
                         a.values()[static_cast<std::size_t>(k)]);
      }
      std::sort(buf.begin(), buf.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      index_t w = rp[static_cast<std::size_t>(r)];
      for (const auto& [c, v] : buf) {
        ci[static_cast<std::size_t>(w)] = c;
        vv[static_cast<std::size_t>(w)] = v;
        ++w;
      }
    }
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vv));
}

CsrMatrix permute_rows(const CsrMatrix& a, std::span<const index_t> perm) {
  JAVELIN_CHECK(perm.size() == static_cast<std::size_t>(a.rows()),
                "permutation length mismatch");
  const index_t n = a.rows();
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    rp[static_cast<std::size_t>(r) + 1] = a.row_nnz(perm[static_cast<std::size_t>(r)]);
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
  std::vector<index_t> ci(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vv(static_cast<std::size_t>(a.nnz()));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    const index_t old_r = perm[static_cast<std::size_t>(r)];
    index_t w = rp[static_cast<std::size_t>(r)];
    for (index_t k = a.row_begin(old_r); k < a.row_end(old_r); ++k, ++w) {
      ci[static_cast<std::size_t>(w)] = a.col_idx()[static_cast<std::size_t>(k)];
      vv[static_cast<std::size_t>(w)] = a.values()[static_cast<std::size_t>(k)];
    }
  }
  return CsrMatrix(n, a.cols(), std::move(rp), std::move(ci), std::move(vv));
}

namespace {

template <class Keep>
CsrMatrix extract_if(const CsrMatrix& a, Keep keep) {
  const index_t n = a.rows();
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  for (index_t r = 0; r < n; ++r) {
    index_t cnt = 0;
    for (index_t c : a.row_cols(r)) cnt += keep(r, c) ? 1 : 0;
    rp[static_cast<std::size_t>(r) + 1] = cnt;
  }
  inclusive_scan_inplace(std::span<index_t>(rp).subspan(1));
  std::vector<index_t> ci(static_cast<std::size_t>(rp.back()));
  std::vector<value_t> vv(static_cast<std::size_t>(rp.back()));
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    index_t w = rp[static_cast<std::size_t>(r)];
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
      if (!keep(r, c)) continue;
      ci[static_cast<std::size_t>(w)] = c;
      vv[static_cast<std::size_t>(w)] = a.values()[static_cast<std::size_t>(k)];
      ++w;
    }
  }
  return CsrMatrix(n, a.cols(), std::move(rp), std::move(ci), std::move(vv));
}

}  // namespace

CsrMatrix extract_strict_lower(const CsrMatrix& a) {
  return extract_if(a, [](index_t r, index_t c) { return c < r; });
}
CsrMatrix extract_strict_upper(const CsrMatrix& a) {
  return extract_if(a, [](index_t r, index_t c) { return c > r; });
}
CsrMatrix extract_lower(const CsrMatrix& a) {
  return extract_if(a, [](index_t r, index_t c) { return c <= r; });
}
CsrMatrix extract_upper(const CsrMatrix& a) {
  return extract_if(a, [](index_t r, index_t c) { return c >= r; });
}

std::vector<index_t> diagonal_positions(const CsrMatrix& a) {
  JAVELIN_CHECK(a.square(), "diagonal_positions requires a square matrix");
  std::vector<index_t> pos(static_cast<std::size_t>(a.rows()));
  for (index_t r = 0; r < a.rows(); ++r) {
    const index_t p = a.find(r, r);
    JAVELIN_CHECK(p != kInvalidIndex, "structurally missing diagonal entry");
    pos[static_cast<std::size_t>(r)] = p;
  }
  return pos;
}

value_t max_abs_difference(const CsrMatrix& a, const CsrMatrix& b) {
  JAVELIN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "dimension mismatch");
  value_t worst = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    auto ac = a.row_cols(r);
    auto av = a.row_vals(r);
    auto bc = b.row_cols(r);
    auto bv = b.row_vals(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      value_t d;
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        d = std::abs(av[i]);
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        d = std::abs(bv[j]);
        ++j;
      } else {
        d = std::abs(av[i] - bv[j]);
        ++i;
        ++j;
      }
      worst = std::max(worst, d);
    }
  }
  return worst;
}

value_t frobenius_norm(const CsrMatrix& a) {
  value_t s = 0;
  for (value_t v : a.values()) s += v * v;
  return std::sqrt(s);
}

std::vector<value_t> to_dense(const CsrMatrix& a) {
  std::vector<value_t> d(static_cast<std::size_t>(a.rows()) *
                             static_cast<std::size_t>(a.cols()),
                         value_t{0});
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      d[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.cols()) +
        static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])] =
          a.values()[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

std::vector<value_t> dense_matmul(const CsrMatrix& a, const CsrMatrix& b) {
  JAVELIN_CHECK(a.cols() == b.rows(), "dimension mismatch in matmul");
  std::vector<value_t> out(static_cast<std::size_t>(a.rows()) *
                               static_cast<std::size_t>(b.cols()),
                           value_t{0});
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t mid = a.col_idx()[static_cast<std::size_t>(k)];
      const value_t av = a.values()[static_cast<std::size_t>(k)];
      for (index_t k2 = b.row_begin(mid); k2 < b.row_end(mid); ++k2) {
        out[static_cast<std::size_t>(r) * static_cast<std::size_t>(b.cols()) +
            static_cast<std::size_t>(b.col_idx()[static_cast<std::size_t>(k2)])] +=
            av * b.values()[static_cast<std::size_t>(k2)];
      }
    }
  }
  return out;
}

}  // namespace javelin
