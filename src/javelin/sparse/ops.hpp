// Structural operations on CSR matrices: transpose, symmetric permutation,
// pattern symmetrization (A + Aᵀ), triangular extraction, and pattern
// comparisons. These are the preprocessing primitives Javelin composes
// (paper §III: level order of lower(A) or lower(A+Aᵀ), permutation into the
// level ordering during the copy-fill phase).
#pragma once

#include <span>
#include <vector>

#include "javelin/sparse/csr.hpp"

namespace javelin {

/// Bᵀ with values. O(nnz) counting transpose. Large inputs run a chunked
/// parallel scatter (per-chunk column histograms, prefix-summed into disjoint
/// write windows); the output is uniquely determined, so every thread count
/// produces bitwise-identical results.
CsrMatrix transpose(const CsrMatrix& a);

/// Sparse matrix product C = A·B via a two-pass hash-accumulator SpGEMM:
/// a symbolic pass counts each output row's distinct columns with a dense
/// marker, then a numeric pass fills values, both parallel over rows.
/// Per output entry the accumulation walks A's row and B's rows in storage
/// order regardless of which thread owns the row, so results are
/// bitwise-deterministic across thread counts (same discipline as the
/// factorization parity guarantee). Rows of the result are sorted; input
/// rows need not be.
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Pattern of A + Aᵀ (values are a[i][j] + a[j][i] treating missing as 0).
/// Used to build the symmetrized lower pattern that enables the SR lower
/// stage (paper §III-B).
CsrMatrix pattern_symmetrize(const CsrMatrix& a);

/// True iff the sparsity pattern (not values) is symmetric — the "SP" column
/// of paper Table I.
bool pattern_symmetric(const CsrMatrix& a);

/// Symmetric permutation P·A·Pᵀ. `perm` is new-to-old: row r of the result is
/// row perm[r] of A, and columns are relabelled by the inverse map.
CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const index_t> perm);

/// Row permutation P·A (new-to-old), columns untouched. Used by the
/// Dulmage–Mendelsohn step which permutes rows to cover the diagonal.
CsrMatrix permute_rows(const CsrMatrix& a, std::span<const index_t> perm);

/// Invert a permutation: out[perm[i]] = i.
std::vector<index_t> invert_permutation(std::span<const index_t> perm);

/// True iff perm is a permutation of 0..n-1.
bool is_permutation(std::span<const index_t> perm);

/// Compose permutations: result[i] = first[second[i]] (apply `first`, then
/// `second`, both new-to-old).
std::vector<index_t> compose_permutations(std::span<const index_t> first,
                                          std::span<const index_t> second);

/// Strictly lower-triangular part (diagonal excluded).
CsrMatrix extract_strict_lower(const CsrMatrix& a);

/// Strictly upper-triangular part (diagonal excluded).
CsrMatrix extract_strict_upper(const CsrMatrix& a);

/// Lower-triangular part including diagonal.
CsrMatrix extract_lower(const CsrMatrix& a);

/// Upper-triangular part including diagonal.
CsrMatrix extract_upper(const CsrMatrix& a);

/// Position of each diagonal entry in the nonzero array; throws if a
/// diagonal entry is structurally missing.
std::vector<index_t> diagonal_positions(const CsrMatrix& a);

/// Max |a_ij - b_ij| over the union pattern (dense-free comparison helper for
/// tests and benches).
value_t max_abs_difference(const CsrMatrix& a, const CsrMatrix& b);

/// Frobenius norm.
value_t frobenius_norm(const CsrMatrix& a);

/// Dense A*B for small validation problems in tests (n <= a few thousand).
std::vector<value_t> dense_matmul(const CsrMatrix& a, const CsrMatrix& b);

/// Dense representation (row-major rows x cols) for small test matrices.
std::vector<value_t> to_dense(const CsrMatrix& a);

}  // namespace javelin
