#include "javelin/sparse/csr.hpp"

#include <algorithm>
#include <numeric>

namespace javelin {

CsrMatrix CsrMatrix::identity(index_t n) {
  std::vector<index_t> rp(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> ci(static_cast<std::size_t>(n));
  std::vector<value_t> vals(static_cast<std::size_t>(n), value_t{1});
  std::iota(rp.begin(), rp.end(), index_t{0});
  std::iota(ci.begin(), ci.end(), index_t{0});
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vals));
}

index_t CsrMatrix::find(index_t r, index_t c) const noexcept {
  const index_t lo = row_begin(r);
  const index_t hi = row_end(r);
  const auto first = col_idx_.begin() + lo;
  const auto last = col_idx_.begin() + hi;
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return kInvalidIndex;
  return static_cast<index_t>(it - col_idx_.begin());
}

bool CsrMatrix::rows_sorted_and_unique() const noexcept {
  for (index_t r = 0; r < rows_; ++r) {
    index_t prev = -1;
    for (index_t k = row_begin(r); k < row_end(r); ++k) {
      const index_t c = col_idx_[static_cast<std::size_t>(k)];
      if (c <= prev || c < 0 || c >= cols_) return false;
      prev = c;
    }
  }
  return true;
}

bool CsrMatrix::has_full_diagonal() const noexcept {
  if (!square()) return false;
  for (index_t r = 0; r < rows_; ++r) {
    if (find(r, r) == kInvalidIndex) return false;
  }
  return true;
}

void CsrMatrix::sort_rows() {
#pragma omp parallel
  {
    std::vector<std::pair<index_t, value_t>> buf;
#pragma omp for schedule(dynamic, 64)
    for (index_t r = 0; r < rows_; ++r) {
      const index_t lo = row_begin(r);
      const index_t hi = row_end(r);
      if (std::is_sorted(col_idx_.begin() + lo, col_idx_.begin() + hi)) continue;
      buf.clear();
      for (index_t k = lo; k < hi; ++k) {
        buf.emplace_back(col_idx_[static_cast<std::size_t>(k)],
                         values_[static_cast<std::size_t>(k)]);
      }
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (index_t k = lo; k < hi; ++k) {
        col_idx_[static_cast<std::size_t>(k)] = buf[static_cast<std::size_t>(k - lo)].first;
        values_[static_cast<std::size_t>(k)] = buf[static_cast<std::size_t>(k - lo)].second;
      }
    }
  }
}

void CsrMatrix::validate() const {
  JAVELIN_CHECK(rows_ >= 0 && cols_ >= 0, "negative dimension");
  JAVELIN_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                "row_ptr length mismatch");
  JAVELIN_CHECK(row_ptr_.front() == 0, "row_ptr must start at 0");
  for (index_t r = 0; r < rows_; ++r) {
    JAVELIN_CHECK(row_begin(r) <= row_end(r), "row_ptr must be nondecreasing");
  }
  JAVELIN_CHECK(row_ptr_.back() == nnz(), "row_ptr terminator mismatch");
  JAVELIN_CHECK(rows_sorted_and_unique(),
                "rows must be sorted by column with no duplicates");
}

}  // namespace javelin
