// Compressed Sparse Row matrix container.
//
// Javelin deliberately keeps the whole framework on plain CSR (paper §I:
// "minimal data preprocessing", §V: "very light weight data structures") —
// the factorization, spmv and stri all operate on this one structure plus
// small auxiliary index arrays.
#pragma once

#include <span>
#include <vector>

#include "javelin/support/types.hpp"

namespace javelin {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Construct from raw CSR arrays. Rows must be sorted by column with no
  /// duplicates; validate() checks this in debug-heavy paths.
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    JAVELIN_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                  "row_ptr size must be rows+1");
    JAVELIN_CHECK(col_idx_.size() == values_.size(),
                  "col_idx and values must have equal length");
    JAVELIN_CHECK(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
                  "row_ptr terminator must equal nnz");
  }

  /// An empty rows x cols matrix (all-zero pattern).
  static CsrMatrix zeros(index_t rows, index_t cols) {
    return CsrMatrix(rows, cols,
                     std::vector<index_t>(static_cast<std::size_t>(rows) + 1, 0),
                     {}, {});
  }

  /// Identity matrix of dimension n.
  static CsrMatrix identity(index_t n);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t nnz() const noexcept { return static_cast<index_t>(col_idx_.size()); }
  bool square() const noexcept { return rows_ == cols_; }

  std::span<const index_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const index_t> col_idx() const noexcept { return col_idx_; }
  std::span<const value_t> values() const noexcept { return values_; }
  std::span<index_t> row_ptr_mut() noexcept { return row_ptr_; }
  std::span<index_t> col_idx_mut() noexcept { return col_idx_; }
  std::span<value_t> values_mut() noexcept { return values_; }

  index_t row_begin(index_t r) const noexcept { return row_ptr_[static_cast<std::size_t>(r)]; }
  index_t row_end(index_t r) const noexcept { return row_ptr_[static_cast<std::size_t>(r) + 1]; }
  index_t row_nnz(index_t r) const noexcept { return row_end(r) - row_begin(r); }

  std::span<const index_t> row_cols(index_t r) const noexcept {
    return std::span<const index_t>(col_idx_).subspan(
        static_cast<std::size_t>(row_begin(r)), static_cast<std::size_t>(row_nnz(r)));
  }
  std::span<const value_t> row_vals(index_t r) const noexcept {
    return std::span<const value_t>(values_).subspan(
        static_cast<std::size_t>(row_begin(r)), static_cast<std::size_t>(row_nnz(r)));
  }
  std::span<value_t> row_vals_mut(index_t r) noexcept {
    return std::span<value_t>(values_).subspan(
        static_cast<std::size_t>(row_begin(r)), static_cast<std::size_t>(row_nnz(r)));
  }

  /// Binary search for column `c` in row `r`; returns the nonzero position or
  /// kInvalidIndex. Requires sorted rows.
  index_t find(index_t r, index_t c) const noexcept;

  /// Value at (r, c), 0 if not stored.
  value_t at(index_t r, index_t c) const noexcept {
    const index_t p = find(r, c);
    return p == kInvalidIndex ? value_t{0} : values_[static_cast<std::size_t>(p)];
  }

  /// True iff every row's columns are strictly increasing and in range.
  bool rows_sorted_and_unique() const noexcept;

  /// True iff every diagonal entry is present in the pattern (required by
  /// up-looking ILU, which divides by the pivot).
  bool has_full_diagonal() const noexcept;

  /// Sort every row by column index (values carried along). Parallel.
  void sort_rows();

  /// Throws Error on any structural inconsistency.
  void validate() const;

  /// Average nonzeros per row ("RD" column of paper Table I).
  double row_density() const noexcept {
    return rows_ == 0 ? 0.0
                      : static_cast<double>(nnz()) / static_cast<double>(rows_);
  }

  bool operator==(const CsrMatrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_ && row_ptr_ == o.row_ptr_ &&
           col_idx_ == o.col_idx_ && values_ == o.values_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_ = {0};
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

}  // namespace javelin
