// Column-major panel (multi-vector) primitives shared by the sparse kernels
// (spmv_panel) and the ilu/ triangular panel sweeps: the register-block
// dispatcher and the blocked SpMV row kernel.
//
// A panel is k dense vectors of length n stored column-major: column j
// occupies [j*ld, j*ld + n) for a column stride ld >= n. Kernels process
// blocks of up to kPanelBlockCols columns per CSR walk, so every matrix
// entry is loaded once per block instead of once per vector — the
// bandwidth-bound kernels' cost becomes ~nnz/KB loads per vector. Column j's
// accumulation order is always the scalar kernel's ascending-k order, so any
// blocking is bitwise equal to k scalar passes.
#pragma once

#include <type_traits>

#include "javelin/sparse/csr.hpp"

namespace javelin::detail {

/// Columns per register block of the panel kernels. 8 doubles keep the
/// accumulator in registers on any x86-64/aarch64 ISA; wider panels are
/// processed 8 columns at a time (tail blocks of 4/2/1).
inline constexpr index_t kPanelBlockCols = 8;

/// Invoke fn(j0, std::integral_constant<int, KB>{}) over column blocks
/// covering [0, k): blocks of kPanelBlockCols while they fit, then 4/2/1
/// tails. Blocking never reorders a column's accumulation, so any k is
/// bitwise equal to k scalar sweeps.
template <class Fn>
inline void for_each_panel_block(index_t k, Fn&& fn) {
  index_t j0 = 0;
  for (; j0 + 8 <= k; j0 += 8) fn(j0, std::integral_constant<int, 8>{});
  if (j0 + 4 <= k) { fn(j0, std::integral_constant<int, 4>{}); j0 += 4; }
  if (j0 + 2 <= k) { fn(j0, std::integral_constant<int, 2>{}); j0 += 2; }
  if (j0 < k) fn(j0, std::integral_constant<int, 1>{});
}

/// Panel SpMV row: y[r + j·ldy] = Σ_c A(r,c) · x[c + j·ldx] for j in
/// [0, KB) — A's row entries loaded once for all KB columns.
template <int KB>
inline void spmv_row_panel(const CsrMatrix& a, index_t r, const value_t* x,
                           std::size_t ldx, value_t* y, std::size_t ldy) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  value_t acc[KB] = {};
  for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
    const value_t v = vv[static_cast<std::size_t>(k)];
    const value_t* xc = x + static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
    for (int j = 0; j < KB; ++j) acc[j] += v * xc[static_cast<std::size_t>(j) * ldx];
  }
  value_t* yr = y + static_cast<std::size_t>(r);
  for (int j = 0; j < KB; ++j) yr[static_cast<std::size_t>(j) * ldy] = acc[j];
}

}  // namespace javelin::detail
