#include "javelin/sparse/coo.hpp"

#include <algorithm>
#include <span>

#include "javelin/support/scan.hpp"

namespace javelin {

CsrMatrix coo_to_csr(const CooMatrix& coo) {
  const index_t n = coo.rows;
  const index_t m = coo.cols;
  const std::size_t nnz_in = coo.row.size();
  JAVELIN_CHECK(coo.col.size() == nnz_in && coo.val.size() == nnz_in,
                "COO arrays must have equal length");

  // Count entries per row, scan into row pointers.
  std::vector<index_t> counts(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t k = 0; k < nnz_in; ++k) {
    const index_t r = coo.row[k];
    JAVELIN_CHECK(r >= 0 && r < n, "COO row index out of range");
    JAVELIN_CHECK(coo.col[k] >= 0 && coo.col[k] < m, "COO col index out of range");
    ++counts[static_cast<std::size_t>(r)];
  }
  exclusive_scan_inplace(std::span<index_t>(counts));

  // Scatter.
  std::vector<index_t> rp = counts;  // running write cursors
  std::vector<index_t> ci(nnz_in);
  std::vector<value_t> vv(nnz_in);
  for (std::size_t k = 0; k < nnz_in; ++k) {
    const index_t pos = rp[static_cast<std::size_t>(coo.row[k])]++;
    ci[static_cast<std::size_t>(pos)] = coo.col[k];
    vv[static_cast<std::size_t>(pos)] = coo.val[k];
  }
  // counts still holds the exclusive-scan start offsets (the scatter advanced
  // the rp copy, not counts); the terminator is total input nnz.
  counts[static_cast<std::size_t>(n)] = static_cast<index_t>(nnz_in);

  // Sort each row and merge duplicates.
  std::vector<index_t> out_rp(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel
  {
    std::vector<std::pair<index_t, value_t>> buf;
#pragma omp for schedule(dynamic, 64)
    for (index_t r = 0; r < n; ++r) {
      const index_t lo = counts[static_cast<std::size_t>(r)];
      const index_t hi = counts[static_cast<std::size_t>(r) + 1];
      buf.clear();
      for (index_t k = lo; k < hi; ++k) {
        buf.emplace_back(ci[static_cast<std::size_t>(k)], vv[static_cast<std::size_t>(k)]);
      }
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Merge duplicates in place inside buf.
      index_t w = 0;
      for (std::size_t k = 0; k < buf.size(); ++k) {
        if (w > 0 && buf[static_cast<std::size_t>(w) - 1].first == buf[k].first) {
          buf[static_cast<std::size_t>(w) - 1].second += buf[k].second;
        } else {
          buf[static_cast<std::size_t>(w)] = buf[k];
          ++w;
        }
      }
      for (index_t k = 0; k < w; ++k) {
        ci[static_cast<std::size_t>(lo + k)] = buf[static_cast<std::size_t>(k)].first;
        vv[static_cast<std::size_t>(lo + k)] = buf[static_cast<std::size_t>(k)].second;
      }
      out_rp[static_cast<std::size_t>(r) + 1] = w;
    }
  }

  // Compact: rows may have shrunk after duplicate merging.
  inclusive_scan_inplace(std::span<index_t>(out_rp).subspan(1));
  const std::size_t nnz_out = static_cast<std::size_t>(out_rp.back());
  std::vector<index_t> out_ci(nnz_out);
  std::vector<value_t> out_vv(nnz_out);
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < n; ++r) {
    const index_t src = counts[static_cast<std::size_t>(r)];
    const index_t dst = out_rp[static_cast<std::size_t>(r)];
    const index_t len = out_rp[static_cast<std::size_t>(r) + 1] - dst;
    for (index_t k = 0; k < len; ++k) {
      out_ci[static_cast<std::size_t>(dst + k)] = ci[static_cast<std::size_t>(src + k)];
      out_vv[static_cast<std::size_t>(dst + k)] = vv[static_cast<std::size_t>(src + k)];
    }
  }
  return CsrMatrix(n, m, std::move(out_rp), std::move(out_ci), std::move(out_vv));
}

}  // namespace javelin
