#include "javelin/sparse/spmv.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "javelin/sparse/panel.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

namespace {

/// The dense helpers are pure streaming passes: when the requested team
/// exceeds the hardware's concurrency, a parallel region buys no bandwidth
/// and its fork/join churn dwarfs the loop itself — run inline instead.
/// Value-neutral either way: the ops are elementwise (and dot's reduction
/// tree is fixed by the vector length, never the team size).
bool parallel_vectors_worthwhile() noexcept {
#ifdef _OPENMP
  return !team_oversubscribed(max_threads());
#else
  return false;
#endif
}

/// Row index at which chunk `part` of `parts` begins when splitting by
/// nonzero count: the first row whose nonzeros start at or after the chunk's
/// nnz target. Row-aligned, monotone in `part`, and covers [0, rows].
index_t nnz_split_row(const CsrMatrix& a, int parts, int part) {
  if (part <= 0) return 0;
  if (part >= parts) return a.rows();
  const index_t target = partition_range(a.nnz(), parts, part).begin;
  const auto rp = a.row_ptr();
  const auto it = std::lower_bound(rp.begin(), rp.end(), target);
  return static_cast<index_t>(it - rp.begin());
}

template <class RowOp>
void for_rows_balanced(const CsrMatrix& a, const RowOp& op) {
#pragma omp parallel
  {
    const int parts = team_size();
    const index_t lo = nnz_split_row(a, parts, thread_id());
    const index_t hi = nnz_split_row(a, parts, thread_id() + 1);
    for (index_t r = lo; r < hi; ++r) op(r);
  }
}

template <class RowOp>
void for_rows_partitioned(const CsrMatrix& a, const RowPartition& part,
                          const RowOp& op) {
  // schedule(static, 1) so a team smaller than the partition still covers
  // every chunk (contiguous chunks stay with one thread when sizes match).
  (void)a;
#pragma omp parallel for schedule(static, 1)
  for (int p = 0; p < part.parts(); ++p) {
    const index_t lo = part.bounds[static_cast<std::size_t>(p)];
    const index_t hi = part.bounds[static_cast<std::size_t>(p) + 1];
    for (index_t r = lo; r < hi; ++r) op(r);
  }
}

}  // namespace

RowPartition RowPartition::build(const CsrMatrix& a, int parts) {
  if (parts <= 0) parts = max_threads();
  RowPartition p;
  p.bounds.resize(static_cast<std::size_t>(parts) + 1);
  for (int t = 0; t <= parts; ++t) {
    p.bounds[static_cast<std::size_t>(t)] = nnz_split_row(a, parts, t);
  }
  return p;
}

void spmv_serial(const CsrMatrix& a, std::span<const value_t> x,
                 std::span<value_t> y) {
  assert(x.size() >= static_cast<std::size_t>(a.cols()));
  assert(y.size() >= static_cast<std::size_t>(a.rows()));
  const auto ci = a.col_idx();
  const auto vv = a.values();
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t acc = 0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void spmv(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y) {
  assert(x.size() >= static_cast<std::size_t>(a.cols()));
  assert(y.size() >= static_cast<std::size_t>(a.rows()));
  const auto ci = a.col_idx();
  const auto vv = a.values();
  for_rows_balanced(a, [&](index_t r) {
    value_t acc = 0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

void spmv(const CsrMatrix& a, const RowPartition& part,
          std::span<const value_t> x, std::span<value_t> y) {
  assert(x.size() >= static_cast<std::size_t>(a.cols()));
  assert(y.size() >= static_cast<std::size_t>(a.rows()));
  const auto ci = a.col_idx();
  const auto vv = a.values();
  for_rows_partitioned(a, part, [&](index_t r) {
    value_t acc = 0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

void spmv_panel(const CsrMatrix& a, const RowPartition& part,
                std::span<const value_t> x, std::span<value_t> y, index_t k) {
  JAVELIN_CHECK(k >= 1, "spmv_panel requires k >= 1 right-hand sides");
  const std::size_t ldx = static_cast<std::size_t>(a.cols());
  const std::size_t ldy = static_cast<std::size_t>(a.rows());
  JAVELIN_CHECK(x.size() >= ldx * static_cast<std::size_t>(k),
                "spmv_panel: X panel smaller than cols() x k");
  JAVELIN_CHECK(y.size() >= ldy * static_cast<std::size_t>(k),
                "spmv_panel: Y panel smaller than rows() x k");
  const value_t* xp = x.data();
  value_t* yp = y.data();
  for_rows_partitioned(a, part, [&](index_t r) {
    detail::for_each_panel_block(k, [&](index_t j0, auto kb) {
      constexpr int KB = decltype(kb)::value;
      detail::spmv_row_panel<KB>(a, r, xp + static_cast<std::size_t>(j0) * ldx,
                                 ldx, yp + static_cast<std::size_t>(j0) * ldy,
                                 ldy);
    });
  });
}

void spmv_axpby(const CsrMatrix& a, value_t alpha, std::span<const value_t> x,
                value_t beta, std::span<value_t> y) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  for_rows_balanced(a, [&](index_t r) {
    value_t acc = 0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = alpha * acc + beta * y[static_cast<std::size_t>(r)];
  });
}

void spmv_axpby(const CsrMatrix& a, const RowPartition& part, value_t alpha,
                std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  for_rows_partitioned(a, part, [&](index_t r) {
    value_t acc = 0;
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = alpha * acc + beta * y[static_cast<std::size_t>(r)];
  });
}

SegmentedTiles SegmentedTiles::build(const CsrMatrix& a, index_t tile_size) {
  JAVELIN_CHECK(tile_size > 0, "tile_size must be positive");
  SegmentedTiles t;
  t.tile_size = tile_size;
  t.num_tiles = (a.nnz() + tile_size - 1) / tile_size;
  t.first_row.resize(static_cast<std::size_t>(t.num_tiles));
  const auto rp = a.row_ptr();
  for (index_t tile = 0; tile < t.num_tiles; ++tile) {
    const index_t first_nz = tile * tile_size;
    // Row containing nonzero first_nz: last r with rp[r] <= first_nz.
    const auto it = std::upper_bound(rp.begin(), rp.end(), first_nz);
    t.first_row[static_cast<std::size_t>(tile)] =
        static_cast<index_t>(it - rp.begin()) - 1;
  }
  return t;
}

void spmv_segmented(const CsrMatrix& a, const SegmentedTiles& tiles,
                    std::span<const value_t> x, std::span<value_t> y) {
  const auto ci = a.col_idx();
  const auto vv = a.values();
  const auto rp = a.row_ptr();
  const index_t nnz = a.nnz();

  // Zero the output first; boundary rows accumulate from several tiles.
  fill(y.subspan(0, static_cast<std::size_t>(a.rows())), value_t{0});

#pragma omp parallel for schedule(dynamic, 1)
  for (index_t tile = 0; tile < tiles.num_tiles; ++tile) {
    const index_t lo = tile * tiles.tile_size;
    const index_t hi = std::min<index_t>(lo + tiles.tile_size, nnz);
    index_t r = tiles.first_row[static_cast<std::size_t>(tile)];
    // Skip empty rows whose pointer equals lo.
    while (rp[static_cast<std::size_t>(r) + 1] <= lo) ++r;
    index_t k = lo;
    while (k < hi) {
      const index_t row_end = std::min<index_t>(rp[static_cast<std::size_t>(r) + 1], hi);
      value_t acc = 0;
      for (; k < row_end; ++k) {
        acc += vv[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
      }
      const bool whole_row = (rp[static_cast<std::size_t>(r)] >= lo) &&
                             (rp[static_cast<std::size_t>(r) + 1] <= hi);
      if (whole_row) {
        y[static_cast<std::size_t>(r)] = acc;  // sole writer for this row
      } else {
        // Row straddles a tile boundary: combine atomically.
#pragma omp atomic
        y[static_cast<std::size_t>(r)] += acc;
      }
      ++r;
      while (r < a.rows() && rp[static_cast<std::size_t>(r) + 1] <= k && k < hi) ++r;
    }
  }
}

value_t dot(std::span<const value_t> a, std::span<const value_t> b) {
  assert(a.size() == b.size());
  // Fixed-block pairwise reduction: each 4096-element block accumulates
  // serially in index order, then the block partials are summed serially in
  // block order. Blocks run in parallel, but the combination tree depends
  // ONLY on the vector length — never on the thread count — so every dot
  // (and hence every Krylov trajectory built on it) is bitwise-identical
  // across thread counts. An `omp reduction` would combine per-thread
  // partials in a team-size-dependent order and break that.
  constexpr std::ptrdiff_t kBlock = 4096;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a.size());
  if (n <= kBlock) {
    value_t s = 0;
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    }
    return s;
  }
  const std::ptrdiff_t num_blocks = (n + kBlock - 1) / kBlock;
  // Grow-only per-HOST-thread scratch: dot is the hottest scalar reduction
  // in the Krylov inner loop (GMRES runs j+1 of these per Arnoldi step), so
  // keep malloc/free out of it. The OpenMP workers must all write the
  // CALLING thread's buffer — inside the parallel region a thread_local
  // name would resolve to each worker's own (empty) copy — so the region
  // sees it only through this shared plain-local pointer.
  static thread_local std::vector<value_t> scratch;
  if (scratch.size() < static_cast<std::size_t>(num_blocks)) {
    scratch.resize(static_cast<std::size_t>(num_blocks));
  }
  value_t* const partial = scratch.data();
#pragma omp parallel for schedule(static) if (parallel_vectors_worthwhile())
  for (std::ptrdiff_t blk = 0; blk < num_blocks; ++blk) {
    const std::ptrdiff_t lo = blk * kBlock;
    const std::ptrdiff_t hi = std::min(lo + kBlock, n);
    value_t s = 0;
    for (std::ptrdiff_t i = lo; i < hi; ++i) {
      s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    }
    partial[blk] = s;
  }
  value_t s = 0;
  for (std::ptrdiff_t blk = 0; blk < num_blocks; ++blk) {
    s += partial[blk];
  }
  return s;
}

value_t norm2(std::span<const value_t> a) { return std::sqrt(dot(a, a)); }

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  assert(x.size() == y.size());
#pragma omp parallel for schedule(static) if (parallel_vectors_worthwhile())
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(x.size()); ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  assert(x.size() == y.size());
#pragma omp parallel for schedule(static) if (parallel_vectors_worthwhile())
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(x.size()); ++i) {
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
  }
}

void scale(value_t alpha, std::span<value_t> x) {
#pragma omp parallel for schedule(static) if (parallel_vectors_worthwhile())
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(x.size()); ++i) {
    x[static_cast<std::size_t>(i)] *= alpha;
  }
}

void copy(std::span<const value_t> src, std::span<value_t> dst) {
  assert(src.size() <= dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void fill(std::span<value_t> x, value_t v) {
  std::fill(x.begin(), x.end(), v);
}

}  // namespace javelin
