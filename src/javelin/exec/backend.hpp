// Execution-backend selector for the level-scheduled sweeps (paper §VI).
//
// Kept as a tiny standalone header so option structs (IluOptions,
// AmgOptions) can name a backend without pulling in the schedule machinery.
#pragma once

namespace javelin {

/// How a built schedule synchronizes at run time. Both backends execute the
/// SAME (level, thread) row slices in the same per-row order, so they are
/// bitwise-interchangeable; only the synchronization strategy differs.
enum class ExecBackend {
  /// Point-to-point sparsified spin-waits on per-thread progress counters —
  /// the paper's contribution (§III-A): threads speed ahead of each other,
  /// no global synchronization.
  kP2P,
  /// Barrier-synchronized level-set sweep (CSR-LS): every thread processes
  /// its slice of level l, then the whole team barriers before level l+1 —
  /// the classic baseline the paper's §VI compares against.
  kBarrier,
};

inline const char* exec_backend_name(ExecBackend b) {
  switch (b) {
    case ExecBackend::kP2P:
      return "p2p";
    case ExecBackend::kBarrier:
      return "barrier";
  }
  return "?";
}

}  // namespace javelin
