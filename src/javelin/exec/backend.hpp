// Execution-backend selector for the level-scheduled sweeps (paper §VI).
//
// Kept as a tiny standalone header so option structs (IluOptions,
// AmgOptions) can name a backend without pulling in the schedule machinery.
#pragma once

namespace javelin {

/// How a built schedule synchronizes at run time. Both backends execute the
/// SAME (level, thread) row slices in the same per-row order, so they are
/// bitwise-interchangeable; only the synchronization strategy differs.
enum class ExecBackend {
  /// Point-to-point sparsified spin-waits on per-thread progress counters —
  /// the paper's contribution (§III-A): threads speed ahead of each other,
  /// no global synchronization.
  kP2P,
  /// Barrier-synchronized level-set sweep (CSR-LS): every thread processes
  /// its slice of level l, then the whole team barriers before level l+1 —
  /// the classic baseline the paper's §VI compares against.
  kBarrier,
};

inline const char* exec_backend_name(ExecBackend b) {
  switch (b) {
    case ExecBackend::kP2P:
      return "p2p";
    case ExecBackend::kBarrier:
      return "barrier";
  }
  return "?";
}

/// Per-LEVEL synchronization regime of a hybrid schedule
/// (ExecSchedule::level_tags): one sweep mixes point-to-point levels,
/// barrier-stepped levels and serialized levels, chosen by the autotuner
/// (tune/) from each level's work content. Values are the stored tag bytes.
enum class LevelRegime : unsigned char {
  kP2P = 0,      ///< sparsified spin-waits within the segment
  kBarrier = 1,  ///< team barrier after the level
  kSerial = 2,   ///< thread 0 runs the level's rows alone
};

inline const char* level_regime_name(LevelRegime r) {
  switch (r) {
    case LevelRegime::kP2P:
      return "p2p";
    case LevelRegime::kBarrier:
      return "barrier";
    case LevelRegime::kSerial:
      return "serial";
  }
  return "?";
}

}  // namespace javelin
