// Pluggable execution schedules for level-ordered row sweeps.
//
// One build, two runtime backends (exec/run.hpp):
//
//   * kP2P — point-to-point level scheduling (paper §III-A, Fig. 4): rows of
//     each level are mapped to threads in contiguous slices; each thread
//     executes its rows level-by-level in a fixed order. That fixed order is
//     the "implied ordering" that lets dependencies be pruned:
//       - same-thread dependencies vanish (program order),
//       - per producer thread only the MAXIMUM needed schedule position is
//         kept (its progress counter is monotone),
//       - a dependency already implied by an earlier wait of the same
//         consumer thread is dropped (build-time transitive pruning).
//     At runtime an item performs at most (threads - 1) spin-waits on padded
//     progress counters — no barriers, no tasks.
//
//   * kBarrier — the classic barrier-synchronized level-set sweep (CSR-LS):
//     the SAME (level, thread) slices, but the team barriers between levels
//     instead of spin-waiting on sparsified dependencies. This is the §VI
//     baseline the point-to-point scheme is measured against.
//
// Rows are additionally blocked into ITEMS — chunks of up to chunk_rows
// consecutive rows of one (level, thread) slice. For the P2P backend the
// chunk is the synchronization granule: one merged wait list up front, one
// counter publish at the end. Chunks never cross a level boundary, which
// keeps the schedule deadlock-free (an item's dependencies always live in
// strictly earlier levels, hence strictly earlier items on every thread).
//
// Schedules are RUNTIME-RETARGETABLE: retarget() re-chunks the (level,
// thread) slices and rebuilds the sparsified waits for any team size from
// the retained level structure, bitwise-identical to a fresh build at that
// size. Consumers re-plan on a team-size mismatch instead of falling back to
// a serial sweep (ilu/retarget.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "javelin/exec/backend.hpp"
#include "javelin/sparse/csr.hpp"

namespace javelin {

struct ExecSchedule {
  ExecBackend backend = ExecBackend::kP2P;
  int threads = 1;
  index_t n_total = 0;     ///< dimension of the row-index space
  index_t chunk_rows = 0;  ///< blocking granule the schedule was built with

  /// Execution order: thread t runs items [thread_ptr[t] .. thread_ptr[t+1]);
  /// item i covers rows[item_ptr[i] .. item_ptr[i+1]) (a contiguous chunk of
  /// one (level, thread) slice, executed in stored order).
  std::vector<index_t> thread_ptr;
  std::vector<index_t> item_ptr;
  std::vector<index_t> rows;

  /// Sparsified waits, per ITEM (consumed by the P2P backend; the barrier
  /// backend synchronizes with one barrier per level instead): before
  /// executing item i, wait until wait_thread[w] has published wait_count[w]
  /// items, for w in [wait_ptr[i], wait_ptr[i+1]).
  std::vector<index_t> wait_ptr;
  std::vector<index_t> wait_thread;
  std::vector<index_t> wait_count;

  /// Retained level structure: level l covers
  /// serial_order[level_ptr[l] .. level_ptr[l+1]). serial_order (level-major
  /// row listing) doubles as the dependency-safe serial execution order and,
  /// with level_ptr, as the input retarget() rebuilds from.
  std::vector<index_t> level_ptr;
  std::vector<index_t> serial_order;

  /// Per-level synchronization regimes (LevelRegime bytes, one per level).
  /// EMPTY means uniform execution under `backend` — the only state the
  /// non-hybrid executor branches ever see. Non-empty (set through
  /// apply_level_tags, which also prunes the waits each regime's sync
  /// already covers) routes exec_run through the hybrid branch: contiguous
  /// same-tag level SEGMENTS, a team barrier at every segment entry, the
  /// regime's own protocol inside.
  std::vector<std::uint8_t> level_tags;

  /// Spin-wait escalation budget: pause-loop iterations before a wait
  /// (counter spin, level barrier) starts yielding the CPU. 0 derives the
  /// default from the team (spin_budget_for); ilu/ plumbs
  /// IluOptions::spin_max_pauses through here so the tuner can measure —
  /// and tests force — the pause→yield ladder.
  int spin_budget = 0;

  // --- statistics ----------------------------------------------------------
  index_t deps_total = 0;  ///< cross-thread dependencies before pruning
  index_t deps_kept = 0;   ///< spin-waits actually stored
  index_t num_levels = 0;  ///< also the barrier count per CSR-LS sweep

  index_t num_rows() const noexcept { return static_cast<index_t>(rows.size()); }
  index_t num_items() const noexcept {
    return item_ptr.empty() ? 0 : static_cast<index_t>(item_ptr.size()) - 1;
  }
  bool hybrid() const noexcept { return !level_tags.empty(); }
  LevelRegime level_regime(index_t l) const noexcept {
    return level_tags.empty()
               ? (backend == ExecBackend::kBarrier ? LevelRegime::kBarrier
                                                   : LevelRegime::kP2P)
               : static_cast<LevelRegime>(
                     level_tags[static_cast<std::size_t>(l)]);
  }

  // --- level-shape statistics (tuner pruning heuristic + bench signal) -----
  /// Mean rows per level (0 for an empty schedule).
  double mean_rows_per_level() const noexcept {
    return num_levels > 0
               ? static_cast<double>(serial_order.size()) /
                     static_cast<double>(num_levels)
               : 0.0;
  }
  /// Fraction of scheduled rows living in levels with fewer than
  /// `threshold` rows — the rows whose level is too narrow to feed a team.
  double small_level_row_frac(index_t threshold) const noexcept {
    if (serial_order.empty() || level_ptr.empty()) return 0.0;
    index_t small = 0;
    for (index_t l = 0; l < num_levels; ++l) {
      const index_t lsz = level_ptr[static_cast<std::size_t>(l) + 1] -
                          level_ptr[static_cast<std::size_t>(l)];
      if (lsz < threshold) small += lsz;
    }
    return static_cast<double>(small) /
           static_cast<double>(serial_order.size());
  }
  index_t max_items_per_thread() const noexcept {
    if (thread_ptr.empty()) return 0;  // default-constructed schedule
    index_t m = 0;
    for (int t = 0; t < threads; ++t) {
      m = std::max(m, thread_ptr[static_cast<std::size_t>(t) + 1] -
                          thread_ptr[static_cast<std::size_t>(t)]);
    }
    return m;
  }

  /// Producer lookup for consumers synchronizing against this schedule from
  /// OUTSIDE it (the fused solve+SpMV phase): owner[r] is the executing
  /// thread of row r (kInvalidIndex if unscheduled) and item_of[r] the
  /// 0-based item position within that thread, i.e. a consumer must
  /// wait_for(owner[r], item_of[r] + 1).
  void producer_positions(std::vector<index_t>& owner,
                          std::vector<index_t>& item_of) const;
};

/// Yields the dependency rows of a given row (rows that must complete
/// first). Dependencies outside the scheduled row set are ignored (they are
/// satisfied by construction — e.g. upper-stage rows for the corner).
using DepsFn = std::function<void(index_t row, const std::function<void(index_t)>& yield)>;

/// Build-time helper shared by the schedule builder and the fused-SpMV
/// companion (build_fused_apply_spmv): two-pass (count, fill) sparsified
/// wait-list construction with monotone per-producer high-water pruning.
/// Thread t executes consumers [consumer_thread_ptr[t],
/// consumer_thread_ptr[t+1]) in order. `seed` pre-loads the thread's
/// high-water marks with counts it has already waited for before its first
/// consumer (empty function = none). `deps(t, c, yield)` enumerates consumer
/// c's CROSS-thread dependencies as (producer thread, required published
/// count) — same-thread dependencies must be filtered by the caller. On
/// return wait_ptr/wait_thread/wait_count hold the pruned CSR-style wait
/// lists and deps_total/deps_kept the before/after dependency counts.
using WaitSeedFn = std::function<void(int t, std::span<index_t> last_wait)>;
using WaitDepsFn = std::function<void(
    int t, index_t consumer,
    const std::function<void(index_t producer_thread, index_t count)>& yield)>;

void build_sparsified_waits(int threads,
                            std::span<const index_t> consumer_thread_ptr,
                            const WaitSeedFn& seed, const WaitDepsFn& deps,
                            std::vector<index_t>& wait_ptr,
                            std::vector<index_t>& wait_thread,
                            std::vector<index_t>& wait_count,
                            index_t& deps_total, index_t& deps_kept);

/// Default rows per item; the sweep kernels are memory-bound, so a modest
/// block already hides the wait/publish latency without delaying consumers.
inline constexpr index_t kDefaultChunkRows = 32;

/// Build a schedule from explicit level sets (level-major lists of rows).
/// `levels_rows` / `levels_ptr` follow the LevelSets layout. `deps` is
/// consulted once per row at build time. `chunk_rows` bounds the rows per
/// item (blocking granule); values < 1 are clamped to 1. The wait lists are
/// built for EITHER backend (they are what retarget() and a later backend
/// switch rely on); the barrier executor simply never consults them.
ExecSchedule build_exec_schedule(ExecBackend backend, index_t n_total,
                                 std::span<const index_t> level_ptr,
                                 std::span<const index_t> rows_by_level,
                                 const DepsFn& deps, int threads,
                                 index_t chunk_rows = kDefaultChunkRows);

/// Re-plan `s` for a new team size: re-chunk the (level, thread) slices and
/// rebuild the sparsified waits from the retained level structure. `deps`
/// must enumerate the same dependencies the schedule was originally built
/// with (ilu/retarget.hpp supplies them from the factor). The result is
/// bitwise-identical — every field — to a fresh build at `threads`
/// (asserted by test_exec).
ExecSchedule retarget(const ExecSchedule& s, const DepsFn& deps, int threads);

/// Install per-level regime tags on `s` (size must equal s.num_levels; values
/// are LevelRegime bytes) and prune every stored wait the tagged regimes'
/// synchronization already covers. The hybrid executor barriers at each
/// same-tag segment entry (and after every kBarrier level), so a consumer in
/// level lc is guaranteed every item in levels below its regime FLOOR —
/// lc itself for kBarrier/kSerial levels, the segment's first level for kP2P
/// — has been published before it starts; waits whose producer count is
/// below that floor are deleted (deps_kept drops, deps_total is untouched).
/// After pruning, every surviving wait's producer lives in the consumer's
/// own P2P segment. An all-kP2P tag vector is normalized to "no tags"
/// (uniform schedule). Deterministic: retarget() re-applies the tags after
/// rebuilding, field-for-field identical to tagging a fresh build.
void apply_level_tags(ExecSchedule& s, std::span<const std::uint8_t> tags);

/// Dependency enumerators of the triangular-factor schedules, exposed so
/// consumers can retarget without re-deriving them. The returned closures
/// hold a pointer to `lu`, which must outlive them.
DepsFn lower_triangular_deps(const CsrMatrix& lu);  ///< strictly-lower cols
DepsFn upper_triangular_deps(const CsrMatrix& lu);  ///< strictly-upper cols

/// Forward schedule for the upper stage of a two-stage plan: rows
/// [0, n_upper) with contiguous levels; dependencies are the strictly-lower
/// columns of `lu` (which is both the factorization and the forward-solve
/// dependency structure — the co-design of paper §VI).
ExecSchedule build_upper_forward_schedule(const CsrMatrix& lu,
                                          std::span<const index_t> upper_level_ptr,
                                          ExecBackend backend, int threads,
                                          index_t chunk_rows = kDefaultChunkRows);

/// Backward schedule over ALL rows: dependencies are the strictly-upper
/// columns of `lu`; levels computed on that pattern, processed high-to-low.
ExecSchedule build_backward_schedule(const CsrMatrix& lu, ExecBackend backend,
                                     int threads,
                                     index_t chunk_rows = kDefaultChunkRows);

}  // namespace javelin
