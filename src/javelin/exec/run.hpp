// Runtime execution of an ExecSchedule under either backend.
//
// exec_run(s, row_fn, progress) launches one parallel region of s.threads
// and drives row_fn(row, thread) in dependency order:
//
//   * kP2P: each thread walks its items; before an item it performs the
//     item's sparsified spin-waits on the shared ProgressCounters, after it
//     it publishes its own monotone counter — threads speed ahead of each
//     other (paper §III-A).
//   * kBarrier: each thread recomputes its contiguous slice of every level
//     (the same partition_range slices the builder assigned) and the whole
//     team crosses a spin barrier between levels — the CSR-LS baseline.
//
// Both backends execute identical (row, thread) assignments with identical
// per-row orders, so they are bitwise-interchangeable; only synchronization
// differs. Teams of 1 — including schedules retargeted down to one thread —
// run the serial level-major order with zero synchronization.
//
// If the OpenMP runtime delivers a SMALLER team than scheduled (nested
// parallelism, thread limits), the region degrades to the serial order as a
// last-resort correctness path. Consumers avoid this by retargeting the
// schedule to the runtime team first (ilu/retarget.hpp) — the serial path
// here is a safety net, not a policy.
#pragma once

#include <utility>

#include "javelin/exec/schedule.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

/// Dependency-safe serial sweep (level-major order).
template <class RowFn>
void exec_run_serial(const ExecSchedule& s, RowFn&& row_fn) {
  for (index_t r : s.serial_order) row_fn(r, 0);
}

/// Execute the schedule with caller-provided progress counters. `row_fn(row,
/// thread)` is called once per row, in dependency order, from inside a
/// parallel region; it must not throw.
///
/// `progress` is grown (reallocating) only when it is smaller than the
/// schedule's team and re-armed (zeroed) otherwise, so callers that sweep
/// thousands of times — the stri-per-Krylov-iteration profile, and the AMG
/// smoother running stri at every level of every V-cycle — pay the
/// threads×64B counter allocation once, not per sweep. (The barrier backend
/// leaves `progress` untouched; it synchronizes through a stack barrier.)
template <class RowFn>
void exec_run(const ExecSchedule& s, RowFn&& row_fn,
              ProgressCounters& progress) {
  if (s.threads <= 1) {
    exec_run_serial(s, row_fn);
    return;
  }
  if (s.backend == ExecBackend::kP2P) {
    if (progress.num_threads() < s.threads) {
      progress.reset(s.threads);
    } else {
      progress.rearm();
    }
  }
  SpinBarrier barrier(s.threads);
  bool fallback = false;
#pragma omp parallel num_threads(s.threads)
  {
    // team_size() is uniform across the team, so every thread reaches the
    // same verdict locally — no single+barrier round just to agree on it.
    // (Uniformity also keeps the level barriers below team-collective.)
    if (team_size() < s.threads) {
      if (thread_id() == 0) fallback = true;  // sole writer
    } else if (s.backend == ExecBackend::kBarrier) {
      const int t = thread_id();
      const int spin_budget = spin_budget_for(s.threads);
      for (index_t l = 0; l < s.num_levels; ++l) {
        const index_t base = s.level_ptr[static_cast<std::size_t>(l)];
        const index_t lsz = s.level_ptr[static_cast<std::size_t>(l) + 1] - base;
        const Range rr = partition_range(lsz, s.threads, t);
        for (index_t k = base + rr.begin; k < base + rr.end; ++k) {
          row_fn(s.serial_order[static_cast<std::size_t>(k)], t);
        }
        barrier.arrive_and_wait(spin_budget);
      }
    } else {
      const int t = thread_id();
      const int spin_budget = spin_budget_for(s.threads);
      const index_t lo = s.thread_ptr[static_cast<std::size_t>(t)];
      const index_t hi = s.thread_ptr[static_cast<std::size_t>(t) + 1];
      index_t done = 0;
      for (index_t i = lo; i < hi; ++i) {
        // One merged wait list, then the whole row block — the spin-wait
        // checks and the release store are amortized over chunk_rows rows.
        for (index_t w = s.wait_ptr[static_cast<std::size_t>(i)];
             w < s.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
          progress.wait_for(static_cast<int>(s.wait_thread[static_cast<std::size_t>(w)]),
                            s.wait_count[static_cast<std::size_t>(w)], spin_budget);
        }
        for (index_t k = s.item_ptr[static_cast<std::size_t>(i)];
             k < s.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          row_fn(s.rows[static_cast<std::size_t>(k)], t);
        }
        ++done;
        progress.publish(t, done);
      }
    }
  }
  if (fallback) {
    exec_run_serial(s, row_fn);
  }
}

/// Convenience overload with per-call counters (one-shot executions such as
/// the factorization numeric phase; sweep loops should pass a persistent
/// ProgressCounters instead).
template <class RowFn>
void exec_run(const ExecSchedule& s, RowFn&& row_fn) {
  ProgressCounters progress;
  exec_run(s, std::forward<RowFn>(row_fn), progress);
}

}  // namespace javelin
