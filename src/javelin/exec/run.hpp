// Runtime execution of an ExecSchedule under either backend.
//
// exec_run(s, row_fn, progress) launches one parallel region of s.threads
// and drives row_fn(row, thread) in dependency order:
//
//   * kP2P: each thread walks its items; before an item it performs the
//     item's sparsified spin-waits on the shared ProgressCounters, after it
//     it publishes its own monotone counter — threads speed ahead of each
//     other (paper §III-A).
//   * kBarrier: each thread recomputes its contiguous slice of every level
//     (the same partition_range slices the builder assigned) and the whole
//     team crosses a spin barrier between levels — the CSR-LS baseline.
//
// Both backends execute identical (row, thread) assignments with identical
// per-row orders, so they are bitwise-interchangeable; only synchronization
// differs. Teams of 1 — including schedules retargeted down to one thread —
// run the serial level-major order with zero synchronization.
//
// If the OpenMP runtime delivers a SMALLER team than scheduled (nested
// parallelism, thread limits), the region degrades to the serial order as a
// last-resort correctness path. Consumers avoid this by retargeting the
// schedule to the runtime team first (ilu/retarget.hpp) — the serial path
// here is a safety net, not a policy.
//
// Cooperative abort: row_fn may return bool instead of void. A `false`
// return marks the region aborted — the failing thread records the row in
// an AbortFlag and stops publishing; every spin-wait (P2P counter waits and
// the level barrier alike) polls the flag, so peers drain out of their wait
// loops within a bounded number of misses instead of spinning on a row that
// will never complete. No exception crosses the parallel region: exec_run
// returns a structured ExecStatus and the caller decides whether to throw,
// retry, or fall back. Void-returning row functions keep the historical
// zero-overhead hot path (no flag polling at all).
#pragma once

#include <type_traits>
#include <utility>

#include "javelin/exec/schedule.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

enum class ExecOutcome : std::uint8_t {
  kOk,       ///< every scheduled row ran
  kAborted,  ///< a row function vetoed; the region drained cooperatively
};

/// Structured result of an exec_run region. On abort, `row` is the first
/// row recorded by the winning AbortFlag request — when a single row can
/// fail (one bad pivot, one injected fault) this is deterministic, and it
/// always lies in the earliest level that contains a failing row, because
/// no thread passes a level whose barrier never completed (kBarrier) or
/// consumes a publication that never happened (kP2P).
struct ExecStatus {
  ExecOutcome outcome = ExecOutcome::kOk;
  index_t row = kInvalidIndex;

  bool ok() const noexcept { return outcome == ExecOutcome::kOk; }
};

namespace detail {

/// True when RowFn participates in cooperative abort by returning bool.
template <class RowFn>
inline constexpr bool kGuardedRowFn =
    std::is_same_v<std::invoke_result_t<RowFn&, index_t, int>, bool>;

/// Invoke a row function, mapping void returns to "keep going".
template <class RowFn>
inline bool exec_row(RowFn& row_fn, index_t row, int t) {
  if constexpr (kGuardedRowFn<RowFn>) {
    return row_fn(row, t);
  } else {
    row_fn(row, t);
    return true;
  }
}

}  // namespace detail

/// Dependency-safe serial sweep (level-major order). Honors cooperative
/// abort for bool-returning row functions and an optional external flag
/// (e.g. raised by a concurrent stage sharing the same poison domain).
template <class RowFn>
ExecStatus exec_run_serial(const ExecSchedule& s, RowFn&& row_fn,
                           AbortFlag* abort = nullptr) {
  for (index_t r : s.serial_order) {
    if (abort != nullptr && abort->aborted()) {
      return {ExecOutcome::kAborted, abort->row()};
    }
    if (!detail::exec_row(row_fn, r, 0)) {
      if (abort != nullptr) abort->request(r);
      return {ExecOutcome::kAborted, r};
    }
  }
  return {};
}

/// Execute the schedule with caller-provided progress counters. `row_fn(row,
/// thread)` is called once per row, in dependency order, from inside a
/// parallel region; it must not throw. Returning bool (false = poison this
/// region) opts into cooperative abort; see the header comment.
///
/// `progress` is grown (reallocating) only when it is smaller than the
/// schedule's team and re-armed (zeroed) otherwise, so callers that sweep
/// thousands of times — the stri-per-Krylov-iteration profile, and the AMG
/// smoother running stri at every level of every V-cycle — pay the
/// threads×64B counter allocation once, not per sweep. (The barrier backend
/// leaves `progress` untouched; it synchronizes through a stack barrier.)
///
/// `external_abort`, when provided, is both observed (rows stop being
/// issued once it is raised, waits give up) and raised on row failure, so
/// several cooperating stages can share one poison domain.
template <class RowFn>
ExecStatus exec_run(const ExecSchedule& s, RowFn&& row_fn,
                    ProgressCounters& progress,
                    AbortFlag* external_abort = nullptr) {
  constexpr bool kGuarded = detail::kGuardedRowFn<std::remove_reference_t<RowFn>>;
  AbortFlag local_abort;
  AbortFlag* abort = external_abort;
  if constexpr (kGuarded) {
    if (abort == nullptr) abort = &local_abort;
  }
  // `watch` folds to false for unguarded fns without an external flag, so
  // the historical hot path compiles with zero abort polling.
  const bool watch = abort != nullptr;

  if (s.threads <= 1) return exec_run_serial(s, row_fn, abort);

  if (s.backend == ExecBackend::kP2P) {
    if (progress.num_threads() < s.threads) {
      progress.reset(s.threads);
    } else {
      progress.rearm();
    }
  }
  SpinBarrier barrier(s.threads);
  bool fallback = false;
#pragma omp parallel num_threads(s.threads)
  {
    // team_size() is uniform across the team, so every thread reaches the
    // same verdict locally — no single+barrier round just to agree on it.
    // (Uniformity also keeps the level barriers below team-collective.)
    if (team_size() < s.threads) {
      if (thread_id() == 0) fallback = true;  // sole writer
    } else if (s.backend == ExecBackend::kBarrier) {
      const int t = thread_id();
      const int spin_budget = spin_budget_for(s.threads);
      for (index_t l = 0; l < s.num_levels; ++l) {
        if (watch && abort->aborted()) break;
        const index_t base = s.level_ptr[static_cast<std::size_t>(l)];
        const index_t lsz = s.level_ptr[static_cast<std::size_t>(l) + 1] - base;
        const Range rr = partition_range(lsz, s.threads, t);
        bool live = true;
        for (index_t k = base + rr.begin; k < base + rr.end; ++k) {
          const index_t row = s.serial_order[static_cast<std::size_t>(k)];
          if (!detail::exec_row(row_fn, row, t)) {
            if (abort != nullptr) abort->request(row);
            live = false;
            break;
          }
        }
        // A failed thread leaves without arriving, so the barrier can never
        // complete for this level: peers notice through the abort-aware
        // wait and drain. No thread ever advances past a poisoned level.
        if (!live) break;
        if (watch && abort->aborted()) break;
        if (!barrier.arrive_and_wait(spin_budget, abort)) break;
      }
    } else {
      const int t = thread_id();
      const int spin_budget = spin_budget_for(s.threads);
      const index_t lo = s.thread_ptr[static_cast<std::size_t>(t)];
      const index_t hi = s.thread_ptr[static_cast<std::size_t>(t) + 1];
      index_t done = 0;
      for (index_t i = lo; i < hi; ++i) {
        if (watch && abort->aborted()) break;
        // One merged wait list, then the whole row block — the spin-wait
        // checks and the release store are amortized over chunk_rows rows.
        bool live = true;
        for (index_t w = s.wait_ptr[static_cast<std::size_t>(i)];
             w < s.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
          if (!progress.wait_for(
                  static_cast<int>(s.wait_thread[static_cast<std::size_t>(w)]),
                  s.wait_count[static_cast<std::size_t>(w)], spin_budget,
                  abort)) {
            live = false;
            break;
          }
        }
        if (!live) break;
        for (index_t k = s.item_ptr[static_cast<std::size_t>(i)];
             k < s.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const index_t row = s.rows[static_cast<std::size_t>(k)];
          if (!detail::exec_row(row_fn, row, t)) {
            if (abort != nullptr) abort->request(row);
            live = false;
            break;
          }
        }
        // A failed item is never published, so consumers of any row in it
        // (or after it) stall on the counter until they observe the flag.
        if (!live) break;
        ++done;
        progress.publish(t, done);
      }
    }
  }
  if (abort != nullptr && abort->aborted()) {
    return {ExecOutcome::kAborted, abort->row()};
  }
  if (fallback) return exec_run_serial(s, row_fn, abort);
  return {};
}

/// Convenience overload with per-call counters (one-shot executions such as
/// the factorization numeric phase; sweep loops should pass a persistent
/// ProgressCounters instead).
template <class RowFn>
ExecStatus exec_run(const ExecSchedule& s, RowFn&& row_fn,
                    AbortFlag* external_abort = nullptr) {
  ProgressCounters progress;
  return exec_run(s, std::forward<RowFn>(row_fn), progress, external_abort);
}

}  // namespace javelin
