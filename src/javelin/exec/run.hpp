// Runtime execution of an ExecSchedule under either backend.
//
// exec_run(s, row_fn, progress) launches one parallel region of s.threads
// and drives row_fn(row, thread) in dependency order:
//
//   * kP2P: each thread walks its items; before an item it performs the
//     item's sparsified spin-waits on the shared ProgressCounters, after it
//     it publishes its own monotone counter — threads speed ahead of each
//     other (paper §III-A).
//   * kBarrier: each thread recomputes its contiguous slice of every level
//     (the same partition_range slices the builder assigned) and the whole
//     team crosses a spin barrier between levels — the CSR-LS baseline.
//
// Both backends execute identical (row, thread) assignments with identical
// per-row orders, so they are bitwise-interchangeable; only synchronization
// differs. Teams of 1 — including schedules retargeted down to one thread —
// run the serial level-major order with zero synchronization.
//
// If the OpenMP runtime delivers a SMALLER team than scheduled (nested
// parallelism, thread limits), the region degrades to the serial order as a
// last-resort correctness path. Consumers avoid this by retargeting the
// schedule to the runtime team first (ilu/retarget.hpp) — the serial path
// here is a safety net, not a policy.
//
// Cooperative abort: row_fn may return bool instead of void. A `false`
// return marks the region aborted — the failing thread records the row in
// an AbortFlag and stops publishing; every spin-wait (P2P counter waits and
// the level barrier alike) polls the flag, so peers drain out of their wait
// loops within a bounded number of misses instead of spinning on a row that
// will never complete. No exception crosses the parallel region: exec_run
// returns a structured ExecStatus and the caller decides whether to throw,
// retry, or fall back. Void-returning row functions keep the historical
// zero-overhead hot path (no flag polling at all).
//
// Observability follows the same compile-time gating pattern: the region
// body is one template, detail::exec_run_impl<Obs>. exec_run instantiates
// it with detail::NoObs — every instrumentation site is an `if constexpr`
// on Obs::kOn, so the default path compiles to exactly the historical loop
// (no clock reads, no counter stores, no trace checks). exec_run_obs
// instantiates with obs::SweepObs, which records per-thread spin-wait
// counters, per-(thread, level) busy/wait time, and (when the trace
// session is on) per-thread per-level spans — aggregated into the
// obs::ExecStats of the caller's ExecObs, returned next to the ExecStatus.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "javelin/exec/schedule.hpp"
#include "javelin/obs/exec_obs.hpp"
#include "javelin/obs/trace.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/support/spinwait.hpp"

namespace javelin {

enum class ExecOutcome : std::uint8_t {
  kOk,       ///< every scheduled row ran
  kAborted,  ///< a row function vetoed; the region drained cooperatively
};

/// Structured result of an exec_run region. On abort, `row` is the first
/// row recorded by the winning AbortFlag request — when a single row can
/// fail (one bad pivot, one injected fault) this is deterministic, and it
/// always lies in the earliest level that contains a failing row, because
/// no thread passes a level whose barrier never completed (kBarrier) or
/// consumes a publication that never happened (kP2P).
struct ExecStatus {
  ExecOutcome outcome = ExecOutcome::kOk;
  index_t row = kInvalidIndex;

  bool ok() const noexcept { return outcome == ExecOutcome::kOk; }
};

namespace detail {

/// True when RowFn participates in cooperative abort by returning bool.
template <class RowFn>
inline constexpr bool kGuardedRowFn =
    std::is_same_v<std::invoke_result_t<RowFn&, index_t, int>, bool>;

/// Invoke a row function, mapping void returns to "keep going".
template <class RowFn>
inline bool exec_row(RowFn& row_fn, index_t row, int t) {
  if constexpr (kGuardedRowFn<RowFn>) {
    return row_fn(row, t);
  } else {
    row_fn(row, t);
    return true;
  }
}

/// Disabled-observability policy: every instrumentation site below is
/// `if constexpr (Obs::kOn)`, so this instantiation is the zero-overhead
/// hot loop (bit-for-bit the pre-observability code path).
struct NoObs {
  static constexpr bool kOn = false;
};

/// Stalls shorter than this are counters-only; longer ones also get a trace
/// event (keeps trace files focused on the waits that explain lost time).
inline constexpr std::int64_t kStallSpanNs = 1000;

}  // namespace detail

/// Dependency-safe serial sweep (level-major order). Honors cooperative
/// abort for bool-returning row functions and an optional external flag
/// (e.g. raised by a concurrent stage sharing the same poison domain).
template <class RowFn>
ExecStatus exec_run_serial(const ExecSchedule& s, RowFn&& row_fn,
                           AbortFlag* abort = nullptr) {
  for (index_t r : s.serial_order) {
    if (abort != nullptr && abort->aborted()) {
      return {ExecOutcome::kAborted, abort->row()};
    }
    if (!detail::exec_row(row_fn, r, 0)) {
      if (abort != nullptr) abort->request(r);
      return {ExecOutcome::kAborted, r};
    }
  }
  return {};
}

namespace detail {

/// Serial sweep with per-level attribution (thread slot 0) and spans.
template <class RowFn, class Obs>
ExecStatus exec_run_serial_obs(const ExecSchedule& s, RowFn& row_fn,
                               AbortFlag* abort, Obs& obs) {
  obs::TraceBuffer* buf =
      obs.tracing() ? &obs::TraceSession::instance().buffer() : nullptr;
  const bool flat = s.level_ptr.empty();
  const index_t nl = flat ? 1 : s.num_levels;
  for (index_t l = 0; l < nl; ++l) {
    const index_t k0 = flat ? 0 : s.level_ptr[static_cast<std::size_t>(l)];
    const index_t k1 = flat ? static_cast<index_t>(s.serial_order.size())
                            : s.level_ptr[static_cast<std::size_t>(l) + 1];
    const std::int64_t t0 = obs::now_ns();
    for (index_t k = k0; k < k1; ++k) {
      const index_t r = s.serial_order[static_cast<std::size_t>(k)];
      if (abort != nullptr && abort->aborted()) {
        return {ExecOutcome::kAborted, abort->row()};
      }
      if (!exec_row(row_fn, r, 0)) {
        if (abort != nullptr) abort->request(r);
        return {ExecOutcome::kAborted, r};
      }
    }
    const std::int64_t t1 = obs::now_ns();
    obs.add_level_busy(0, l, static_cast<std::uint64_t>(t1 - t0));
    obs.slot(0).busy_ns += static_cast<std::uint64_t>(t1 - t0);
    if (buf != nullptr) {
      buf->begin_at(obs.name(), t0, l);
      buf->end_at(obs.name(), t1);
    }
  }
  return {};
}

/// The one region body both gating levels instantiate; see the header
/// comment. Structure (and, for NoObs, codegen) matches the historical
/// exec_run exactly.
template <class RowFn, class Obs>
ExecStatus exec_run_impl(const ExecSchedule& s, RowFn&& row_fn,
                         ProgressCounters& progress, AbortFlag* external_abort,
                         Obs& obs) {
  constexpr bool kGuarded = kGuardedRowFn<std::remove_reference_t<RowFn>>;
  AbortFlag local_abort;
  AbortFlag* abort = external_abort;
  if constexpr (kGuarded) {
    if (abort == nullptr) abort = &local_abort;
  }
  // `watch` folds to false for unguarded fns without an external flag, so
  // the historical hot path compiles with zero abort polling.
  const bool watch = abort != nullptr;

  if (s.threads <= 1) {
    if constexpr (Obs::kOn) {
      return exec_run_serial_obs(s, row_fn, abort, obs);
    } else {
      return exec_run_serial(s, row_fn, abort);
    }
  }

  if (s.backend == ExecBackend::kP2P || s.hybrid()) {
    if (progress.num_threads() < s.threads) {
      progress.reset(s.threads);
    } else {
      progress.rearm();
    }
  }
  SpinBarrier barrier(s.threads);
  bool fallback = false;
#pragma omp parallel num_threads(s.threads)
  {
    // team_size() is uniform across the team, so every thread reaches the
    // same verdict locally — no single+barrier round just to agree on it.
    // (Uniformity also keeps the level barriers below team-collective.)
    if (team_size() < s.threads) {
      if (thread_id() == 0) fallback = true;  // sole writer
    } else if (s.hybrid()) {
      // Hybrid per-level regimes (tune/): contiguous same-tag level
      // SEGMENTS, a team barrier at every segment entry, the regime's own
      // protocol inside. Each thread advances its item cursor and publishes
      // its progress counter across NON-P2P levels too, so P2P consumers in
      // a later segment never spin on work a barrier or serial level
      // already finished (their cross-segment waits were pruned to the
      // regime floor by apply_level_tags — every surviving wait's producer
      // is in the consumer's own P2P segment).
      const int t = thread_id();
      const int spin_budget =
          s.spin_budget > 0 ? s.spin_budget : spin_budget_for(s.threads);
      const index_t chunk = s.chunk_rows > 0 ? s.chunk_rows : 1;
      // Items of this thread in level l (the builder's layout re-derived,
      // exactly as the barrier branch re-derives its row slices).
      const auto items_here = [&](index_t l) {
        const index_t lsz = s.level_ptr[static_cast<std::size_t>(l) + 1] -
                            s.level_ptr[static_cast<std::size_t>(l)];
        const index_t r = partition_range(lsz, s.threads, t).size();
        return (r + chunk - 1) / chunk;
      };
      index_t item = s.thread_ptr[static_cast<std::size_t>(t)];
      index_t done = 0;
      bool live = true;
      index_t l = 0;
      while (l < s.num_levels && live) {
        const LevelRegime reg = s.level_regime(l);
        index_t seg_end = l + 1;
        while (seg_end < s.num_levels && s.level_regime(seg_end) == reg) {
          ++seg_end;
        }
        // Segment-entry barrier: orders this segment after everything
        // before it and makes the pre-segment counter publishes visible.
        // An aborted peer never arrives, so nothing past a poisoned
        // segment boundary ever runs.
        std::int64_t b0 = 0;
        if constexpr (Obs::kOn) b0 = obs::now_ns();
        bool turned;
        if constexpr (Obs::kOn) {
          turned = barrier.arrive_and_wait_counted(spin_budget, abort,
                                                   obs.slot(t));
        } else {
          turned = barrier.arrive_and_wait(spin_budget, abort);
        }
        if constexpr (Obs::kOn) {
          const std::int64_t b1 = obs::now_ns();
          obs.slot(t).barrier_ns += static_cast<std::uint64_t>(b1 - b0);
          obs.add_level_wait(t, l, static_cast<std::uint64_t>(b1 - b0));
        }
        if (!turned) break;
        if (watch && abort->aborted()) break;
        if (reg == LevelRegime::kSerial) {
          // Thread 0 runs the whole segment's rows in serial order; the
          // other threads skip straight to the bookkeeping. Everyone
          // advances its own cursor past its items of these levels and
          // publishes — single-writer counters preserved. An abort inside
          // the segment is caught at the next segment-entry barrier (the
          // publishes below cannot be consumed before it).
          if (t == 0) {
            std::int64_t t0 = 0;
            if constexpr (Obs::kOn) t0 = obs::now_ns();
            for (index_t k = s.level_ptr[static_cast<std::size_t>(l)];
                 k < s.level_ptr[static_cast<std::size_t>(seg_end)]; ++k) {
              const index_t row = s.serial_order[static_cast<std::size_t>(k)];
              if (!exec_row(row_fn, row, t)) {
                if (abort != nullptr) abort->request(row);
                live = false;
                break;
              }
            }
            if constexpr (Obs::kOn) {
              const std::int64_t t1 = obs::now_ns();
              obs.slot(t).busy_ns += static_cast<std::uint64_t>(t1 - t0);
              obs.add_level_busy(t, l, static_cast<std::uint64_t>(t1 - t0));
            }
          }
          for (index_t lv = l; lv < seg_end; ++lv) {
            const index_t ni = items_here(lv);
            item += ni;
            done += ni;
          }
          if (live) progress.publish(t, done);
        } else if (reg == LevelRegime::kBarrier) {
          for (index_t lv = l; lv < seg_end; ++lv) {
            const index_t base = s.level_ptr[static_cast<std::size_t>(lv)];
            const index_t lsz =
                s.level_ptr[static_cast<std::size_t>(lv) + 1] - base;
            const Range rr = partition_range(lsz, s.threads, t);
            std::int64_t t0 = 0;
            if constexpr (Obs::kOn) t0 = obs::now_ns();
            for (index_t k = base + rr.begin; k < base + rr.end; ++k) {
              const index_t row = s.serial_order[static_cast<std::size_t>(k)];
              if (!exec_row(row_fn, row, t)) {
                if (abort != nullptr) abort->request(row);
                live = false;
                break;
              }
            }
            if constexpr (Obs::kOn) {
              const std::int64_t t1 = obs::now_ns();
              obs.slot(t).busy_ns += static_cast<std::uint64_t>(t1 - t0);
              obs.add_level_busy(t, lv, static_cast<std::uint64_t>(t1 - t0));
            }
            if (!live) break;
            const index_t ni = items_here(lv);
            item += ni;
            done += ni;
            progress.publish(t, done);
            // Per-level barrier (except before a segment boundary, where
            // the next segment's entry barrier takes its place).
            if (lv + 1 < seg_end) {
              bool lvl_turned;
              if constexpr (Obs::kOn) {
                const std::int64_t lb0 = obs::now_ns();
                lvl_turned = barrier.arrive_and_wait_counted(spin_budget,
                                                             abort, obs.slot(t));
                const std::int64_t lb1 = obs::now_ns();
                obs.slot(t).barrier_ns += static_cast<std::uint64_t>(lb1 - lb0);
                obs.add_level_wait(t, lv, static_cast<std::uint64_t>(lb1 - lb0));
              } else {
                lvl_turned = barrier.arrive_and_wait(spin_budget, abort);
              }
              if (!lvl_turned) {
                live = false;
                break;
              }
              if (watch && abort->aborted()) {
                live = false;
                break;
              }
            }
          }
        } else {  // LevelRegime::kP2P
          index_t n_items = 0;
          for (index_t lv = l; lv < seg_end; ++lv) n_items += items_here(lv);
          for (index_t e = 0; e < n_items; ++e, ++item) {
            if (watch && abort->aborted()) {
              live = false;
              break;
            }
            std::int64_t w0 = 0;
            if constexpr (Obs::kOn) w0 = obs::now_ns();
            for (index_t w = s.wait_ptr[static_cast<std::size_t>(item)];
                 w < s.wait_ptr[static_cast<std::size_t>(item) + 1]; ++w) {
              const int pt = static_cast<int>(
                  s.wait_thread[static_cast<std::size_t>(w)]);
              const index_t pc = s.wait_count[static_cast<std::size_t>(w)];
              bool arrived;
              if constexpr (Obs::kOn) {
                arrived = progress.wait_for_counted(pt, pc, spin_budget,
                                                    abort, obs.slot(t));
              } else {
                arrived = progress.wait_for(pt, pc, spin_budget, abort);
              }
              if (!arrived) {
                live = false;
                break;
              }
            }
            if constexpr (Obs::kOn) {
              const std::int64_t w1 = obs::now_ns();
              obs.slot(t).wait_ns += static_cast<std::uint64_t>(w1 - w0);
              obs.add_level_wait(t, l, static_cast<std::uint64_t>(w1 - w0));
            }
            if (!live) break;
            std::int64_t r0 = 0;
            if constexpr (Obs::kOn) r0 = obs::now_ns();
            for (index_t k = s.item_ptr[static_cast<std::size_t>(item)];
                 k < s.item_ptr[static_cast<std::size_t>(item) + 1]; ++k) {
              const index_t row = s.rows[static_cast<std::size_t>(k)];
              if (!exec_row(row_fn, row, t)) {
                if (abort != nullptr) abort->request(row);
                live = false;
                break;
              }
            }
            if constexpr (Obs::kOn) {
              const std::int64_t r1 = obs::now_ns();
              obs.slot(t).busy_ns += static_cast<std::uint64_t>(r1 - r0);
              obs.add_level_busy(t, l, static_cast<std::uint64_t>(r1 - r0));
            }
            if (!live) break;
            ++done;
            progress.publish(t, done);
          }
        }
        l = seg_end;
      }
    } else if (s.backend == ExecBackend::kBarrier) {
      const int t = thread_id();
      const int spin_budget =
          s.spin_budget > 0 ? s.spin_budget : spin_budget_for(s.threads);
      [[maybe_unused]] obs::TraceBuffer* buf = nullptr;
      if constexpr (Obs::kOn) {
        if (obs.tracing()) buf = &obs::TraceSession::instance().buffer();
      }
      for (index_t l = 0; l < s.num_levels; ++l) {
        if (watch && abort->aborted()) break;
        const index_t base = s.level_ptr[static_cast<std::size_t>(l)];
        const index_t lsz = s.level_ptr[static_cast<std::size_t>(l) + 1] - base;
        const Range rr = partition_range(lsz, s.threads, t);
        std::int64_t t0 = 0;
        if constexpr (Obs::kOn) t0 = obs::now_ns();
        bool live = true;
        for (index_t k = base + rr.begin; k < base + rr.end; ++k) {
          const index_t row = s.serial_order[static_cast<std::size_t>(k)];
          if (!exec_row(row_fn, row, t)) {
            if (abort != nullptr) abort->request(row);
            live = false;
            break;
          }
        }
        if constexpr (Obs::kOn) {
          const std::int64_t t1 = obs::now_ns();
          obs.add_level_busy(t, l, static_cast<std::uint64_t>(t1 - t0));
          obs.slot(t).busy_ns += static_cast<std::uint64_t>(t1 - t0);
          if (buf != nullptr) {
            buf->begin_at(obs.name(), t0, l);
            buf->end_at(obs.name(), t1);
          }
        }
        // A failed thread leaves without arriving, so the barrier can never
        // complete for this level: peers notice through the abort-aware
        // wait and drain. No thread ever advances past a poisoned level.
        if (!live) break;
        if (watch && abort->aborted()) break;
        if constexpr (Obs::kOn) {
          const std::int64_t b0 = obs::now_ns();
          const bool turned =
              barrier.arrive_and_wait_counted(spin_budget, abort, obs.slot(t));
          const std::int64_t b1 = obs::now_ns();
          obs.slot(t).barrier_ns += static_cast<std::uint64_t>(b1 - b0);
          obs.add_level_wait(t, l, static_cast<std::uint64_t>(b1 - b0));
          if (buf != nullptr && b1 - b0 >= kStallSpanNs) {
            buf->complete("barrier", b0, b1 - b0, l);
          }
          if (!turned) break;
        } else {
          if (!barrier.arrive_and_wait(spin_budget, abort)) break;
        }
      }
    } else {
      const int t = thread_id();
      const int spin_budget =
          s.spin_budget > 0 ? s.spin_budget : spin_budget_for(s.threads);
      const index_t lo = s.thread_ptr[static_cast<std::size_t>(t)];
      const index_t hi = s.thread_ptr[static_cast<std::size_t>(t) + 1];
      [[maybe_unused]] obs::TraceBuffer* buf = nullptr;
      [[maybe_unused]] index_t span_level = kInvalidIndex;
      if constexpr (Obs::kOn) {
        if (obs.tracing()) buf = &obs::TraceSession::instance().buffer();
      }
      index_t done = 0;
      for (index_t i = lo; i < hi; ++i) {
        if (watch && abort->aborted()) break;
        [[maybe_unused]] index_t lvl = 0;
        [[maybe_unused]] std::int64_t w0 = 0;
        if constexpr (Obs::kOn) {
          lvl = obs.item_level(i);
          w0 = obs::now_ns();
          // One span per contiguous run of same-level items per thread.
          if (buf != nullptr && lvl != span_level) {
            if (span_level != kInvalidIndex) buf->end_at(obs.name(), w0);
            buf->begin_at(obs.name(), w0, lvl);
            span_level = lvl;
          }
        }
        // One merged wait list, then the whole row block — the spin-wait
        // checks and the release store are amortized over chunk_rows rows.
        bool live = true;
        for (index_t w = s.wait_ptr[static_cast<std::size_t>(i)];
             w < s.wait_ptr[static_cast<std::size_t>(i) + 1]; ++w) {
          const int pt =
              static_cast<int>(s.wait_thread[static_cast<std::size_t>(w)]);
          const index_t pc = s.wait_count[static_cast<std::size_t>(w)];
          bool arrived;
          if constexpr (Obs::kOn) {
            arrived = progress.wait_for_counted(pt, pc, spin_budget, abort,
                                                obs.slot(t));
          } else {
            arrived = progress.wait_for(pt, pc, spin_budget, abort);
          }
          if (!arrived) {
            live = false;
            break;
          }
        }
        [[maybe_unused]] std::int64_t w1 = 0;
        if constexpr (Obs::kOn) {
          w1 = obs::now_ns();
          obs.slot(t).wait_ns += static_cast<std::uint64_t>(w1 - w0);
          obs.add_level_wait(t, lvl, static_cast<std::uint64_t>(w1 - w0));
          if (buf != nullptr && w1 - w0 >= kStallSpanNs) {
            buf->complete("stall", w0, w1 - w0, lvl);
          }
        }
        if (!live) break;
        for (index_t k = s.item_ptr[static_cast<std::size_t>(i)];
             k < s.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const index_t row = s.rows[static_cast<std::size_t>(k)];
          if (!exec_row(row_fn, row, t)) {
            if (abort != nullptr) abort->request(row);
            live = false;
            break;
          }
        }
        if constexpr (Obs::kOn) {
          const std::int64_t w2 = obs::now_ns();
          obs.slot(t).busy_ns += static_cast<std::uint64_t>(w2 - w1);
          obs.add_level_busy(t, lvl, static_cast<std::uint64_t>(w2 - w1));
        }
        // A failed item is never published, so consumers of any row in it
        // (or after it) stall on the counter until they observe the flag.
        if (!live) break;
        ++done;
        progress.publish(t, done);
      }
      if constexpr (Obs::kOn) {
        if (buf != nullptr && span_level != kInvalidIndex) {
          buf->end_at(obs.name(), obs::now_ns());
        }
      }
    }
  }
  if (abort != nullptr && abort->aborted()) {
    return {ExecOutcome::kAborted, abort->row()};
  }
  if (fallback) {
    if constexpr (Obs::kOn) {
      return exec_run_serial_obs(s, row_fn, abort, obs);
    } else {
      return exec_run_serial(s, row_fn, abort);
    }
  }
  return {};
}

}  // namespace detail

/// Execute the schedule with caller-provided progress counters. `row_fn(row,
/// thread)` is called once per row, in dependency order, from inside a
/// parallel region; it must not throw. Returning bool (false = poison this
/// region) opts into cooperative abort; see the header comment.
///
/// `progress` is grown (reallocating) only when it is smaller than the
/// schedule's team and re-armed (zeroed) otherwise, so callers that sweep
/// thousands of times — the stri-per-Krylov-iteration profile, and the AMG
/// smoother running stri at every level of every V-cycle — pay the
/// threads×64B counter allocation once, not per sweep. (The barrier backend
/// leaves `progress` untouched; it synchronizes through a stack barrier.)
///
/// `external_abort`, when provided, is both observed (rows stop being
/// issued once it is raised, waits give up) and raised on row failure, so
/// several cooperating stages can share one poison domain.
template <class RowFn>
ExecStatus exec_run(const ExecSchedule& s, RowFn&& row_fn,
                    ProgressCounters& progress,
                    AbortFlag* external_abort = nullptr) {
  detail::NoObs no_obs;
  return detail::exec_run_impl(s, std::forward<RowFn>(row_fn), progress,
                               external_abort, no_obs);
}

/// Convenience overload with per-call counters (one-shot executions such as
/// the factorization numeric phase; sweep loops should pass a persistent
/// ProgressCounters instead).
template <class RowFn>
ExecStatus exec_run(const ExecSchedule& s, RowFn&& row_fn,
                    AbortFlag* external_abort = nullptr) {
  ProgressCounters progress;
  return exec_run(s, std::forward<RowFn>(row_fn), progress, external_abort);
}

/// Instrumented execution: identical scheduling and results to exec_run
/// (the row order, synchronization protocol, and hence bitwise output do
/// not change), plus spin-wait telemetry and — when the trace session is
/// enabled — per-thread per-level spans. The sweep's measurements land in
/// `eo.stats(kind)`, the ExecStats aggregate next to the returned
/// ExecStatus.
template <class RowFn>
ExecStatus exec_run_obs(const ExecSchedule& s, RowFn&& row_fn,
                        ProgressCounters& progress, obs::ExecObs& eo,
                        obs::Region kind, AbortFlag* external_abort = nullptr) {
  obs::SweepObs& so = eo.begin_sweep(kind, s);
  const ExecStatus status = detail::exec_run_impl(
      s, std::forward<RowFn>(row_fn), progress, external_abort, so);
  eo.end_sweep(kind, s);
  return status;
}

}  // namespace javelin
