#include "javelin/exec/schedule.hpp"

#include <algorithm>

#include "javelin/graph/levels.hpp"
#include "javelin/support/parallel.hpp"

namespace javelin {

void ExecSchedule::producer_positions(std::vector<index_t>& owner,
                                      std::vector<index_t>& item_of) const {
  owner.assign(static_cast<std::size_t>(n_total), kInvalidIndex);
  item_of.assign(static_cast<std::size_t>(n_total), kInvalidIndex);
  for (int t = 0; t < threads; ++t) {
    for (index_t i = thread_ptr[static_cast<std::size_t>(t)];
         i < thread_ptr[static_cast<std::size_t>(t) + 1]; ++i) {
      for (index_t k = item_ptr[static_cast<std::size_t>(i)];
           k < item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t row = rows[static_cast<std::size_t>(k)];
        owner[static_cast<std::size_t>(row)] = static_cast<index_t>(t);
        item_of[static_cast<std::size_t>(row)] =
            i - thread_ptr[static_cast<std::size_t>(t)];
      }
    }
  }
}

void build_sparsified_waits(int threads,
                            std::span<const index_t> consumer_thread_ptr,
                            const WaitSeedFn& seed, const WaitDepsFn& deps,
                            std::vector<index_t>& wait_ptr,
                            std::vector<index_t>& wait_thread,
                            std::vector<index_t>& wait_count,
                            index_t& deps_total, index_t& deps_kept) {
  const int T = threads;
  const index_t n_consumers = consumer_thread_ptr[static_cast<std::size_t>(T)];
  wait_ptr.assign(static_cast<std::size_t>(n_consumers) + 1, 0);
  wait_thread.clear();
  wait_count.clear();
  deps_total = 0;
  deps_kept = 0;

  // Per-consumer dedup (gen-stamped max need per producer) feeding a
  // per-thread monotone high-water prune: a wait is stored only when it
  // raises what this consumer thread has already waited for on that
  // producer. Pass 0 counts, pass 1 fills.
  std::vector<index_t> need(static_cast<std::size_t>(T), 0);
  std::vector<std::uint64_t> need_stamp(static_cast<std::size_t>(T), 0);
  std::uint64_t gen = 0;
  std::vector<index_t> touched;
  std::vector<index_t> last_wait(static_cast<std::size_t>(T), 0);

  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) {
      for (std::size_t i = 1; i < wait_ptr.size(); ++i) {
        wait_ptr[i] += wait_ptr[i - 1];
      }
      wait_thread.assign(static_cast<std::size_t>(wait_ptr.back()), 0);
      wait_count.assign(static_cast<std::size_t>(wait_ptr.back()), 0);
    }
    for (int t = 0; t < T; ++t) {
      std::fill(last_wait.begin(), last_wait.end(), 0);
      if (seed) seed(t, last_wait);
      for (index_t c = consumer_thread_ptr[static_cast<std::size_t>(t)];
           c < consumer_thread_ptr[static_cast<std::size_t>(t) + 1]; ++c) {
        ++gen;
        touched.clear();
        deps(t, c, [&](index_t ot, index_t cnt) {
          if (pass == 0) ++deps_total;
          if (need_stamp[static_cast<std::size_t>(ot)] != gen) {
            need_stamp[static_cast<std::size_t>(ot)] = gen;
            need[static_cast<std::size_t>(ot)] = cnt;
            touched.push_back(ot);
          } else {
            need[static_cast<std::size_t>(ot)] =
                std::max(need[static_cast<std::size_t>(ot)], cnt);
          }
        });
        std::sort(touched.begin(), touched.end());
        index_t w = (pass == 1) ? wait_ptr[static_cast<std::size_t>(c)] : 0;
        index_t kept = 0;
        for (index_t ot : touched) {
          const index_t cnt = need[static_cast<std::size_t>(ot)];
          if (cnt <= last_wait[static_cast<std::size_t>(ot)]) continue;
          last_wait[static_cast<std::size_t>(ot)] = cnt;
          if (pass == 1) {
            wait_thread[static_cast<std::size_t>(w)] = ot;
            wait_count[static_cast<std::size_t>(w)] = cnt;
            ++w;
          }
          ++kept;
        }
        if (pass == 0) {
          wait_ptr[static_cast<std::size_t>(c) + 1] = kept;
          deps_kept += kept;
        }
      }
    }
  }
}

ExecSchedule build_exec_schedule(ExecBackend backend, index_t n_total,
                                 std::span<const index_t> level_ptr,
                                 std::span<const index_t> rows_by_level,
                                 const DepsFn& deps, int threads,
                                 index_t chunk_rows) {
  ExecSchedule s;
  s.backend = backend;
  s.threads = std::max(1, threads);
  s.n_total = n_total;
  s.num_levels = static_cast<index_t>(level_ptr.size()) - 1;
  s.level_ptr.assign(level_ptr.begin(), level_ptr.end());
  s.serial_order.assign(rows_by_level.begin(), rows_by_level.end());

  const index_t chunk = std::max<index_t>(1, chunk_rows);
  s.chunk_rows = chunk;
  const index_t n_rows = static_cast<index_t>(rows_by_level.size());
  const int T = s.threads;

  // Pass 1: assign each level's rows to threads in contiguous slices, block
  // each (level, thread) slice into items of up to `chunk` rows, and record
  // (owner, item position) per row. Chunks never cross a level boundary —
  // that keeps every item's dependencies in strictly earlier items on every
  // thread (deadlock freedom). The barrier executor recomputes the SAME
  // slices from level_ptr at run time, so the two backends execute
  // identical (row, thread) assignments.
  std::vector<index_t> row_count(static_cast<std::size_t>(T), 0);
  std::vector<index_t> item_count(static_cast<std::size_t>(T), 0);
  for (index_t l = 0; l < s.num_levels; ++l) {
    const index_t lsz = level_ptr[static_cast<std::size_t>(l) + 1] -
                        level_ptr[static_cast<std::size_t>(l)];
    for (int t = 0; t < T; ++t) {
      const index_t r = partition_range(lsz, T, t).size();
      row_count[static_cast<std::size_t>(t)] += r;
      item_count[static_cast<std::size_t>(t)] += (r + chunk - 1) / chunk;
    }
  }
  std::vector<index_t> row_base(static_cast<std::size_t>(T) + 1, 0);
  s.thread_ptr.assign(static_cast<std::size_t>(T) + 1, 0);
  for (int t = 0; t < T; ++t) {
    row_base[static_cast<std::size_t>(t) + 1] =
        row_base[static_cast<std::size_t>(t)] + row_count[static_cast<std::size_t>(t)];
    s.thread_ptr[static_cast<std::size_t>(t) + 1] =
        s.thread_ptr[static_cast<std::size_t>(t)] + item_count[static_cast<std::size_t>(t)];
  }
  const index_t n_items = s.thread_ptr.back();
  s.rows.assign(static_cast<std::size_t>(n_rows), kInvalidIndex);
  s.item_ptr.assign(static_cast<std::size_t>(n_items) + 1, 0);

  std::vector<index_t> owner(static_cast<std::size_t>(n_total), kInvalidIndex);
  std::vector<index_t> posn(static_cast<std::size_t>(n_total), kInvalidIndex);
  std::vector<index_t> rcursor(row_base.begin(), row_base.end() - 1);
  std::vector<index_t> icursor(s.thread_ptr.begin(), s.thread_ptr.end() - 1);
  for (index_t l = 0; l < s.num_levels; ++l) {
    const index_t base = level_ptr[static_cast<std::size_t>(l)];
    const index_t lsz = level_ptr[static_cast<std::size_t>(l) + 1] - base;
    for (int t = 0; t < T; ++t) {
      const Range rr = partition_range(lsz, T, t);
      for (index_t idx = rr.begin; idx < rr.end;) {
        const index_t take = std::min<index_t>(chunk, rr.end - idx);
        const index_t item = icursor[static_cast<std::size_t>(t)]++;
        for (index_t i = 0; i < take; ++i) {
          const index_t row = rows_by_level[static_cast<std::size_t>(base + idx + i)];
          const index_t p = rcursor[static_cast<std::size_t>(t)]++;
          s.rows[static_cast<std::size_t>(p)] = row;
          owner[static_cast<std::size_t>(row)] = static_cast<index_t>(t);
          posn[static_cast<std::size_t>(row)] =
              item - s.thread_ptr[static_cast<std::size_t>(t)];
        }
        s.item_ptr[static_cast<std::size_t>(item) + 1] =
            rcursor[static_cast<std::size_t>(t)];
        idx += take;
      }
    }
  }
  // Item start offsets: consecutive items of one thread share boundaries, so
  // only each thread's first item start needs pinning to its row base. (A
  // thread with no rows has row_base[t] == row_base[t+1]; the shared entry
  // stays consistent.)
  for (int t = 0; t < T; ++t) {
    s.item_ptr[static_cast<std::size_t>(s.thread_ptr[static_cast<std::size_t>(t)])] =
        row_base[static_cast<std::size_t>(t)];
  }

  // Pass 2: sparsified per-item wait lists. An item's need is the max over
  // all its rows; same-thread and unscheduled dependencies are filtered
  // here, the dedup + monotone pruning live in build_sparsified_waits.
  // Built for either backend: the waits are what a later retarget() or
  // backend switch relies on; the barrier executor just never reads them.
  build_sparsified_waits(
      T, s.thread_ptr, /*seed=*/{},
      [&](int t, index_t i,
          const std::function<void(index_t, index_t)>& yield) {
        for (index_t k = s.item_ptr[static_cast<std::size_t>(i)];
             k < s.item_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const index_t row = s.rows[static_cast<std::size_t>(k)];
          deps(row, [&](index_t d) {
            const index_t ot = owner[static_cast<std::size_t>(d)];
            if (ot == kInvalidIndex || ot == static_cast<index_t>(t)) return;
            yield(ot, posn[static_cast<std::size_t>(d)] + 1);
          });
        }
      },
      s.wait_ptr, s.wait_thread, s.wait_count, s.deps_total, s.deps_kept);
  return s;
}

ExecSchedule retarget(const ExecSchedule& s, const DepsFn& deps, int threads) {
  // Same builder, same retained level structure, new team: the result is
  // field-for-field identical to a fresh build at `threads` by construction.
  // Regime tags and the spin budget travel with the structure — a hybrid
  // schedule stays hybrid (with the floor pruning re-derived for the new
  // team) at any team size.
  ExecSchedule r = build_exec_schedule(s.backend, s.n_total, s.level_ptr,
                                       s.serial_order, deps, threads,
                                       s.chunk_rows);
  r.spin_budget = s.spin_budget;
  if (!s.level_tags.empty()) apply_level_tags(r, s.level_tags);
  return r;
}

void apply_level_tags(ExecSchedule& s, std::span<const std::uint8_t> tags) {
  JAVELIN_CHECK(tags.size() == static_cast<std::size_t>(s.num_levels),
                "apply_level_tags: one tag per level required");
  const auto all_p2p = std::all_of(tags.begin(), tags.end(), [](std::uint8_t b) {
    return b == static_cast<std::uint8_t>(LevelRegime::kP2P);
  });
  if (all_p2p) {
    // Uniform P2P = the untagged schedule; keep the cheap representation so
    // exec_run stays on the plain backend branches.
    s.level_tags.clear();
    return;
  }
  for (std::uint8_t b : tags) {
    JAVELIN_CHECK(b <= static_cast<std::uint8_t>(LevelRegime::kSerial),
                  "apply_level_tags: unknown regime tag");
  }
  s.level_tags.assign(tags.begin(), tags.end());

  const int T = s.threads;
  const index_t L = s.num_levels;
  const auto uz = [](index_t i) { return static_cast<std::size_t>(i); };

  // Regime floor per level: every item in levels < floor[l] is published
  // before any item of level l starts. kBarrier/kSerial levels see
  // everything before themselves (per-level barriers / thread-0 program
  // order behind the segment-entry barrier); kP2P levels see everything
  // before their contiguous P2P segment (the segment-entry barrier).
  std::vector<index_t> floor_of(uz(L), 0);
  for (index_t l = 0; l < L; ++l) {
    if (static_cast<LevelRegime>(tags[uz(l)]) != LevelRegime::kP2P) {
      floor_of[uz(l)] = l;
    } else {
      floor_of[uz(l)] =
          (l > 0 && static_cast<LevelRegime>(tags[uz(l - 1)]) ==
                        LevelRegime::kP2P)
              ? floor_of[uz(l - 1)]
              : l;
    }
  }

  // cum_items[t][l] = items of thread t in levels < l (the published count
  // a consumer with floor l can rely on from producer thread t).
  const index_t chunk = std::max<index_t>(1, s.chunk_rows);
  std::vector<std::vector<index_t>> cum_items(
      static_cast<std::size_t>(T), std::vector<index_t>(uz(L) + 1, 0));
  for (index_t l = 0; l < L; ++l) {
    const index_t lsz = s.level_ptr[uz(l) + 1] - s.level_ptr[uz(l)];
    for (int t = 0; t < T; ++t) {
      const index_t r = partition_range(lsz, T, t).size();
      cum_items[static_cast<std::size_t>(t)][uz(l) + 1] =
          cum_items[static_cast<std::size_t>(t)][uz(l)] + (r + chunk - 1) / chunk;
    }
  }

  // Prune: drop wait w of a consumer item in level lc when the producer
  // count is already covered by the floor. Items are laid out level-major
  // per thread, so each thread's item index maps to its level through the
  // same cumulative counts.
  std::vector<index_t> new_ptr(s.wait_ptr.size(), 0);
  std::vector<index_t> new_thread;
  std::vector<index_t> new_count;
  new_thread.reserve(s.wait_thread.size());
  new_count.reserve(s.wait_count.size());
  index_t kept = 0;
  for (int t = 0; t < T; ++t) {
    const auto& own_cum = cum_items[static_cast<std::size_t>(t)];
    index_t lvl = 0;
    for (index_t i = s.thread_ptr[uz(static_cast<index_t>(t))];
         i < s.thread_ptr[uz(static_cast<index_t>(t)) + 1]; ++i) {
      const index_t local = i - s.thread_ptr[uz(static_cast<index_t>(t))];
      while (lvl < L && own_cum[uz(lvl) + 1] <= local) ++lvl;
      const index_t fl = lvl < L ? floor_of[uz(lvl)] : L;
      for (index_t w = s.wait_ptr[uz(i)]; w < s.wait_ptr[uz(i) + 1]; ++w) {
        const index_t pt = s.wait_thread[uz(w)];
        if (s.wait_count[uz(w)] <= cum_items[uz(pt)][uz(fl)]) continue;
        new_thread.push_back(pt);
        new_count.push_back(s.wait_count[uz(w)]);
        ++kept;
      }
      new_ptr[uz(i) + 1] = kept;
    }
  }
  s.wait_ptr = std::move(new_ptr);
  s.wait_thread = std::move(new_thread);
  s.wait_count = std::move(new_count);
  s.deps_kept = kept;
}

DepsFn lower_triangular_deps(const CsrMatrix& lu) {
  const CsrMatrix* m = &lu;
  return [m](index_t row, const std::function<void(index_t)>& yield) {
    for (index_t c : m->row_cols(row)) {
      if (c >= row) break;
      yield(c);
    }
  };
}

DepsFn upper_triangular_deps(const CsrMatrix& lu) {
  const CsrMatrix* m = &lu;
  return [m](index_t row, const std::function<void(index_t)>& yield) {
    auto cols = m->row_cols(row);
    for (std::size_t k = cols.size(); k-- > 0;) {
      if (cols[k] <= row) break;
      yield(cols[k]);
    }
  };
}

ExecSchedule build_upper_forward_schedule(const CsrMatrix& lu,
                                          std::span<const index_t> upper_level_ptr,
                                          ExecBackend backend, int threads,
                                          index_t chunk_rows) {
  const index_t n_upper = upper_level_ptr.empty() ? 0 : upper_level_ptr.back();
  // Levels are contiguous row ranges after the plan permutation; materialize
  // the identity listing.
  std::vector<index_t> rows(static_cast<std::size_t>(n_upper));
  for (index_t r = 0; r < n_upper; ++r) rows[static_cast<std::size_t>(r)] = r;
  return build_exec_schedule(backend, lu.rows(), upper_level_ptr, rows,
                             lower_triangular_deps(lu), threads, chunk_rows);
}

ExecSchedule build_backward_schedule(const CsrMatrix& lu, ExecBackend backend,
                                     int threads, index_t chunk_rows) {
  const LevelSets ls = compute_level_sets_upper(lu);
  return build_exec_schedule(backend, lu.rows(), ls.level_ptr,
                             ls.rows_by_level, upper_triangular_deps(lu),
                             threads, chunk_rows);
}

}  // namespace javelin
