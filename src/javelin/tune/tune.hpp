// Factor-time autotuner: measure a small grid of execution policies —
// backend (P2P / barrier / serial), team width, blocking granule, and the
// per-level hybrid regime mix — on the REAL solve path, then pin the winner
// into the factorization so every later sweep (plain, fused, panel, batched)
// dispatches it automatically.
//
// Everything a candidate changes is a bitwise-neutral transformation of the
// same (level, thread, row) assignment: backends and teams are
// interchangeable by the standing exec/ contract, regime tags only alter
// synchronization, and the blocking granule only groups rows into items.
// The tuner therefore never changes results — only the time to produce
// them — and a pinned policy replays deterministically.
//
// Two measurement modes:
//   * wall-clock (default): each candidate is applied to the factor through
//     the cheap retarget/tag machinery, timed over `reps` real ilu_apply
//     sweeps (min of reps), and rolled back before the next candidate;
//   * injected cost model (TuneOptions::cost_model): no clocks, no state
//     mutation during scoring — the model ranks candidates from the
//     schedule-shape context alone. This is what makes tuning decisions
//     reproducible in tests and `bench --verify` (deterministic-policy
//     mode); deterministic_cost_model() is the shared default model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "javelin/ilu/factorization.hpp"
#include "javelin/obs/metrics.hpp"

namespace javelin::tune {

/// One point of the candidate grid. `chunk_rows == 0` keeps the granule the
/// factor was built with; `hybrid` derives per-level regime tags
/// (derive_hybrid_tags) on top of the P2P backend.
struct TuneCandidate {
  ExecBackend backend = ExecBackend::kP2P;
  bool hybrid = false;
  int threads = 1;
  index_t chunk_rows = 0;

  /// Stable display/bench key, e.g. "serial", "p2p/t4", "barrier/t2/c16",
  /// "hybrid/t8".
  std::string name() const;
};

/// What a candidate cost: wall-clock seconds (min over reps) or the cost
/// model's dimensionless score, depending on the mode.
struct TuneMeasurement {
  TuneCandidate cand;
  double seconds = 0.0;
};

/// Schedule-shape facts the cost model may consult (everything is derived
/// from the factor — no clocks, no randomness).
struct TuneContext {
  index_t n = 0;
  index_t nnz = 0;
  int plan_threads = 1;
  index_t fwd_levels = 0;
  index_t bwd_levels = 0;
  double fwd_mean_rows_per_level = 0.0;
  double bwd_mean_rows_per_level = 0.0;
  /// Fraction of rows in levels narrower than the small-level threshold.
  double fwd_small_row_frac = 0.0;
  double bwd_small_row_frac = 0.0;
  index_t small_level_rows = 0;  ///< the threshold the fractions used
};

/// Candidate scorer for deterministic-policy mode: lower is better. Must be
/// a pure function of its arguments.
using CostModelFn =
    std::function<double(const TuneContext&, const TuneCandidate&)>;

struct TuneOptions {
  /// Timed sweeps per candidate in wall-clock mode (min is kept); one
  /// untimed warm-up sweep precedes them.
  int reps = 3;
  /// Widest team to consider; 0 caps at the factor-time plan's width.
  int max_threads = 0;
  /// "Small level" threshold for the hybrid tags and the context fractions;
  /// 0 derives 4 × plan threads (at least 16).
  index_t small_level_rows = 0;
  /// Extra blocking granules to try (0 entries = keep the factor's). Each
  /// granule rebuilds the schedules from the retained level structure.
  std::vector<index_t> chunk_candidates;
  /// When set, scoring runs through this model instead of the wall clock —
  /// the deterministic-policy mode tests and `bench --verify` rely on.
  CostModelFn cost_model;
};

struct TuneReport {
  std::vector<TuneMeasurement> measured;  ///< grid in evaluation order
  TuneCandidate chosen;
  double chosen_seconds = 0.0;  ///< winner's score/seconds
  double serial_seconds = 0.0;  ///< the serial candidate's score/seconds
  bool applied = false;         ///< winner pinned into the factorization
  bool hybrid_applied = false;  ///< winner carries per-level regime tags

  /// Export the decision as monotone counters ("tune.candidates",
  /// "tune.chosen_threads", "tune.chosen_hybrid", "tune.chosen_ns",
  /// "tune.serial_ns", ...) for the bench's metrics block.
  void export_metrics(obs::MetricsRegistry& reg) const;
};

/// Per-level regime tags from the level-shape heuristic: levels narrower
/// than `serial_below` rows serialize (one thread, zero sync), levels below
/// `barrier_below` take the one-barrier protocol, wide levels stay on P2P
/// waits. Returns LevelRegime bytes, one per level of `s`.
std::vector<std::uint8_t> derive_hybrid_tags(const ExecSchedule& s,
                                             index_t serial_below,
                                             index_t barrier_below);

/// Schedule-shape context of `f` (threshold resolved as in TuneOptions).
TuneContext make_context(const Factorization& f, index_t small_level_rows = 0);

/// The shared deterministic cost model: fixed closed-form arithmetic on the
/// context — work spread over the team plus a per-level synchronization
/// toll (barrier > P2P), which hybrid tags discount on the small-level row
/// fraction, and a mild wide-team penalty. Pure and clock-free, so the
/// chosen policy is a function of the schedule shape alone.
CostModelFn deterministic_cost_model();

/// Measure the candidate grid on `f` and pin the winner: the chosen
/// backend/tags are installed on f.fwd/f.bwd and the chosen team width in
/// f.opts.tuned_threads (runtime_team consumes it; runtime clamps still
/// apply). The factor's results are unchanged for every candidate — only
/// synchronization and blocking differ. Exception-safe: on throw the
/// factor is restored to its pre-tune policy.
TuneReport autotune(Factorization& f, const TuneOptions& topt = {});

}  // namespace javelin::tune
