#include "javelin/tune/tune.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "javelin/ilu/solve.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/verify/verify.hpp"

namespace javelin::tune {

std::string TuneCandidate::name() const {
  if (threads <= 1) return "serial";
  std::string s = hybrid ? "hybrid"
                         : (backend == ExecBackend::kBarrier ? "barrier"
                                                             : "p2p");
  s += "/t" + std::to_string(threads);
  if (chunk_rows > 0) s += "/c" + std::to_string(chunk_rows);
  return s;
}

std::vector<std::uint8_t> derive_hybrid_tags(const ExecSchedule& s,
                                             index_t serial_below,
                                             index_t barrier_below) {
  std::vector<std::uint8_t> tags(static_cast<std::size_t>(s.num_levels),
                                 static_cast<std::uint8_t>(LevelRegime::kP2P));
  for (index_t l = 0; l < s.num_levels; ++l) {
    const index_t lsz = s.level_ptr[static_cast<std::size_t>(l) + 1] -
                        s.level_ptr[static_cast<std::size_t>(l)];
    if (lsz < serial_below) {
      tags[static_cast<std::size_t>(l)] =
          static_cast<std::uint8_t>(LevelRegime::kSerial);
    } else if (lsz < barrier_below) {
      tags[static_cast<std::size_t>(l)] =
          static_cast<std::uint8_t>(LevelRegime::kBarrier);
    }
  }
  return tags;
}

namespace {

index_t resolve_small(const Factorization& f, index_t small) {
  if (small > 0) return small;
  return std::max<index_t>(
      16, static_cast<index_t>(4 * std::max(1, f.plan.threads)));
}

/// The policy state a candidate mutates — schedules, backend, team override.
/// Numeric values, plan, permutation and symbolic data never move.
struct PolicySnapshot {
  ExecSchedule fwd;
  ExecSchedule bwd;
  ExecBackend backend;
  int tuned_threads;
};

PolicySnapshot snap_policy(const Factorization& f) {
  return {f.fwd, f.bwd, f.opts.exec_backend, f.opts.tuned_threads};
}

void restore_policy(Factorization& f, const PolicySnapshot& s) {
  f.fwd = s.fwd;
  f.bwd = s.bwd;
  f.opts.exec_backend = s.backend;
  f.opts.tuned_threads = s.tuned_threads;
  f.numeric_cache = ScheduleCache{};
}

/// Install one candidate on a factor currently holding its pristine policy.
void apply_candidate(Factorization& f, const TuneCandidate& c, index_t small) {
  set_exec_backend(f, c.backend);  // uniform reset (rebuilds pruned waits)
  if (c.chunk_rows > 0 && (f.fwd.chunk_rows != c.chunk_rows ||
                           f.bwd.chunk_rows != c.chunk_rows)) {
    // A different blocking granule re-chunks the retained level structure —
    // the same cheap path retarget() uses, bitwise-neutral by the standing
    // schedule contract.
    ExecSchedule nf = build_exec_schedule(
        c.backend, f.fwd.n_total, f.fwd.level_ptr, f.fwd.serial_order,
        lower_triangular_deps(f.lu), f.fwd.threads, c.chunk_rows);
    nf.spin_budget = f.fwd.spin_budget;
    ExecSchedule nb = build_exec_schedule(
        c.backend, f.bwd.n_total, f.bwd.level_ptr, f.bwd.serial_order,
        upper_triangular_deps(f.lu), f.bwd.threads, c.chunk_rows);
    nb.spin_budget = f.bwd.spin_budget;
    f.fwd = std::move(nf);
    f.bwd = std::move(nb);
    f.numeric_cache = ScheduleCache{};
  }
  if (c.hybrid) {
    const index_t serial_below =
        std::max<index_t>(2, static_cast<index_t>(c.threads));
    const auto tf = derive_hybrid_tags(f.fwd, serial_below, small);
    const auto tb = derive_hybrid_tags(f.bwd, serial_below, small);
    apply_level_tags(f.fwd, tf);
    apply_level_tags(f.bwd, tb);
    f.numeric_cache = ScheduleCache{};
  }
  f.opts.tuned_threads = c.threads;
  if (f.opts.verify_schedules) {
    verify::verify_schedule_or_throw(f.fwd, lower_triangular_deps(f.lu),
                                     "tune fwd");
    verify::verify_schedule_or_throw(f.bwd, upper_triangular_deps(f.lu),
                                     "tune bwd");
  }
}

/// Time the candidate currently installed on `f`: one warm-up sweep (builds
/// the retarget caches, touches the pages) then the min over `reps` real
/// ilu_apply calls on a fixed deterministic right-hand side.
double measure_candidate(Factorization& f, int reps) {
  const index_t n = f.n();
  std::vector<value_t> r(static_cast<std::size_t>(n));
  std::vector<value_t> z(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = 1.0 + 0.125 * static_cast<double>(i % 7);
  }
  SolveWorkspace ws;
  ilu_apply(f, r, z, ws);
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    ilu_apply(f, r, z, ws);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::vector<TuneCandidate> make_grid(const Factorization& f,
                                     const TuneOptions& o) {
  std::vector<TuneCandidate> grid;
  grid.push_back(TuneCandidate{ExecBackend::kP2P, false, 1, 0});  // "serial"
  const int cap = std::max(1, o.max_threads > 0 ? o.max_threads
                                                : f.plan.threads);
  std::vector<int> teams;
  for (int t = 2; t < cap; t *= 2) teams.push_back(t);
  if (cap > 1) teams.push_back(cap);
  std::vector<index_t> chunks;
  chunks.push_back(0);  // the factor's own granule first (the tie-break)
  for (index_t c : o.chunk_candidates) {
    if (c > 0) chunks.push_back(c);
  }
  for (int t : teams) {
    for (index_t c : chunks) {
      grid.push_back(TuneCandidate{ExecBackend::kP2P, false, t, c});
      grid.push_back(TuneCandidate{ExecBackend::kBarrier, false, t, c});
    }
    grid.push_back(TuneCandidate{ExecBackend::kP2P, true, t, 0});
  }
  return grid;
}

}  // namespace

TuneContext make_context(const Factorization& f, index_t small_level_rows) {
  TuneContext ctx;
  ctx.n = f.n();
  ctx.nnz = f.lu.nnz();
  ctx.plan_threads = f.plan.threads;
  ctx.fwd_levels = f.fwd.num_levels;
  ctx.bwd_levels = f.bwd.num_levels;
  ctx.fwd_mean_rows_per_level = f.fwd.mean_rows_per_level();
  ctx.bwd_mean_rows_per_level = f.bwd.mean_rows_per_level();
  ctx.small_level_rows = resolve_small(f, small_level_rows);
  ctx.fwd_small_row_frac = f.fwd.small_level_row_frac(ctx.small_level_rows);
  ctx.bwd_small_row_frac = f.bwd.small_level_row_frac(ctx.small_level_rows);
  return ctx;
}

CostModelFn deterministic_cost_model() {
  return [](const TuneContext& ctx, const TuneCandidate& c) -> double {
    const double work =
        static_cast<double>(ctx.nnz) + 4.0 * static_cast<double>(ctx.n);
    const double t = static_cast<double>(c.threads < 1 ? 1 : c.threads);
    const double levels =
        static_cast<double>(ctx.fwd_levels + ctx.bwd_levels);
    double cost = work / t;
    if (c.threads > 1) {
      // Synchronization toll grows with the team; a barrier costs more than
      // a sparsified wait round.
      const double per_sync =
          c.backend == ExecBackend::kBarrier ? 48.0 : 16.0;
      double sync = levels * per_sync * t;
      if (c.hybrid) {
        // Regime tags strip the cross-thread sync of the small levels and
        // charge one segment-entry barrier per level run instead.
        const double small =
            0.5 * (ctx.fwd_small_row_frac + ctx.bwd_small_row_frac);
        sync *= 1.0 - 0.75 * small;
        sync += levels;
      }
      cost += sync;
      // Narrow levels starve wide teams: charge the serialized remainder.
      const double mean =
          0.5 * (ctx.fwd_mean_rows_per_level + ctx.bwd_mean_rows_per_level);
      if (mean < t) cost += 0.25 * work * (1.0 - mean / t);
    }
    if (c.chunk_rows > 0) {
      // Stable tie-break: prefer the factor's own granule on equal cost.
      cost += 1.0 + 1e-3 * static_cast<double>(c.chunk_rows);
    }
    return cost;
  };
}

TuneReport autotune(Factorization& f, const TuneOptions& topt) {
  const index_t small = resolve_small(f, topt.small_level_rows);
  const TuneContext ctx = make_context(f, small);
  const std::vector<TuneCandidate> grid = make_grid(f, topt);
  const PolicySnapshot snap = snap_policy(f);
  TuneReport rep;
  rep.measured.reserve(grid.size());
  try {
    for (const TuneCandidate& c : grid) {
      double sec;
      if (topt.cost_model) {
        sec = topt.cost_model(ctx, c);
      } else {
        restore_policy(f, snap);
        apply_candidate(f, c, small);
        sec = measure_candidate(f, topt.reps);
      }
      rep.measured.push_back(TuneMeasurement{c, sec});
      if (c.threads <= 1) rep.serial_seconds = sec;
    }
    // Winner: strictly-better beats earlier entries, ties keep the EARLIEST
    // (serial is first), so equal-cost grids degrade to the simplest policy.
    std::size_t best = 0;
    for (std::size_t i = 1; i < rep.measured.size(); ++i) {
      if (rep.measured[i].seconds < rep.measured[best].seconds) best = i;
    }
    rep.chosen = rep.measured[best].cand;
    rep.chosen_seconds = rep.measured[best].seconds;
    restore_policy(f, snap);
    apply_candidate(f, rep.chosen, small);
  } catch (...) {
    restore_policy(f, snap);
    throw;
  }
  rep.applied = true;
  rep.hybrid_applied = f.fwd.hybrid() || f.bwd.hybrid();
  return rep;
}

void TuneReport::export_metrics(obs::MetricsRegistry& reg) const {
  const auto ns = [](double s) {
    return s > 0.0 ? static_cast<std::uint64_t>(s * 1e9) : 0;
  };
  reg.add("tune.candidates", static_cast<std::uint64_t>(measured.size()));
  reg.add("tune.applied", applied ? 1 : 0);
  reg.add("tune.hybrid_applied", hybrid_applied ? 1 : 0);
  reg.add("tune.chosen_threads", static_cast<std::uint64_t>(chosen.threads));
  reg.add("tune.chosen_hybrid", chosen.hybrid ? 1 : 0);
  reg.add("tune.chosen_barrier",
          chosen.backend == ExecBackend::kBarrier ? 1 : 0);
  reg.add("tune.chosen_chunk_rows",
          static_cast<std::uint64_t>(chosen.chunk_rows));
  reg.add("tune.chosen_ns", ns(chosen_seconds));
  reg.add("tune.serial_ns", ns(serial_seconds));
}

}  // namespace javelin::tune
