#include "javelin/obs/metrics.hpp"

#include <ostream>

namespace javelin::obs {

int FixedHistogram::used_buckets() const noexcept {
  for (int b = kBuckets - 1; b >= 0; --b) {
    if (counts_[static_cast<std::size_t>(b)] != 0) return b + 1;
  }
  return 0;
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  for (const auto& [name, v] : o.counters_) counters_[name] += v;
  for (const auto& [name, h] : o.hists_) hists_[name].merge(h);
}

void MetricsRegistry::export_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"total\":" << h.total()
        << ",\"sum\":" << h.sum() << ",\"buckets\":[";
    const int used = h.used_buckets();
    for (int b = 0; b < used; ++b) {
      if (b != 0) out << ",";
      out << h.count(b);
    }
    out << "]}";
  }
  out << "}}";
}

}  // namespace javelin::obs
