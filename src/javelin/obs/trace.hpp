// Execution tracing: per-thread span buffers exported as Chrome trace_event
// JSON (chrome://tracing, Perfetto).
//
// Design constraints, in priority order:
//   1. Zero overhead when off. Every emission site first checks a single
//      relaxed atomic (TraceSession::enabled()); the disabled branch is a
//      load + predictable-untaken jump, and the scheduled hot loops do not
//      even reach that — they are instrumented only through the obs-gated
//      template instantiations in exec/run.hpp (see obs/exec_obs.hpp).
//   2. Lock-free on the recording path. Each thread appends to its own
//      TraceBuffer (registered once under a mutex, then touched only by the
//      owning thread), so tracing never introduces synchronization that
//      would perturb the spin-wait behaviour it is meant to measure.
//   3. Interned names. Spans carry `const char*` pointers to string
//      literals, never owned strings — an event is 32 bytes and recording
//      one is an append + a steady_clock read.
//
// Span phases follow the trace_event format: 'B'/'E' duration pairs emitted
// by the owning thread (balanced, per-thread monotone timestamps), plus 'X'
// complete events for spans whose begin and end may land on different
// threads (WorkspacePool lease lifetimes).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "javelin/support/types.hpp"

namespace javelin::obs {

/// Monotonic nanosecond timestamp shared by every trace/stats clock read.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One recorded event. `name` must point at storage that outlives the
/// session (string literals throughout Javelin). `arg` is an optional
/// integer payload (level index, Krylov iteration, ...); kInvalidIndex
/// means "no argument".
struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;  // 'X' events only
  index_t arg;
  char ph;  // 'B', 'E', or 'X'
};

/// Append-only per-thread event buffer. Only the owning thread writes;
/// export happens when no region is recording (enforced by callers: bench
/// and tests disable the session before writing).
class TraceBuffer {
 public:
  explicit TraceBuffer(int tid) : tid_(tid) {}

  int tid() const noexcept { return tid_; }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  void begin(const char* name, index_t arg = kInvalidIndex) {
    events_.push_back({name, now_ns(), 0, arg, 'B'});
  }
  void end(const char* name) {
    events_.push_back({name, now_ns(), 0, kInvalidIndex, 'E'});
  }
  /// Timestamped variants: reuse a clock value the caller already read so
  /// instrumented loops pay one clock read per boundary, not two.
  void begin_at(const char* name, std::int64_t ts_ns,
                index_t arg = kInvalidIndex) {
    events_.push_back({name, ts_ns, 0, arg, 'B'});
  }
  void end_at(const char* name, std::int64_t ts_ns) {
    events_.push_back({name, ts_ns, 0, kInvalidIndex, 'E'});
  }
  /// Complete ('X') event with an explicit start and duration — the only
  /// form safe for spans whose begin/end run on different threads.
  void complete(const char* name, std::int64_t ts_ns, std::int64_t dur_ns,
                index_t arg = kInvalidIndex) {
    events_.push_back({name, ts_ns, dur_ns, arg, 'X'});
  }

 private:
  const int tid_;
  std::vector<TraceEvent> events_;
};

/// Process-wide trace session. Threads register a thread-local buffer on
/// first emission; buffers live until process exit (clear() empties them but
/// never invalidates a registered thread's pointer), so a pooled OpenMP
/// worker can keep its cached buffer across parallel regions.
///
/// `JAVELIN_TRACE=<path>` in the environment enables the session at startup
/// and writes the Chrome JSON to <path> at process exit — tracing without
/// touching the embedding application.
class TraceSession {
 public:
  static TraceSession& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  /// The calling thread's buffer (registered on first call).
  TraceBuffer& buffer();

  /// Drop all recorded events; registered buffers stay valid.
  void clear();

  /// Total recorded events across all threads (export-side, for tests).
  std::size_t event_count() const;

  /// Copy of every thread's events, ordered by tid (export-side, for tests;
  /// call only while no thread is recording).
  std::vector<std::pair<int, std::vector<TraceEvent>>> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}; ts/dur in µs).
  void write_chrome_json(std::ostream& out) const;

  /// write_chrome_json to a file; returns false when the file cannot be
  /// opened (never throws — used from the atexit hook).
  bool write_file(const std::string& path) const;

 private:
  TraceSession() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ registration + export
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

/// RAII 'B'/'E' span on the calling thread. The constructor folds to a
/// relaxed load + untaken branch when the session is off; `name` must be a
/// literal (or otherwise outlive the session).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, index_t arg = kInvalidIndex) {
    TraceSession& s = TraceSession::instance();
    if (s.enabled()) {
      buf_ = &s.buffer();
      name_ = name;
      buf_->begin(name, arg);
    }
  }
  ~TraceSpan() {
    if (buf_ != nullptr) buf_->end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace javelin::obs
