#include "javelin/obs/exec_obs.hpp"

#include <algorithm>

namespace javelin::obs {

double ExecStats::occupancy() const noexcept {
  if (wall_ns == 0 || threads == 0) return 0.0;
  return static_cast<double>(total.busy_ns) /
         (static_cast<double>(threads) * static_cast<double>(wall_ns));
}

double ExecStats::sync_wait_frac() const noexcept {
  const std::uint64_t denom = total.busy_ns + total.sync_ns();
  if (denom == 0) return 0.0;
  return static_cast<double>(total.sync_ns()) / static_cast<double>(denom);
}

std::vector<double> ExecStats::level_wait_frac() const {
  std::vector<double> out(level_busy_ns.size(), 0.0);
  for (std::size_t l = 0; l < out.size(); ++l) {
    const std::uint64_t denom = level_busy_ns[l] + level_wait_ns[l];
    if (denom != 0) {
      out[l] = static_cast<double>(level_wait_ns[l]) /
               static_cast<double>(denom);
    }
  }
  return out;
}

void ExecStats::export_metrics(MetricsRegistry& reg,
                               const std::string& prefix) const {
  reg.add(prefix + ".sweeps", sweeps);
  reg.add(prefix + ".wall_ns", wall_ns);
  reg.add(prefix + ".busy_ns", total.busy_ns);
  reg.add(prefix + ".wait_ns", total.wait_ns);
  reg.add(prefix + ".barrier_ns", total.barrier_ns);
  reg.add(prefix + ".critical_path_ns", critical_path_ns);
  reg.add(prefix + ".waits", total.waits);
  reg.add(prefix + ".waits_immediate", total.waits_immediate);
  reg.add(prefix + ".waits_stalled", total.waits_stalled);
  reg.add(prefix + ".spins", total.spins);
  reg.add(prefix + ".yields", total.yields);
  reg.add(prefix + ".abort_polls", total.abort_polls);
  reg.add(prefix + ".barrier_waits", total.barrier_waits);
  for (const index_t rows : level_rows) {
    reg.record(prefix + ".rows_per_level", static_cast<std::uint64_t>(rows));
  }
}

void SweepObs::begin(Region kind, const ExecSchedule& s) {
  name_ = region_name(kind);
  tracing_ = TraceSession::instance().enabled();
  threads_ = s.threads > 0 ? s.threads : 1;
  levels_ = s.num_levels > 0 ? s.num_levels : 1;

  slots_.assign(static_cast<std::size_t>(threads_), PaddedSlot{});
  const std::size_t cells =
      static_cast<std::size_t>(threads_) * static_cast<std::size_t>(levels_);
  lvl_busy_.assign(cells, 0);
  lvl_wait_.assign(cells, 0);

  // item -> level map for P2P attribution, rebuilt when the schedule's
  // identity or shape changes (retarget() changes the item structure).
  if (s.backend == ExecBackend::kP2P && s.num_items() > 0 &&
      (cached_sched_ != &s || cached_items_ != s.num_items() ||
       cached_levels_ != s.num_levels || cached_threads_ != s.threads)) {
    row_level_.assign(static_cast<std::size_t>(s.n_total), 0);
    for (index_t l = 0; l < s.num_levels; ++l) {
      for (index_t k = s.level_ptr[static_cast<std::size_t>(l)];
           k < s.level_ptr[static_cast<std::size_t>(l) + 1]; ++k) {
        row_level_[static_cast<std::size_t>(
            s.serial_order[static_cast<std::size_t>(k)])] = l;
      }
    }
    const index_t items = s.num_items();
    item_level_.resize(static_cast<std::size_t>(items));
    for (index_t i = 0; i < items; ++i) {
      // Items never cross a level boundary, so the first row's level is the
      // item's level.
      item_level_[static_cast<std::size_t>(i)] = row_level_[static_cast<
          std::size_t>(s.rows[static_cast<std::size_t>(
          s.item_ptr[static_cast<std::size_t>(i)])])];
    }
    cached_sched_ = &s;
    cached_items_ = items;
    cached_levels_ = s.num_levels;
    cached_threads_ = s.threads;
  }

  wall_t0_ = now_ns();
  if (tracing_) TraceSession::instance().buffer().begin(name_);
}

void SweepObs::commit(ExecStats& dst, const ExecSchedule& s) {
  const std::int64_t wall_t1 = now_ns();
  if (tracing_) TraceSession::instance().buffer().end(name_);

  // Region shape changed (retarget between sweeps): restart the per-level
  // and per-thread aggregates at the new shape rather than mixing.
  if (dst.levels != levels_ ||
      static_cast<int>(dst.per_thread.size()) != threads_) {
    dst.levels = levels_;
    dst.per_thread.assign(static_cast<std::size_t>(threads_), WaitCounters{});
    dst.level_busy_ns.assign(static_cast<std::size_t>(levels_), 0);
    dst.level_wait_ns.assign(static_cast<std::size_t>(levels_), 0);
    dst.level_rows.assign(static_cast<std::size_t>(levels_), 0);
    if (!s.level_ptr.empty()) {
      for (index_t l = 0; l < s.num_levels; ++l) {
        dst.level_rows[static_cast<std::size_t>(l)] =
            s.level_ptr[static_cast<std::size_t>(l) + 1] -
            s.level_ptr[static_cast<std::size_t>(l)];
      }
    } else if (levels_ == 1) {
      dst.level_rows[0] = s.num_rows();
    }
  }
  dst.threads = std::max(dst.threads, threads_);
  dst.sweeps += 1;
  dst.wall_ns += static_cast<std::uint64_t>(wall_t1 - wall_t0_);

  // Deterministic merge: thread-index order, then level order.
  for (int t = 0; t < threads_; ++t) {
    const WaitCounters& c = slots_[static_cast<std::size_t>(t)].c;
    dst.per_thread[static_cast<std::size_t>(t)].merge(c);
    dst.total.merge(c);
  }
  for (index_t l = 0; l < levels_; ++l) {
    std::uint64_t max_busy = 0;
    for (int t = 0; t < threads_; ++t) {
      const std::uint64_t busy = lvl_busy_[lvl_index(t, l)];
      dst.level_busy_ns[static_cast<std::size_t>(l)] += busy;
      dst.level_wait_ns[static_cast<std::size_t>(l)] +=
          lvl_wait_[lvl_index(t, l)];
      max_busy = std::max(max_busy, busy);
    }
    dst.critical_path_ns += max_busy;
  }
}

SweepObs& ExecObs::begin_sweep(Region kind, const ExecSchedule& s) {
  sweep_.begin(kind, s);
  return sweep_;
}

void ExecObs::end_sweep(Region kind, const ExecSchedule& s) {
  sweep_.commit(stats(kind), s);
}

void ExecObs::reset() {
  for (auto& st : stats_) st.reset();
}

void ExecObs::export_metrics(MetricsRegistry& reg) const {
  for (int r = 0; r < kNumRegions; ++r) {
    const auto region = static_cast<Region>(r);
    if (has(region)) {
      stats(region).export_metrics(
          reg, std::string("exec.") + region_name(region));
    }
  }
}

}  // namespace javelin::obs
