#include "javelin/obs/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>

namespace javelin::obs {

namespace {

/// Thread-local cached pointer into the session's buffer registry. Buffers
/// are never deallocated while the process lives (clear() only empties
/// them), so the cached pointer stays valid for the thread's lifetime.
thread_local TraceBuffer* tl_buffer = nullptr;

/// JAVELIN_TRACE handling: enable at first instance() call, write at exit.
std::string& env_trace_path() {
  static std::string path;
  return path;
}

void write_env_trace_at_exit() {
  const std::string& path = env_trace_path();
  if (!path.empty()) TraceSession::instance().write_file(path);
}

}  // namespace

TraceSession& TraceSession::instance() {
  static TraceSession* session = [] {
    auto* s = new TraceSession();  // leaked: must outlive all thread exits
    if (const char* p = std::getenv("JAVELIN_TRACE"); p != nullptr && *p) {
      env_trace_path() = p;
      s->enable();
      std::atexit(write_env_trace_at_exit);
    }
    return s;
  }();
  return *session;
}

TraceBuffer& TraceSession::buffer() {
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    const int tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::make_unique<TraceBuffer>(tid));
    tl_buffer = buffers_.back().get();
  }
  return *tl_buffer;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& b : buffers_) b->clear();
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events().size();
  return n;
}

std::vector<std::pair<int, std::vector<TraceEvent>>> TraceSession::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, std::vector<TraceEvent>>> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) out.emplace_back(b->tid(), b->events());
  return out;
}

void TraceSession::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // All events share pid 0; tid is the registration-order thread id. ts is
  // microseconds with nanosecond precision kept in the fraction, as the
  // trace_event format specifies.
  for (const auto& b : buffers_) {
    for (const TraceEvent& e : b->events()) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << e.name << "\",\"cat\":\"javelin\",\"ph\":\""
          << e.ph << "\",\"pid\":0,\"tid\":" << b->tid() << ",\"ts\":"
          << e.ts_ns / 1000 << "." << (e.ts_ns % 1000 < 100 ? "0" : "")
          << (e.ts_ns % 1000 < 10 ? "0" : "") << e.ts_ns % 1000;
      if (e.ph == 'X') {
        out << ",\"dur\":" << e.dur_ns / 1000 << "."
            << (e.dur_ns % 1000 < 100 ? "0" : "")
            << (e.dur_ns % 1000 < 10 ? "0" : "") << e.dur_ns % 1000;
      }
      if (e.arg != kInvalidIndex) out << ",\"args\":{\"level\":" << e.arg << "}";
      out << "}";
    }
  }
  out << "]}\n";
}

bool TraceSession::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return out.good();
}

}  // namespace javelin::obs
