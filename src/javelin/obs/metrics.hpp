// Metrics registry: named monotone counters and fixed-bucket (power-of-two)
// histograms with a deterministic merge and export order.
//
// The registry is the hand-off format between the instrumented execution
// paths and the bench's `stall_profile` JSON block (schema v4): regions
// accumulate into per-thread or per-region structures (obs/exec_obs.hpp)
// and export here; the bench serializes `export_json` output directly.
// Determinism matters because BENCH_javelin.json is diffed run-to-run:
//   * counters merge by addition (commutative), histograms bucket-wise —
//     merging per-thread registries in any order yields the same state;
//   * export iterates std::map, so field order is name-sorted regardless
//     of insertion order or thread count.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace javelin::obs {

/// Log2-bucket histogram over non-negative integer samples: bucket 0 counts
/// value 0, bucket b >= 1 counts values in [2^(b-1), 2^b). 33 buckets cover
/// the full index_t range (and 64-bit nanosecond durations saturate into
/// the last bucket), so two histograms always have the same shape and merge
/// bucket-wise without negotiation.
class FixedHistogram {
 public:
  static constexpr int kBuckets = 33;

  static int bucket_of(std::uint64_t v) noexcept {
    // 0 for v==0, floor(log2 v)+1 otherwise; bit_width of a uint64 is <= 64.
    const int b = static_cast<int>(std::bit_width(v));
    return b < kBuckets ? b : kBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    counts_[static_cast<std::size_t>(bucket_of(v))] += 1;
    total_ += 1;
    sum_ += v;
  }

  void merge(const FixedHistogram& o) noexcept {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
    sum_ += o.sum_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t count(int bucket) const noexcept {
    return counts_[static_cast<std::size_t>(bucket)];
  }
  /// Highest non-empty bucket + 1 (0 when empty) — lets exports trim the
  /// constant tail of empty buckets.
  int used_buckets() const noexcept;

  bool operator==(const FixedHistogram&) const = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Named counters + histograms. Not thread-safe: each thread (or region)
/// accumulates privately and the owner merges in a fixed order.
class MetricsRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta) {
    counters_[name] += delta;
  }
  void record(const std::string& name, std::uint64_t value) {
    hists_[name].record(value);
  }

  /// Merge another registry in: addition on counters, bucket-wise on
  /// histograms. Commutative and associative, so any merge order over a set
  /// of registries produces the same state.
  void merge(const MetricsRegistry& o);

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, FixedHistogram>& histograms() const noexcept {
    return hists_;
  }

  /// JSON object {"counters": {...}, "histograms": {name: {"total":..,
  /// "sum":.., "buckets":[...]}}} with name-sorted keys (std::map order)
  /// and trailing empty buckets trimmed.
  void export_json(std::ostream& out) const;

  bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, FixedHistogram> hists_;
};

}  // namespace javelin::obs
