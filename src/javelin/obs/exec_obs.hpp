// Spin-wait telemetry for the scheduled execution regions.
//
// Gating follows the fault-hook pattern from exec/run.hpp: the region body
// is ONE template (detail::exec_run_impl<Obs>) instantiated either with
// detail::NoObs — every instrumentation site is `if constexpr`-eliminated,
// so the default build keeps the zero-polling hot loop and its bitwise
// serial/parallel parity — or with SweepObs, which adds per-thread wait
// counters, per-(thread, level) busy/wait attribution, and optional trace
// spans. Nothing is measured unless a caller explicitly attaches an ExecObs
// (IluOptions::exec_obs) or enables the trace session.
//
// Aggregation model: each exec_run_obs sweep records into private
// per-thread slots (cache-line padded, owner-written only — the telemetry
// must not perturb the spin behaviour it measures) and per-(thread, level)
// scratch; at region end the owner merges them in thread-index order into
// the per-region ExecStats, so the aggregate is deterministic for a
// deterministic execution. ExecStats is what the bench exports as the
// schema-v4 `stall_profile`:
//   * level_wait_frac()  — sync-wait fraction per level,
//   * occupancy()        — Σ busy / (threads × wall), the critical-path
//                          occupancy the ROADMAP's "parallel slower than
//                          serial at 8T" fact needs explained,
//   * level_rows         — rows/level, exported as a log2 histogram.
//
// ExecObs is NOT thread-safe across concurrent solves: attach one per
// stream (the WorkspacePool serving path leaves it unset).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "javelin/exec/schedule.hpp"
#include "javelin/obs/metrics.hpp"
#include "javelin/obs/trace.hpp"
#include "javelin/support/types.hpp"

namespace javelin::obs {

/// Instrumented region kinds. Forward/backward cover both the scalar and
/// the panel sweeps (same logical region, stats merge); kFused is the
/// hand-rolled backward+SpMV overlap region, which reports thread-level
/// counters only (no per-level attribution — its SpMV chunks have no level).
enum class Region : int {
  kFactor = 0,
  kCorner,
  kForward,
  kBackward,
  kFused,
  kCount,
};

inline constexpr int kNumRegions = static_cast<int>(Region::kCount);

inline const char* region_name(Region r) noexcept {
  switch (r) {
    case Region::kFactor: return "factor";
    case Region::kCorner: return "corner";
    case Region::kForward: return "fwd";
    case Region::kBackward: return "bwd";
    case Region::kFused: return "fused";
    default: return "?";
  }
}

/// Per-thread spin-wait counters. Accounting identities (asserted by
/// test_obs):
///   waits == waits_immediate + waits_stalled
///   spins >= waits_stalled          (every stalled wait misses at least once)
///   yields <= spins, abort_polls <= spins (polled once per miss, when armed)
struct WaitCounters {
  std::uint64_t waits = 0;            ///< wait_for calls
  std::uint64_t waits_immediate = 0;  ///< satisfied on the first poll
  std::uint64_t waits_stalled = 0;    ///< needed at least one backoff miss
  std::uint64_t spins = 0;            ///< total poll misses
  std::uint64_t yields = 0;           ///< misses escalated pause -> yield
  std::uint64_t abort_polls = 0;      ///< abort-flag polls inside waits
  std::uint64_t barrier_waits = 0;    ///< SpinBarrier crossings
  std::uint64_t wait_ns = 0;          ///< time inside stalled P2P waits
  std::uint64_t barrier_ns = 0;       ///< time inside barrier crossings
  std::uint64_t busy_ns = 0;          ///< time executing row functions

  void merge(const WaitCounters& o) noexcept {
    waits += o.waits;
    waits_immediate += o.waits_immediate;
    waits_stalled += o.waits_stalled;
    spins += o.spins;
    yields += o.yields;
    abort_polls += o.abort_polls;
    barrier_waits += o.barrier_waits;
    wait_ns += o.wait_ns;
    barrier_ns += o.barrier_ns;
    busy_ns += o.busy_ns;
  }

  /// Total synchronization time (P2P stalls + barrier crossings).
  std::uint64_t sync_ns() const noexcept { return wait_ns + barrier_ns; }
};

/// Aggregated statistics of one region kind across all its sweeps — the
/// `ExecStats` returned next to ExecStatus by the instrumented entry point
/// (exec_run_obs fills the ExecObs the caller handed in).
struct ExecStats {
  int threads = 0;          ///< widest team observed
  std::uint64_t sweeps = 0; ///< instrumented region launches
  std::uint64_t wall_ns = 0;
  index_t levels = 0;
  WaitCounters total;                    ///< merged in thread-index order
  std::vector<WaitCounters> per_thread;  ///< indexed by schedule thread id
  /// Per-level attribution summed over threads and sweeps (empty for
  /// kFused). level_rows comes from the schedule's level_ptr.
  std::vector<std::uint64_t> level_busy_ns;
  std::vector<std::uint64_t> level_wait_ns;
  std::vector<index_t> level_rows;
  /// Σ_level max_thread busy(level, thread): the time a perfectly
  /// synchronized sweep could not beat. wall/critical_path ≈ barrier+stall
  /// overhead factor.
  std::uint64_t critical_path_ns = 0;

  /// Σ busy / (threads × wall); 1.0 = every core computing all the time.
  double occupancy() const noexcept;
  /// sync / (busy + sync) over the whole region.
  double sync_wait_frac() const noexcept;
  /// Per-level wait / (busy + wait); empty when no per-level data.
  std::vector<double> level_wait_frac() const;

  /// Counters under "<prefix>." and a "<prefix>.rows_per_level" histogram.
  void export_metrics(MetricsRegistry& reg, const std::string& prefix) const;

  void reset() { *this = ExecStats(); }
};

/// Per-sweep collector handed into exec_run_impl (the `Obs` template
/// parameter with kOn = true). Owned and recycled by ExecObs; region
/// threads touch only their own padded slot and their own rows of the
/// level scratch.
class SweepObs {
 public:
  static constexpr bool kOn = true;

  // --- called from inside the parallel region ---
  WaitCounters& slot(int t) noexcept {
    return slots_[static_cast<std::size_t>(t)].c;
  }
  void add_level_busy(int t, index_t level, std::uint64_t ns) noexcept {
    lvl_busy_[lvl_index(t, level)] += ns;
  }
  void add_level_wait(int t, index_t level, std::uint64_t ns) noexcept {
    lvl_wait_[lvl_index(t, level)] += ns;
  }
  /// Level of schedule item i (P2P attribution; cached per schedule).
  index_t item_level(index_t i) const noexcept {
    return item_level_[static_cast<std::size_t>(i)];
  }
  bool tracing() const noexcept { return tracing_; }
  const char* name() const noexcept { return name_; }

  // --- lifecycle, driven by ExecObs ---
  void begin(Region kind, const ExecSchedule& s);
  void commit(ExecStats& dst, const ExecSchedule& s);

 private:
  std::size_t lvl_index(int t, index_t level) const noexcept {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(levels_) +
           static_cast<std::size_t>(level);
  }

  struct alignas(64) PaddedSlot {
    WaitCounters c;
  };

  int threads_ = 0;
  index_t levels_ = 0;
  bool tracing_ = false;
  const char* name_ = "?";
  std::int64_t wall_t0_ = 0;
  std::vector<PaddedSlot> slots_;
  std::vector<std::uint64_t> lvl_busy_;  // [thread][level], thread-major
  std::vector<std::uint64_t> lvl_wait_;
  std::vector<index_t> item_level_;
  std::vector<index_t> row_level_;  // scratch for item_level_ builds
  // item_level_ cache key: schedules are long-lived objects mutated only by
  // retarget(), which changes the item structure we also key on.
  const void* cached_sched_ = nullptr;
  index_t cached_items_ = -1;
  index_t cached_levels_ = -1;
  int cached_threads_ = -1;
};

/// Owner of per-region ExecStats; attach via IluOptions::exec_obs and run
/// any solve/factor path — the instrumented template instantiations fill
/// the region stats in. Reuse across sweeps accumulates.
class ExecObs {
 public:
  SweepObs& begin_sweep(Region kind, const ExecSchedule& s);
  void end_sweep(Region kind, const ExecSchedule& s);

  const ExecStats& stats(Region r) const noexcept {
    return stats_[static_cast<std::size_t>(r)];
  }
  ExecStats& stats(Region r) noexcept {
    return stats_[static_cast<std::size_t>(r)];
  }
  bool has(Region r) const noexcept { return stats(r).sweeps > 0; }

  void reset();

  /// All regions with data, under "exec.<region>." prefixes.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  std::array<ExecStats, kNumRegions> stats_;
  SweepObs sweep_;
};

}  // namespace javelin::obs
