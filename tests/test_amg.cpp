// AMG hierarchy invariants and end-to-end convergence:
//   * levels strictly shrink; every fine row is in exactly one aggregate,
//   * Galerkin coarse operators of an SPD matrix stay symmetric,
//   * the V-cycle is a fixed preconditioner (bitwise-identical output for
//     identical input, across repeated applies),
//   * AMG-PCG beats ILU(0)-PCG on laplacian3d(40,40,40) at 1e-8 — the
//     O(n) preconditioner pulling ahead where ILU iteration counts grow
//     with problem size.
#include "javelin/amg/preconditioner.hpp"
#include "javelin/amg/strength.hpp"
#include "javelin/gen/generators.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::random_vector;

namespace {

double true_relative_residual(const CsrMatrix& a, std::span<const value_t> b,
                              std::span<const value_t> x) {
  std::vector<value_t> r(b.size());
  spmv_serial(a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r) / norm2(b);
}

void check_aggregates_partition(const CsrMatrix& a, double eps) {
  CsrMatrix s = strong_connections(a, eps);
  if (!pattern_symmetric(s)) s = pattern_symmetrize(s);
  const Aggregates agg = aggregate(s);
  CHECK(agg.count > 0 && agg.count <= a.rows());
  // Every fine row belongs to exactly one aggregate, and every aggregate id
  // is used (the id array IS the membership map, so "exactly one" means "in
  // range for all rows, each id nonempty").
  std::vector<index_t> size(static_cast<std::size_t>(agg.count), 0);
  for (index_t v : agg.id) {
    CHECK(v >= 0 && v < agg.count);
    if (v >= 0 && v < agg.count) ++size[static_cast<std::size_t>(v)];
  }
  for (index_t g = 0; g < agg.count; ++g) {
    CHECK_MSG(size[static_cast<std::size_t>(g)] > 0, "aggregate %d empty", g);
  }
}

void check_hierarchy_invariants(const AmgHierarchy& h) {
  CHECK(h.num_levels() >= 1);
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    const AmgLevel& fine = h.levels[static_cast<std::size_t>(l)];
    const AmgLevel& coarse = h.levels[static_cast<std::size_t>(l) + 1];
    CHECK_MSG(coarse.n() < fine.n(), "level %d: %d -> %d rows", l, fine.n(),
              coarse.n());
    CHECK(fine.p.rows() == fine.n() && fine.p.cols() == coarse.n());
    CHECK(fine.r.rows() == coarse.n() && fine.r.cols() == fine.n());
    // R is exactly Pᵀ (bitwise — transpose moves values, it never rounds).
    CHECK(max_abs_difference(fine.r, transpose(fine.p)) == 0);
    // Galerkin coarse operator of an SPD fine operator stays symmetric.
    CHECK(pattern_symmetric(coarse.a));
    const value_t asym =
        max_abs_difference(coarse.a, transpose(coarse.a));
    CHECK_MSG(asym < 1e-10, "level %d asymmetry %.3g", l + 1, asym);
  }
  // The coarsest level is either small enough for the dense LU or the
  // hierarchy fell back to the serial-ILU coarse solve.
  CHECK(h.dense_coarse || h.coarse_ilu != nullptr);
}

void check_fixed_preconditioner(const CsrMatrix& a, const AmgOptions& opts,
                                std::uint64_t seed) {
  AmgPreconditioner m(a, opts);
  const auto r = random_vector(a.rows(), seed);
  std::vector<value_t> z1(r.size(), -1), z2(r.size(), 7);
  m.apply(r, z1);
  m.apply(r, z2);  // scratch state is warm now; output must not care
  CHECK(javelin::test::bitwise_equal(z1, z2));
  m.apply(r, z2);
  CHECK(javelin::test::bitwise_equal(z1, z2));
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  // --- aggregation is a partition on assorted matrices ---------------------
  check_aggregates_partition(gen::laplacian2d(30, 30, 5), 0.08);
  check_aggregates_partition(gen::laplacian3d(12, 12, 12, 7), 0.08);
  check_aggregates_partition(gen::random_fem(2000, 9, 0x5EED, 0.01), 0.08);
  {
    // Matrix with isolated vertices (identity block): singletons must keep
    // the partition total.
    CsrMatrix id = CsrMatrix::identity(50);
    check_aggregates_partition(id, 0.08);
  }

  // --- hierarchy invariants, both smoothers --------------------------------
  for (const AmgSmoother sm : {AmgSmoother::kJacobi, AmgSmoother::kIlu}) {
    AmgOptions opts;
    opts.smoother = sm;
    opts.num_threads = 4;

    CsrMatrix a2 = gen::laplacian2d(40, 40, 5);
    const AmgHierarchy h2 = amg_setup(a2, opts);
    CHECK_MSG(h2.num_levels() >= 2, "2-D hierarchy has %d levels",
              h2.num_levels());
    check_hierarchy_invariants(h2);
    CHECK_MSG(h2.operator_complexity() < 3.0, "operator complexity %.2f",
              h2.operator_complexity());

    CsrMatrix a3 = gen::laplacian3d(12, 12, 12, 7);
    const AmgHierarchy h3 = amg_setup(a3, opts);
    CHECK(h3.num_levels() >= 2);
    check_hierarchy_invariants(h3);

    check_fixed_preconditioner(a2, opts, 0xAB + static_cast<int>(sm));
  }

  // --- V-cycle actually preconditions: AMG-PCG converges, and on the 3-D
  // --- Laplacian in fewer iterations than ILU(0)-PCG (acceptance bar) ------
  {
    CsrMatrix a = gen::laplacian3d(40, 40, 40, 7);
    const auto b = random_vector(a.rows(), 0x3D);
    SolverOptions sopts;
    sopts.max_iterations = 600;
    sopts.tolerance = 1e-8;

    IluOptions iopts;
    iopts.num_threads = 4;
    IluPreconditioner ilu(a, iopts);
    std::vector<value_t> x(b.size(), 0);
    const SolverResult ilu_res = pcg(a, b, x, ilu.fn(), sopts);
    CHECK_MSG(ilu_res.converged, "ILU-PCG rel res %.3g after %d iters",
              ilu_res.relative_residual, ilu_res.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-6);

    AmgOptions aopts;
    aopts.num_threads = 4;
    AmgPreconditioner amg(a, aopts);
    CHECK(amg.hierarchy().num_levels() >= 3);
    std::fill(x.begin(), x.end(), 0);
    const SolverResult amg_res = pcg(a, b, x, amg.fn(), sopts);
    CHECK_MSG(amg_res.converged, "AMG-PCG rel res %.3g after %d iters",
              amg_res.relative_residual, amg_res.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-6);
    CHECK_MSG(amg_res.iterations < ilu_res.iterations,
              "AMG-PCG %d iters vs ILU-PCG %d", amg_res.iterations,
              ilu_res.iterations);

    // Jacobi-smoothed variant converges too (weaker but cheaper per cycle).
    AmgOptions jopts;
    jopts.smoother = AmgSmoother::kJacobi;
    jopts.pre_sweeps = 2;
    jopts.post_sweeps = 2;
    AmgPreconditioner amg_j(a, jopts);
    std::fill(x.begin(), x.end(), 0);
    const SolverResult j_res = pcg(a, b, x, amg_j.fn(), sopts);
    CHECK_MSG(j_res.converged, "Jacobi-AMG-PCG rel res %.3g after %d iters",
              j_res.relative_residual, j_res.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-6);
  }

  // --- anisotropic 2-D: the strength threshold must drop the weak coupling
  // --- direction and still converge ----------------------------------------
  {
    CsrMatrix a = gen::anisotropic2d(48, 48, 0.01);
    const auto b = random_vector(a.rows(), 0xA5);
    SolverOptions sopts;
    sopts.max_iterations = 400;
    sopts.tolerance = 1e-8;
    AmgOptions aopts;
    aopts.num_threads = 2;
    AmgPreconditioner amg(a, aopts);
    std::vector<value_t> x(b.size(), 0);
    const SolverResult res = pcg(a, b, x, amg.fn(), sopts);
    CHECK_MSG(res.converged, "anisotropic AMG-PCG rel res %.3g after %d",
              res.relative_residual, res.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-6);
  }

  return javelin::test::finish("test_amg");
}
