// Tests of the static schedule verifier (verify/):
//
//   * the verifier is CLEAN on every suite + degenerate matrix, forward and
//     backward schedules, under both backend tags, and on retargeted
//     schedules for every T in {1..16} (verify_retarget also proves the
//     retarget bitwise-equivalent to a fresh build) — far beyond the thread
//     counts bitwise-parity tests can afford to execute;
//   * coverage accounting is exact: waits_total == deps_kept, the
//     direct/transitive split sums to deps_total, nothing uncovered;
//   * the mutation self-test: every seeded single-defect mutation
//     (MutateSchedule) is flagged, with the expected defect class and a
//     row-precise diagnostic naming the mutated row or a real broken
//     dependency edge — the analyzer is itself tested adversarially;
//   * the wired assertion layers (IluOptions::verify_schedules) pass
//     through ilu_prepare / solve-time retarget / refactor-time retarget
//     without throwing.
#include <map>
#include <string>
#include <vector>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/tune/tune.hpp"
#include "javelin/verify/mutate.hpp"
#include "javelin/verify/verify.hpp"
#include "test_util.hpp"

using namespace javelin;
using verify::DiagKind;
using verify::Mutation;
using verify::MutationResult;
using verify::ScheduleDiagnostic;
using verify::VerifyReport;

namespace {

gen::SuiteOptions small_scale() {
  gen::SuiteOptions so;
  so.scale = 0.02;
  return so;
}

bool has_kind(const VerifyReport& rep, DiagKind k) {
  for (const ScheduleDiagnostic& d : rep.diagnostics) {
    if (d.kind == k) return true;
  }
  return false;
}

/// True when `producer` really is a dependency of `consumer` — the
/// row-precision bar for uncovered-edge diagnostics: the report must name an
/// actual broken RAW edge, not a nearby row.
bool is_real_dep(const DepsFn& deps, index_t consumer, index_t producer) {
  bool found = false;
  deps(consumer, [&](index_t d) { found = found || d == producer; });
  return found;
}

/// Every schedule of every suite/degenerate matrix must verify clean —
/// planned team, both backend tags, and retargets across T in {1..16}.
void check_matrix_clean(const std::string& name) {
  const gen::SuiteEntry e = gen::make_suite_matrix(name, small_scale());
  ThreadCountGuard guard(4);
  IluOptions opts;
  opts.num_threads = 4;
  opts.retarget_oversubscribed = false;
  opts.verify_schedules = false;  // this test drives the verifier itself
  const Factorization f = ilu_prepare(e.matrix, opts);
  const DepsFn low = lower_triangular_deps(f.lu);
  const DepsFn up = upper_triangular_deps(f.lu);

  const VerifyReport fwd_rep = verify::verify_schedule(f.fwd, low);
  const VerifyReport bwd_rep = verify::verify_schedule(f.bwd, up);
  CHECK_MSG(fwd_rep.ok(), "%s fwd: %s", name.c_str(),
            fwd_rep.summary().c_str());
  CHECK_MSG(bwd_rep.ok(), "%s bwd: %s", name.c_str(),
            bwd_rep.summary().c_str());

  // Exact coverage accounting against the builder's own statistics.
  CHECK_MSG(fwd_rep.stats.waits_total == f.fwd.deps_kept, "%s fwd waits",
            name.c_str());
  CHECK_MSG(fwd_rep.stats.deps_cross_thread == f.fwd.deps_total,
            "%s fwd deps_total", name.c_str());
  CHECK_MSG(fwd_rep.stats.deps_covered_direct +
                    fwd_rep.stats.deps_covered_transitive ==
                fwd_rep.stats.deps_cross_thread,
            "%s fwd coverage split", name.c_str());
  CHECK_MSG(fwd_rep.stats.deps_uncovered == 0, "%s fwd uncovered",
            name.c_str());

  // The analysis is backend-complete (level AND wait phases always run),
  // so flipping the tag — what set_exec_backend does in place — must not
  // change the verdict.
  ExecSchedule flipped = f.fwd;
  flipped.backend = ExecBackend::kBarrier;
  const VerifyReport flip_rep = verify::verify_schedule(flipped, low);
  CHECK_MSG(flip_rep.ok(), "%s fwd barrier tag: %s", name.c_str(),
            flip_rep.summary().c_str());

  for (int T = 1; T <= 16; ++T) {
    const VerifyReport rf = verify::verify_retarget(f.fwd, low, T);
    const VerifyReport rb = verify::verify_retarget(f.bwd, up, T);
    CHECK_MSG(rf.ok(), "%s fwd retarget T=%d: %s", name.c_str(), T,
              rf.summary().c_str());
    CHECK_MSG(rb.ok(), "%s bwd retarget T=%d: %s", name.c_str(), T,
              rb.summary().c_str());
  }
}

/// One seeded mutation -> flagged, right class, row-precise. Returns whether
/// the mutation found a site; with `require_applied` a miss is a failure
/// (the uniform sweeps pick setups where every class has sites), without it
/// the caller accounts for applicability across seeds itself (regime
/// mutations probe for a load-bearing boundary and may legitimately miss on
/// some seeds).
bool check_one_mutation(const std::string& name, const char* dir,
                        const ExecSchedule& clean, const DepsFn& deps,
                        Mutation m, std::uint64_t seed,
                        bool require_applied = true) {
  ExecSchedule mut = clean;
  const MutationResult res = verify::apply_mutation(mut, m, deps, seed);
  if (require_applied) {
    CHECK_MSG(res.applied, "%s %s %s seed=%llu: %s", name.c_str(), dir,
              verify::mutation_name(m),
              static_cast<unsigned long long>(seed), res.detail.c_str());
  }
  if (!res.applied) return false;

  const VerifyReport rep = verify::verify_schedule(mut, deps);
  CHECK_MSG(!rep.ok(), "%s %s %s seed=%llu survived verification",
            name.c_str(), dir, verify::mutation_name(m),
            static_cast<unsigned long long>(seed));
  if (rep.ok()) return true;

  bool precise = false;
  switch (m) {
    case Mutation::kDropWait:
    case Mutation::kWeakenWait:
    case Mutation::kRedirectWait:
      // The report must name an actual broken cross-thread edge (or a
      // deadlocked item when the redirect closed a cycle).
      for (const ScheduleDiagnostic& d : rep.diagnostics) {
        if (d.kind == DiagKind::kUncoveredDependency) {
          precise = precise || (d.consumer_thread != d.producer_thread &&
                                is_real_dep(deps, d.consumer_row,
                                            d.producer_row));
        } else if (d.kind == DiagKind::kDeadlock) {
          precise = true;
        }
      }
      break;
    case Mutation::kMoveRowAcrossLevel:
      // The moved row's own dependency became same-level: the report must
      // carry a level diagnostic naming exactly that row.
      for (const ScheduleDiagnostic& d : rep.diagnostics) {
        if ((d.kind == DiagKind::kLevelDependency ||
             d.kind == DiagKind::kLevelOrder) &&
            d.consumer_row == res.consumer_row) {
          precise = true;
        }
      }
      break;
    case Mutation::kDuplicateRow:
      // Either the doubled row or the lost row must be named.
      for (const ScheduleDiagnostic& d : rep.diagnostics) {
        if (d.kind == DiagKind::kPartition &&
            (d.consumer_row == res.consumer_row ||
             d.consumer_row == res.producer_row)) {
          precise = true;
        }
      }
      break;
    case Mutation::kCorruptWaitCount:
      for (const ScheduleDiagnostic& d : rep.diagnostics) {
        if (d.kind == DiagKind::kWaitMetadata &&
            d.consumer_row == res.consumer_row) {
          precise = true;
        }
      }
      break;
    case Mutation::kRegimeRetag:
      // Same bar as the wait mutations: the orphaned pruned wait must
      // surface as a real broken edge (or a deadlocked item).
      for (const ScheduleDiagnostic& d : rep.diagnostics) {
        if (d.kind == DiagKind::kUncoveredDependency) {
          precise = precise || is_real_dep(deps, d.consumer_row,
                                           d.producer_row);
        } else if (d.kind == DiagKind::kDeadlock) {
          precise = true;
        }
      }
      break;
    case Mutation::kRegimeTagShape:
      precise = has_kind(rep, DiagKind::kRegimeTag);
      break;
  }
  CHECK_MSG(precise,
            "%s %s %s seed=%llu flagged without a row-precise diagnostic: %s",
            name.c_str(), dir, verify::mutation_name(m),
            static_cast<unsigned long long>(seed), rep.summary().c_str());
  return true;
}

/// Mutation sweep over a schedule pair built wide enough that every
/// mutation class has valid sites (cross-thread waits, counts > 1, a third
/// thread for redirects, multiple levels).
void check_mutations(const std::string& name, int threads, index_t chunk) {
  const gen::SuiteEntry e = gen::make_suite_matrix(name, small_scale());
  ThreadCountGuard guard(threads);
  IluOptions opts;
  opts.num_threads = threads;
  opts.retarget_oversubscribed = false;
  opts.verify_schedules = false;
  opts.p2p_chunk_rows = chunk;
  const Factorization f = ilu_prepare(e.matrix, opts);
  const DepsFn low = lower_triangular_deps(f.lu);
  const DepsFn up = upper_triangular_deps(f.lu);

  // Preconditions that make every mutation class applicable here; if a
  // generator change ever voids one, this points at the setup, not the
  // verifier.
  CHECK_MSG(f.fwd.deps_kept > 0, "%s fwd has no waits to mutate",
            name.c_str());
  CHECK_MSG(f.fwd.num_levels > 1, "%s fwd has a single level", name.c_str());

  for (const Mutation m : verify::kAllMutations) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      check_one_mutation(name, "fwd", f.fwd, low, m, seed);
    }
    check_one_mutation(name, "bwd", f.bwd, up, m, 7);
  }
}

/// Hybrid (per-level regime) schedules: derived tags must verify CLEAN —
/// with the pruned waits re-accounted as regime-covered — survive
/// retargeting to other teams, and the regime mutation classes must be
/// flagged with row precision.
void check_hybrid(const std::string& name, int threads, index_t chunk,
                  std::map<Mutation, int>& regime_applied) {
  const gen::SuiteEntry e = gen::make_suite_matrix(name, small_scale());
  ThreadCountGuard guard(threads);
  IluOptions opts;
  opts.num_threads = threads;
  opts.retarget_oversubscribed = false;
  opts.verify_schedules = false;
  opts.p2p_chunk_rows = chunk;
  const Factorization f = ilu_prepare(e.matrix, opts);
  const DepsFn low = lower_triangular_deps(f.lu);
  const DepsFn up = upper_triangular_deps(f.lu);

  for (const bool is_fwd : {true, false}) {
    const char* dir = is_fwd ? "fwd" : "bwd";
    const ExecSchedule& base = is_fwd ? f.fwd : f.bwd;
    const DepsFn& deps = is_fwd ? low : up;
    ExecSchedule hyb = base;
    const auto tags = tune::derive_hybrid_tags(
        hyb, /*serial_below=*/static_cast<index_t>(threads),
        /*barrier_below=*/static_cast<index_t>(4 * threads));
    apply_level_tags(hyb, tags);
    if (!hyb.hybrid()) continue;  // all-P2P tag vector normalized away

    CHECK_MSG(hyb.deps_kept <= base.deps_kept, "%s %s tag pruning grew waits",
              name.c_str(), dir);
    const VerifyReport rep = verify::verify_schedule(hyb, deps);
    CHECK_MSG(rep.ok(), "%s %s hybrid: %s", name.c_str(), dir,
              rep.summary().c_str());
    // Coverage accounting now splits three ways; nothing may be uncovered.
    CHECK_MSG(rep.stats.deps_covered_direct + rep.stats.deps_covered_regime +
                      rep.stats.deps_covered_transitive ==
                  rep.stats.deps_cross_thread,
              "%s %s hybrid coverage split", name.c_str(), dir);
    CHECK_MSG(rep.stats.deps_uncovered == 0, "%s %s hybrid uncovered",
              name.c_str(), dir);
    // Waits the tags pruned must reappear as regime-synchronized coverage.
    if (hyb.deps_kept < base.deps_kept) {
      CHECK_MSG(rep.stats.deps_covered_regime > 0,
                "%s %s pruned waits not regime-covered", name.c_str(), dir);
    }

    // Retargeting a hybrid schedule re-applies the tags (verify_retarget
    // also proves the rebuild bitwise-identical, tags included).
    for (const int T : {2, threads, 2 * threads}) {
      const VerifyReport rt = verify::verify_retarget(hyb, deps, T);
      CHECK_MSG(rt.ok(), "%s %s hybrid retarget T=%d: %s", name.c_str(), dir,
                T, rt.summary().c_str());
    }

    // Regime-boundary defect classes (seeded, row-precise). The retag
    // mutator uses the verifier as its oracle and may find no orphanable
    // site on a particular schedule (every pruned dependency can stay
    // transitively covered after a single retag), so applicability is
    // accounted across the whole matrix set — main() requires every class
    // to have fired somewhere.
    for (const Mutation m : verify::kRegimeMutations) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        if (check_one_mutation(name, dir, hyb, deps, m, seed,
                               /*require_applied=*/false)) {
          ++regime_applied[m];
        }
      }
    }
  }
}

/// The wired assertion layers: prepare-time, solve-time retarget, and
/// refactor-time retarget all verify their schedules and must pass clean on
/// a healthy factorization (reaching the end without a throw IS the check).
void check_wired_layers() {
  const gen::SuiteEntry e = gen::make_suite_matrix("wang3", small_scale());
  Factorization f = [&] {
    ThreadCountGuard guard(4);
    IluOptions opts;
    opts.num_threads = 4;
    opts.retarget_oversubscribed = false;
    opts.verify_schedules = true;
    opts.parallel_corner = true;  // corner schedule verified in ilu_prepare
    return ilu_factor(e.matrix, opts);
  }();
  const auto r = javelin::test::random_vector(f.n(), 0xC0FFEE);
  std::vector<value_t> z(r.size());
  {
    // Team below the plan: runtime_fwd/bwd retarget through ensure_cache,
    // which re-verifies under verify_schedules.
    ThreadCountGuard guard(2);
    SolveWorkspace ws;
    ilu_apply(f, r, z, ws);
    // Numeric-phase retarget cache, also wired.
    ilu_refactor(f, e.matrix);
  }
  CHECK(f.n() > 0);
}

/// Hand-built degenerate inputs the structural phase must reject or accept.
void check_structural_edges() {
  // Default-constructed: schedules nothing, verifies clean.
  const ExecSchedule empty;
  const DepsFn none = [](index_t, const std::function<void(index_t)>&) {};
  CHECK(verify::verify_schedule(empty, none).ok());

  // Truncated wait arrays must be malformed, not UB.
  const gen::SuiteEntry e = gen::make_suite_matrix("fem_filter", small_scale());
  ThreadCountGuard guard(4);
  IluOptions opts;
  opts.num_threads = 4;
  opts.retarget_oversubscribed = false;
  opts.verify_schedules = false;
  const Factorization f = ilu_prepare(e.matrix, opts);
  const DepsFn low = lower_triangular_deps(f.lu);
  ExecSchedule bad = f.fwd;
  if (!bad.wait_thread.empty()) {
    bad.wait_thread.pop_back();
    const VerifyReport rep = verify::verify_schedule(bad, low);
    CHECK_MSG(has_kind(rep, DiagKind::kMalformed), "truncated wait arrays: %s",
              rep.summary().c_str());
  }
  // Stale stats are reported as such, not silently accepted.
  ExecSchedule stale = f.fwd;
  stale.deps_kept += 1;
  CHECK(has_kind(verify::verify_schedule(stale, low),
                 DiagKind::kStatsMismatch));
}

}  // namespace

int main() {
  for (const std::string& name : gen::suite_names()) {
    check_matrix_clean(name);
  }
  for (const std::string& name : gen::degenerate_names()) {
    check_matrix_clean(name);
  }
  // Structurally different generators for the adversarial sweep — a grid
  // stencil, an irregular FEM pattern, a power-grid block structure — at
  // team sizes that give the redirect mutation a third thread to point at.
  check_mutations("apache2", 4, 4);
  check_mutations("thermal2", 4, 2);
  check_mutations("TSOPF_RS_b300_c2", 8, 4);
  std::map<Mutation, int> regime_applied;
  check_hybrid("apache2", 4, 4, regime_applied);
  check_hybrid("thermal2", 4, 2, regime_applied);
  check_hybrid("TSOPF_RS_b300_c2", 8, 4, regime_applied);
  for (const Mutation m : verify::kRegimeMutations) {
    CHECK_MSG(regime_applied[m] > 0, "%s never found a mutable site",
              verify::mutation_name(m));
  }
  check_wired_layers();
  check_structural_edges();
  return javelin::test::finish("test_verify");
}
