// Breakdown-safety properties: cooperative abort of the exec backends under
// fault injection (bounded termination, structured status, no throw from
// inside a parallel region), the shifted-ILU retry ladder and preconditioner
// fallback chain of RobustSolver, the Krylov breakdown/non-finite/stagnation
// guards, and WorkspacePool lease exception-safety when an abort unwinds
// through the batched apply path.
#include <cmath>
#include <cstdio>
#include <vector>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/batch.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/solver/batch.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/solver/robust.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

namespace javelin {
namespace {

using test::bitwise_equal;
using test::random_vector;

IluOptions pinned_opts(ExecBackend backend, int threads) {
  IluOptions opts;
  opts.exec_backend = backend;
  opts.num_threads = threads;
  opts.retarget_oversubscribed = false;  // force full scheduled width
  return opts;
}

const char* backend_name(ExecBackend b) {
  return b == ExecBackend::kP2P ? "p2p" : "barrier";
}

/// A hook poisoning exactly one (site, permuted row). Only that row can win
/// the abort CAS, so the reported row is deterministic at any thread count.
FaultHook poison(FaultSite site, index_t row) {
  return [site, row](FaultSite s, index_t r) { return !(s == site && r == row); };
}

// --- fault injection: factorization ---------------------------------------

void check_factor_abort(const CsrMatrix& a, ExecBackend backend, int threads) {
  ThreadCountGuard guard(threads);
  IluOptions opts = pinned_opts(backend, threads);
  const index_t target = a.rows() / 2;
  opts.fault_hook = poison(FaultSite::kFactorRow, target);

  Factorization f = ilu_prepare(a, opts);
  const FactorStatus st = ilu_factor_numeric_status(f);
  CHECK_MSG(!st.ok(), "factor fault ignored (%s, t=%d)", backend_name(backend),
            threads);
  CHECK_MSG(st.row == target, "factor abort row %lld != %lld (%s, t=%d)",
            static_cast<long long>(st.row), static_cast<long long>(target),
            backend_name(backend), threads);

  // The factor is reusable after the abort: rescatter and run hook-free.
  f.opts.fault_hook = nullptr;
  const FactorStatus ok = ilu_refactor_status(f, a);
  CHECK_MSG(ok.ok(), "refactor after abort failed (%s, t=%d)",
            backend_name(backend), threads);
}

// --- fault injection: triangular sweeps (plain, fused, panel) --------------

void check_sweep_abort(const CsrMatrix& a, ExecBackend backend, int threads) {
  ThreadCountGuard guard(threads);
  Factorization f = ilu_factor(a, pinned_opts(backend, threads));
  const FusedApplySpmv fs = build_fused_apply_spmv(f, a);
  const index_t n = f.n();
  const index_t target = n / 3;
  const std::size_t un = static_cast<std::size_t>(n);
  const auto r = random_vector(n, 0xB0B);
  std::vector<value_t> z(un), t(un);
  SolveWorkspace ws;

  for (FaultSite site : {FaultSite::kForwardRow, FaultSite::kBackwardRow}) {
    f.opts.fault_hook = poison(site, target);

    // Non-throwing form: structured status with the poisoned row.
    const ExecStatus st = ilu_apply_status(f, r, z, ws);
    CHECK_MSG(!st.ok() && st.row == target,
              "sweep abort row %lld != %lld (site=%d, %s, t=%d)",
              static_cast<long long>(st.row), static_cast<long long>(target),
              static_cast<int>(site), backend_name(backend), threads);

    // Throwing form: AbortError AFTER the region drained (never from a
    // worker thread — a thrown exception inside the region would terminate).
    bool threw = false;
    try {
      ilu_apply(f, r, z, ws);
    } catch (const AbortError&) {
      threw = true;
    }
    CHECK_MSG(threw, "ilu_apply did not convert abort (%s, t=%d)",
              backend_name(backend), threads);

    // Fused apply+SpMV: the abort must also drain the SpMV chunk waits.
    threw = false;
    try {
      ilu_apply_spmv(f, a, fs, r, z, t, ws);
    } catch (const AbortError&) {
      threw = true;
    }
    CHECK_MSG(threw, "fused apply did not abort (site=%d, %s, t=%d)",
              static_cast<int>(site), backend_name(backend), threads);
  }

  // Panel paths, both sites.
  const index_t k = 4;
  const auto rp = random_vector(n * k, 0xB0B ^ 1);
  std::vector<value_t> zp(un * static_cast<std::size_t>(k));
  std::vector<value_t> tp(un * static_cast<std::size_t>(k));
  for (FaultSite site : {FaultSite::kForwardRow, FaultSite::kBackwardRow}) {
    f.opts.fault_hook = poison(site, target);
    bool threw = false;
    try {
      ilu_apply_panel(f, rp, zp, k, ws);
    } catch (const AbortError&) {
      threw = true;
    }
    CHECK_MSG(threw, "panel apply did not abort (site=%d, %s, t=%d)",
              static_cast<int>(site), backend_name(backend), threads);

    threw = false;
    try {
      ilu_apply_spmv_panel(f, a, fs, rp, zp, tp, k, ws);
    } catch (const AbortError&) {
      threw = true;
    }
    CHECK_MSG(threw, "fused panel apply did not abort (site=%d, %s, t=%d)",
              static_cast<int>(site), backend_name(backend), threads);
  }

  // Clearing the hook restores the unguarded paths bitwise.
  f.opts.fault_hook = nullptr;
  std::vector<value_t> z_ref(un);
  SolveWorkspace ws_ref;
  ilu_apply_serial(f, r, z_ref, ws_ref);
  ilu_apply(f, r, z, ws);
  CHECK_MSG(bitwise_equal(z, z_ref), "post-abort apply diverged (%s, t=%d)",
            backend_name(backend), threads);
}

// --- WorkspacePool lease exception-safety ----------------------------------

void check_lease_safety(const CsrMatrix& a) {
  ThreadCountGuard guard(4);
  Factorization f = ilu_factor(a, pinned_opts(ExecBackend::kP2P, 4));
  WorkspacePool pool;
  const PanelPrecondFn precond = ilu_panel_preconditioner(f, pool);

  const index_t n = f.n();
  const index_t k = 3;
  const std::size_t need = static_cast<std::size_t>(n) * static_cast<std::size_t>(k);
  const auto r = random_vector(n * k, 0x1EA5E);
  std::vector<value_t> z(need);

  // Warm the pool so the aborting call reuses a pooled workspace.
  precond(r, z, k);
  CHECK(pool.idle() == 1);

  // An abort mid-lease must release the workspace back to the pool (RAII
  // unwinding through ilu_apply_panel's AbortError).
  f.opts.fault_hook = poison(FaultSite::kBackwardRow, n / 2);
  bool threw = false;
  try {
    precond(r, z, k);
  } catch (const AbortError&) {
    threw = true;
  }
  CHECK_MSG(threw, "panel preconditioner did not abort");
  CHECK_MSG(pool.idle() == 1, "aborted lease leaked: %zu idle", pool.idle());

  // The pool stays usable, including by overlapping leases (two concurrent
  // streams = two distinct workspaces, returned independently).
  f.opts.fault_hook = nullptr;
  {
    WorkspacePool::Lease l1 = pool.acquire();
    WorkspacePool::Lease l2 = pool.acquire();
    CHECK(pool.idle() == 0);
    std::vector<value_t> z2(need);
    ilu_apply_panel(f, r, z, k, *l1);
    ilu_apply_panel(f, r, z2, k, *l2);
    CHECK(bitwise_equal(z, z2));
  }
  CHECK_MSG(pool.idle() == 2, "leases not returned: %zu idle", pool.idle());
  precond(r, z, k);
  CHECK(pool.idle() == 2);
}

// --- Krylov guards ----------------------------------------------------------

void check_krylov_guards() {
  // Exact PCG breakdown on an indefinite 2x2: A = diag(1, -1), b = [1, 1]
  // gives p = r = b, q = [1, -1], (p, q) = 0 on the first iteration.
  const CsrMatrix ind(2, 2, {0, 1, 2}, {0, 1}, {1.0, -1.0});
  std::vector<value_t> b = {1.0, 1.0}, x = {0.0, 0.0};
  SolverResult res = pcg(ind, b, x, identity_preconditioner());
  CHECK_MSG(res.stop == SolverStop::kBreakdown, "expected kBreakdown, got %s",
            to_string(res.stop));
  CHECK(!res.converged);

  // pcg_many mirrors per column: column 0 breaks down, column 1 converges —
  // the panel degrades per-column, not per-panel.
  std::vector<value_t> bp = {1.0, 1.0, 1.0, 0.0}, xp(4, 0.0);
  const auto many = pcg_many(ind, bp, xp, 2, identity_panel_preconditioner());
  CHECK_MSG(many[0].stop == SolverStop::kBreakdown, "col0 stop %s",
            to_string(many[0].stop));
  CHECK_MSG(many[1].stop == SolverStop::kConverged && many[1].converged,
            "col1 stop %s", to_string(many[1].stop));

  // A NaN-producing preconditioner trips the non-finite guard immediately
  // instead of iterating to the budget on garbage.
  const CsrMatrix spd = gen::laplacian2d(8, 8, 5);
  const auto bb = random_vector(spd.rows(), 0xBAD);
  std::vector<value_t> xx(bb.size(), 0.0);
  const PrecondFn nan_precond = [](std::span<const value_t>,
                                   std::span<value_t> z) {
    fill(z, std::numeric_limits<value_t>::quiet_NaN());
  };
  res = pcg(spd, bb, xx, nan_precond);
  CHECK_MSG(res.stop == SolverStop::kNonFinite, "pcg NaN precond stop %s",
            to_string(res.stop));
  CHECK(std::isfinite(res.relative_residual));  // honest recomputed residual

  std::fill(xx.begin(), xx.end(), 0.0);
  res = gmres(spd, bb, xx, nan_precond);
  CHECK_MSG(res.stop == SolverStop::kNonFinite, "gmres NaN precond stop %s",
            to_string(res.stop));
  for (const value_t v : xx) CHECK(std::isfinite(v));  // poisoned cycle discarded

  // Stagnation: an INCONSISTENT singular system (the saddle's redundant
  // constraint row is identically zero, but its rhs entry is not) can never
  // push the residual below that entry — the guard must hand the budget
  // back instead of burning max_iterations. The consistent A·x component
  // keeps the Krylov space rich (a pure e_last rhs would hit an exact happy
  // breakdown instead of a plateau).
  const CsrMatrix saddle = gen::degenerate_saddle(8, 8, 4);
  const auto xs_true = random_vector(saddle.rows(), 0x57A6);
  std::vector<value_t> bs(xs_true.size());
  {
    const RowPartition sp = RowPartition::build(saddle);
    spmv(saddle, sp, xs_true, bs);
  }
  bs.back() += 1.0;  // inconsistent: the last row of A is identically zero
  std::vector<value_t> xs(bs.size(), 0.0);
  SolverOptions so;
  so.stagnation_window = 8;
  so.max_iterations = 10000;
  res = gmres(saddle, bs, xs, identity_preconditioner(), so);
  CHECK_MSG(res.stop == SolverStop::kStagnation, "singular gmres stop %s",
            to_string(res.stop));
  CHECK_MSG(res.iterations < 10000, "stagnation guard did not fire early");
}

// --- RobustSolver: recovery of every in-tree degenerate matrix -------------

void check_robust_zero_diag(ExecBackend backend) {
  const CsrMatrix a = gen::make_suite_matrix("zero_diag").matrix;
  const auto xt = random_vector(a.rows(), 0xD1A);
  std::vector<value_t> bb(xt.size());
  const RowPartition part = RowPartition::build(a);
  spmv(a, part, xt, bb);
  std::vector<value_t> x(xt.size(), 0.0);

  RobustOptions opts;
  opts.ilu = pinned_opts(backend, max_threads());
  RobustSolver solver(a, opts);
  CHECK(solver.symmetric());
  const SolveReport rep = solver.solve(bb, x);
  CHECK_MSG(rep.converged, "zero_diag (%s): %s", backend_name(backend),
            rep.summary().c_str());
  CHECK(rep.cause == FailureCause::kNone);
  // Attempt trail: the unshifted rung must have died at the injected pivot
  // (permuted row of original row 0), and the winning rung carries a shift.
  CHECK(rep.attempts.size() >= 2);
  CHECK_MSG(!rep.attempts[0].factored, "unshifted ILU unexpectedly factored");
  CHECK(rep.attempts[0].level == PrecondLevel::kIlu);
  CHECK(rep.level_used == PrecondLevel::kShiftedIlu);
  CHECK_MSG(rep.shift_used > 0, "recovered without a shift?");
  CHECK(rep.backend == backend);
}

void check_robust_saddle() {
  const CsrMatrix a = gen::make_suite_matrix("saddle_point").matrix;
  const auto xt = random_vector(a.rows(), 0x5AD);
  std::vector<value_t> bb(xt.size());
  const RowPartition part = RowPartition::build(a);
  spmv(a, part, xt, bb);  // consistent rhs of the singular system
  std::vector<value_t> x(xt.size(), 0.0);

  RobustOptions opts;
  opts.solver.max_iterations = 2000;
  RobustSolver solver(a, opts);
  CHECK(solver.symmetric());  // indefinite but exactly symmetric
  const SolveReport rep = solver.solve(bb, x);
  CHECK_MSG(rep.converged, "saddle: %s", rep.summary().c_str());
  // The redundant constraint's exact-zero pivot must kill the unshifted rung.
  CHECK_MSG(!rep.attempts[0].factored, "saddle unshifted ILU factored");
  CHECK(rep.attempts[0].factor_row != kInvalidIndex);
  // Residual of the returned x is a true residual and meets the tolerance.
  std::vector<value_t> check(bb.size());
  spmv(a, part, x, check);
  value_t num = 0;
  for (std::size_t i = 0; i < bb.size(); ++i) {
    check[i] = bb[i] - check[i];
  }
  num = norm2(check) / norm2(std::span<const value_t>(bb));
  CHECK_MSG(num <= 1e-7, "saddle residual drifted: %.3g", num);
}

void check_robust_near_singular() {
  const CsrMatrix a = gen::make_suite_matrix("near_singular").matrix;
  const auto xt = random_vector(a.rows(), 0x4E5);
  std::vector<value_t> bb(xt.size());
  const RowPartition part = RowPartition::build(a);
  spmv(a, part, xt, bb);
  std::vector<value_t> x(xt.size(), 0.0);

  RobustOptions opts;
  opts.solver.max_iterations = 4000;
  opts.solver.tolerance = 1e-10;
  RobustSolver solver(a, opts);
  const SolveReport rep = solver.solve(bb, x);
  // This one FACTORS fine (it is a conditioning stressor, not a breakdown);
  // ILU-preconditioned CG should take it without shifts.
  CHECK_MSG(!rep.attempts.empty() && rep.attempts[0].factored,
            "near_singular factorization broke down");
  CHECK_MSG(rep.converged, "near_singular: %s", rep.summary().c_str());
  CHECK(rep.level_used == PrecondLevel::kIlu);
  CHECK(rep.shift_used == 0);
}

void check_robust_report_contract() {
  // A healthy matrix: one rung, no shift, cause none — the report must not
  // invent attempts that never ran.
  const CsrMatrix a = gen::laplacian2d(24, 24, 5);
  const auto xt = random_vector(a.rows(), 0x0C);
  std::vector<value_t> bb(xt.size());
  const RowPartition part = RowPartition::build(a);
  spmv(a, part, xt, bb);
  std::vector<value_t> x(xt.size(), 0.0);
  const SolveReport rep = solve_robust(a, bb, x);
  CHECK(rep.converged && rep.cause == FailureCause::kNone);
  CHECK(rep.attempts.size() == 1);
  CHECK(rep.attempts[0].level == PrecondLevel::kIlu);
  CHECK(rep.attempts[0].shift == 0 && !rep.attempts[0].used_gmres);
  CHECK(rep.total_iterations == rep.attempts[0].result.iterations);
  CHECK(!rep.summary().empty());

  // Ladder exhaustion is a report, not an exception: forbid every fallback
  // and poison the factorization at all shifts via an always-false hook.
  RobustOptions opts;
  opts.allow_jacobi = false;
  opts.allow_identity = false;
  opts.ilu.fault_hook = [](FaultSite s, index_t) {
    return s != FaultSite::kFactorRow;
  };
  std::fill(x.begin(), x.end(), 0.0);
  const SolveReport dead = solve_robust(a, bb, x, opts);
  CHECK(!dead.converged);
  CHECK(dead.cause == FailureCause::kFactorBreakdown);
  CHECK(dead.attempts.size() == 1 + 4);  // unshifted + max_shift_attempts
  for (const AttemptReport& at : dead.attempts) CHECK(!at.factored);
  for (const value_t v : x) CHECK(v == 0.0);  // caller's guess untouched
}

}  // namespace
}  // namespace javelin

int main() {
  using namespace javelin;

  const CsrMatrix grid = gen::laplacian2d(40, 40, 5);
  CsrMatrix fem = gen::random_fem(1200, 9, 0x7E57);

  for (ExecBackend backend : {ExecBackend::kP2P, ExecBackend::kBarrier}) {
    for (int threads : {1, 2, 4, 8}) {
      check_factor_abort(grid, backend, threads);
      check_factor_abort(fem, backend, threads);
      check_sweep_abort(grid, backend, threads);
      check_sweep_abort(fem, backend, threads);
    }
  }

  check_lease_safety(grid);
  check_krylov_guards();

  check_robust_zero_diag(ExecBackend::kP2P);
  check_robust_zero_diag(ExecBackend::kBarrier);
  check_robust_saddle();
  check_robust_near_singular();
  check_robust_report_contract();

  return test::finish("test_robust");
}
