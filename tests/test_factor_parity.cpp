// Property test for the claim in parallel.cpp: every execution mode (serial,
// point-to-point upper stage, ER and SR lower stages, serial or parallel
// corner) produces a bitwise-identical factor, because all paths share the
// row kernel and each row's arithmetic order is fixed by its CSR layout.
#include "javelin/gen/generators.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/ilu/serial.hpp"
#include "javelin/ilu/symbolic.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;

namespace {

/// Serial up-looking factorization on the SAME permuted pattern the parallel
/// plan uses — the reference the parallel factor must match bitwise.
CsrMatrix serial_reference(const CsrMatrix& a, const Factorization& f) {
  CsrMatrix s = ilu_symbolic(a, f.opts.fill_level);
  CsrMatrix lu = permute_symmetric(s, f.plan.perm);
  const std::vector<index_t> diag = diagonal_positions(lu);
  ilu_factor_serial_inplace(lu, diag, f.opts);
  return lu;
}

void check_parity(const char* name, const CsrMatrix& a, IluOptions opts) {
  Factorization f = ilu_factor(a, opts);
  const CsrMatrix ref = serial_reference(a, f);
  CHECK_MSG(javelin::test::bitwise_equal(f.lu.values(), ref.values()),
            "%s method=%s threads=%d fill=%d", name,
            lower_method_name(f.plan.method), f.plan.threads,
            opts.fill_level);
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(22, 22, 5);
  CsrMatrix fem = gen::random_fem(900, 8, 11, 0.02);
  CsrMatrix circ = gen::circuit(1000, 5.0, 3, /*symmetric_pattern=*/true, 6);
  CsrMatrix chain = gen::long_chain(1200, 12, 4, 5);  // many tiny levels
  CsrMatrix power = gen::power_system(800, 16, 48, 9);

  struct Case {
    const char* name;
    const CsrMatrix* a;
  };
  const Case cases[] = {{"grid", &grid},
                        {"fem", &fem},
                        {"circuit", &circ},
                        {"chain", &chain},
                        {"power", &power}};

  for (const Case& c : cases) {
    for (int threads : {1, 2, 4}) {
      for (int fill : {0, 1}) {
        IluOptions opts;
        opts.num_threads = threads;
        opts.fill_level = fill;

        opts.lower_method = LowerMethod::kAuto;
        check_parity(c.name, *c.a, opts);

        opts.lower_method = LowerMethod::kEvenRows;
        check_parity(c.name, *c.a, opts);

        opts.lower_method = LowerMethod::kSegmentedRows;
        check_parity(c.name, *c.a, opts);
      }
    }
    // Parallel corner and small coalescing caps exercise the remaining paths.
    IluOptions opts;
    opts.num_threads = 4;
    opts.parallel_corner = true;
    opts.lower_method = LowerMethod::kSegmentedRows;
    opts.sr_tile_nnz = 8;  // force multi-tile tasks
    check_parity(c.name, *c.a, opts);
    opts.sr_tile_nnz = 1;  // one tile per task (no coalescing)
    check_parity(c.name, *c.a, opts);
  }

  // Drop tolerance interacts with the kernel's in-loop dropping; parity must
  // survive it (non-modified: modified ILU accumulates its diagonal
  // compensation per stage, which legitimately reorders the sum).
  IluOptions drop;
  drop.num_threads = 4;
  drop.drop_tolerance = 1e-3;
  check_parity("grid-drop", grid, drop);
  check_parity("chain-drop", chain, drop);

  return javelin::test::finish("test_factor_parity");
}
