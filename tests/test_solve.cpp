// Property tests of the triangular-solve subsystem: the P2P fwd+bwd sweeps
// must match the serial reference solve bitwise, and on a matrix whose ILU(0)
// is exact (tridiagonal) ilu_apply must invert A to rounding accuracy.
#include <random>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;

namespace {

std::vector<value_t> random_vector(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

void check_apply_parity(const char* name, const CsrMatrix& a, IluOptions opts) {
  Factorization f = ilu_factor(a, opts);
  const auto r = random_vector(f.n(), 0xFEED);
  std::vector<value_t> z_par(r.size()), z_ser(r.size());
  SolveWorkspace ws_par, ws_ser;
  ilu_apply(f, r, z_par, ws_par);
  ilu_apply_serial(f, r, z_ser, ws_ser);
  CHECK_MSG(javelin::test::bitwise_equal(z_par, z_ser),
            "%s threads=%d method=%s", name, f.plan.threads,
            lower_method_name(f.plan.method));

  // Repeat with the same workspace: reuse must not perturb results.
  std::vector<value_t> z2(r.size());
  ilu_apply(f, r, z2, ws_par);
  CHECK(javelin::test::bitwise_equal(z2, z_par));

  // Sweep-level parity on the permuted vectors.
  auto xp = random_vector(f.n(), 0xBEEF);
  auto xs = xp;
  SolveWorkspace ws;
  ws.resize(f.n(), f.plan.num_lower_rows());
  trsv_forward(f, xp, ws);
  trsv_forward_serial(f, xs);
  CHECK(javelin::test::bitwise_equal(xp, xs));
  trsv_backward(f, xp, ws);
  trsv_backward_serial(f, xs);
  CHECK(javelin::test::bitwise_equal(xp, xs));

  // And against the one-shot reference entry point.
  auto b = random_vector(f.n(), 0xC0DE);
  std::vector<value_t> x_ref(b.size());
  trsv_serial(f.lu, f.diag_pos, b, x_ref);
  auto x_p2p = b;
  trsv_forward(f, x_p2p, ws);
  trsv_backward(f, x_p2p, ws);
  CHECK(javelin::test::bitwise_equal(x_p2p, x_ref));
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(24, 24, 5);
  CsrMatrix fem = gen::random_fem(1000, 8, 21, 0.02);
  CsrMatrix chain = gen::long_chain(1400, 10, 4, 3);
  CsrMatrix power = gen::power_system(900, 18, 50, 13);

  for (int threads : {1, 2, 4}) {
    IluOptions opts;
    opts.num_threads = threads;
    opts.retarget_oversubscribed = false;  // force planned-width schedules
    check_apply_parity("grid", grid, opts);
    check_apply_parity("fem", fem, opts);
    check_apply_parity("chain", chain, opts);
    check_apply_parity("power", power, opts);

    opts.fill_level = 1;
    check_apply_parity("grid-f1", grid, opts);
    opts.fill_level = 0;
    opts.lower_method = LowerMethod::kSegmentedRows;
    check_apply_parity("chain-sr", chain, opts);
  }

  // Tridiagonal matrix: ILU(0) is the exact LU, so the preconditioner is the
  // exact inverse — A * ilu_apply(r) must reproduce r to rounding.
  CsrMatrix tri = gen::laplacian2d(600, 1, 5);
  IluOptions opts;
  opts.num_threads = 4;
  Factorization f = ilu_factor(tri, opts);
  const auto r = random_vector(tri.rows(), 0xACE);
  std::vector<value_t> z(r.size()), az(r.size());
  ilu_apply(f, r, z);
  spmv_serial(tri, z, az);
  CHECK_MSG(javelin::test::max_abs_diff(az, r) < 1e-10, "exact-LU diff %.3g",
            javelin::test::max_abs_diff(az, r));

  return javelin::test::finish("test_solve");
}
