// Property tests for the persistent scatter map: refactorization must
// reproduce a fresh factorization bitwise, and the flat-copy scatter must
// agree exactly with the seed binary-search scatter it replaced.
#include <random>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/factorization.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;

namespace {

/// Copy of `a` with values remixed deterministically (pattern unchanged),
/// still diagonally dominant so the refactorization exists.
CsrMatrix remix_values(const CsrMatrix& a, std::uint64_t seed) {
  CsrMatrix b = a;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.5, 1.5);
  for (auto& v : b.values_mut()) v *= dist(rng);
  gen::make_diagonally_dominant(b);
  return b;
}

void check_refactor(const char* name, const CsrMatrix& a, IluOptions opts) {
  Factorization f = ilu_factor(a, opts);
  CHECK(f.a_scatter.size() == static_cast<std::size_t>(a.nnz()));
  const std::vector<value_t> first(f.lu.values().begin(), f.lu.values().end());

  // Same matrix again: identical factor bitwise.
  ilu_refactor(f, a);
  CHECK_MSG(javelin::test::bitwise_equal(f.lu.values(), first),
            "%s same-values refactor", name);

  // New values, same pattern: refactor must equal a from-scratch factor.
  const CsrMatrix a2 = remix_values(a, 0x5EED);
  ilu_refactor(f, a2);
  Factorization fresh = ilu_factor(a2, opts);
  CHECK_MSG(javelin::test::bitwise_equal(f.lu.values(), fresh.lu.values()),
            "%s remixed refactor", name);

  // The flat-copy scatter agrees exactly with the seed searched scatter.
  Factorization g = ilu_factor(a, opts);
  scatter_values(g, a2);
  const std::vector<value_t> flat(g.lu.values().begin(), g.lu.values().end());
  scatter_values_searched(g, a2);
  CHECK_MSG(javelin::test::bitwise_equal(flat, g.lu.values()),
            "%s scatter map vs searched", name);
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(24, 20, 5);
  CsrMatrix fem = gen::random_fem(900, 9, 31, 0.02);
  CsrMatrix circ = gen::circuit(1000, 5.5, 17, /*symmetric_pattern=*/false, 7);
  CsrMatrix chain = gen::long_chain(1100, 14, 5, 23);

  for (int threads : {1, 4}) {
    for (int fill : {0, 1}) {
      IluOptions opts;
      opts.num_threads = threads;
      opts.fill_level = fill;
      check_refactor("grid", grid, opts);
      check_refactor("fem", fem, opts);
      check_refactor("circuit", circ, opts);
      check_refactor("chain", chain, opts);
    }
  }

  return javelin::test::finish("test_refactor");
}
