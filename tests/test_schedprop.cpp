// Randomized property test closing the loop between the static verifier
// and the execution layer:
//
//   random dependency DAG -> level sets -> schedule -> verifier CLEAN
//                                                   -> execution BITWISE
//                                                      equal to the serial
//                                                      reference
//
// in one loop, so a verifier false-positive (flagging a correct build), a
// builder bug (schedule that verifies but mis-executes — a verifier
// false-NEGATIVE by implication), and a level-set bug all fail here. A
// seeded single-defect mutation is also run each trial: if the verifier
// clears a mutant (soundness breach) the mutant is EXECUTED and held to
// bitwise parity; flagged mutants are never executed (they may deadlock —
// that is the point).
//
// Trials are seeded and, on failure, shrunk: the matrix generator draws
// each row's dependencies from a per-row stream keyed on (seed, row), so a
// size-n' prefix of the size-n matrix is itself a valid test case and the
// shrink loop just re-runs smaller n until the failure disappears, then
// prints the minimal reproducing (seed, n, T, chunk, backend).
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "javelin/exec/run.hpp"
#include "javelin/graph/levels.hpp"
#include "javelin/sparse/csr.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/verify/mutate.hpp"
#include "javelin/verify/verify.hpp"
#include "test_util.hpp"

using namespace javelin;

namespace {

constexpr std::size_t uz(std::int64_t i) {
  return static_cast<std::size_t>(i);
}

std::uint64_t splitmix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Random lower-triangular DAG with unit diagonal, row r's dependencies
/// drawn from a stream keyed (seed, r) — prefix-stable so shrinking by n
/// reuses the same rows.
CsrMatrix gen_dag(std::uint64_t seed, index_t n) {
  std::vector<index_t> row_ptr(uz(n) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  std::vector<index_t> picks;
  for (index_t r = 0; r < n; ++r) {
    std::uint64_t st = seed ^ (0xD1B54A32D192ED03ULL *
                               static_cast<std::uint64_t>(r + 1));
    const index_t want = static_cast<index_t>(splitmix(st) % 5);
    picks.clear();
    for (index_t k = 0; k < want && r > 0; ++k) {
      picks.push_back(static_cast<index_t>(
          splitmix(st) % static_cast<std::uint64_t>(r)));
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    for (index_t d : picks) {
      cols.push_back(d);
      // Coefficients in [0.25, 1): large enough that a dropped dependency
      // shifts the result far beyond rounding noise.
      vals.push_back(0.25 + 0.75 * (static_cast<value_t>(splitmix(st) >> 11) /
                                    9007199254740992.0));
    }
    cols.push_back(r);
    vals.push_back(1.0);
    row_ptr[uz(r) + 1] = static_cast<index_t>(cols.size());
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(cols),
                   std::move(vals));
}

/// Dependency-respecting reference: rows in natural order (every dependency
/// of a lower-triangular row is a smaller row). Per-row arithmetic is the
/// same expression, in the same CSR order, as the scheduled run — the only
/// degree of freedom is WHEN a row runs, which is exactly what the schedule
/// must get right.
void eval_row(const CsrMatrix& m, std::vector<value_t>& x, index_t r) {
  value_t acc = 1.0;
  const auto cols = m.row_cols(r);
  const auto vals = m.row_vals(r);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == r) continue;
    acc += vals[k] * x[uz(cols[k])];
  }
  x[uz(r)] = acc;
}

struct Trial {
  std::uint64_t seed = 0;
  index_t n = 0;
  int threads = 0;
  index_t chunk = 0;
  ExecBackend backend = ExecBackend::kP2P;
};

/// Empty = pass; otherwise a description of what broke.
std::string run_trial(const Trial& tr) {
  const CsrMatrix m = gen_dag(tr.seed, tr.n);
  const DepsFn deps = lower_triangular_deps(m);
  const LevelSets ls = compute_level_sets_lower(m);
  const ExecSchedule s =
      build_exec_schedule(tr.backend, tr.n, ls.level_ptr, ls.rows_by_level,
                          deps, tr.threads, tr.chunk);

  const verify::VerifyReport rep = verify::verify_schedule(s, deps);
  if (!rep.ok()) {
    return "verifier flagged a correct build: " + rep.summary();
  }

  std::vector<value_t> ref(uz(tr.n));
  for (index_t r = 0; r < tr.n; ++r) eval_row(m, ref, r);

  // NaN seeding makes a mis-ordered read self-evident even when the
  // interleaving would happen to produce the right value.
  const value_t nan = std::numeric_limits<value_t>::quiet_NaN();
  std::vector<value_t> x(uz(tr.n), nan);
  {
    ThreadCountGuard guard(tr.threads);
    exec_run(s, [&](index_t r, int) { eval_row(m, x, r); });
  }
  if (!javelin::test::bitwise_equal(x, ref)) {
    return "scheduled execution diverged from the serial reference";
  }

  // Mutation soundness: a mutant the verifier CLEARS must still execute to
  // parity; a flagged mutant is never executed (it may deadlock).
  ExecSchedule mut = s;
  std::uint64_t st = tr.seed ^ 0xABCDEF12ULL;
  const auto kind = verify::kAllMutations[splitmix(st) % 6];
  const verify::MutationResult res =
      verify::apply_mutation(mut, kind, deps, splitmix(st));
  if (res.applied) {
    const verify::VerifyReport mrep = verify::verify_schedule(mut, deps);
    if (mrep.ok()) {
      std::vector<value_t> y(uz(tr.n), nan);
      ThreadCountGuard guard(tr.threads);
      exec_run(mut, [&](index_t r, int) { eval_row(m, y, r); });
      if (!javelin::test::bitwise_equal(y, ref)) {
        return std::string("verifier cleared a mutant (") +
               verify::mutation_name(kind) +
               ") that does not execute to parity";
      }
    }
  }
  return {};
}

void shrink_and_report(Trial tr, const std::string& first_failure) {
  std::printf("  shrinking failing trial (n=%d): %s\n",
              static_cast<int>(tr.n), first_failure.c_str());
  bool improved = true;
  while (improved) {
    improved = false;
    for (const index_t cand :
         {tr.n / 2, (tr.n * 3) / 4, tr.n - 1}) {
      if (cand < 2 || cand >= tr.n) continue;
      Trial smaller = tr;
      smaller.n = cand;
      if (!run_trial(smaller).empty()) {
        tr = smaller;
        improved = true;
        break;
      }
    }
  }
  const std::string msg = run_trial(tr);
  CHECK_MSG(false,
            "minimal repro: seed=0x%llx n=%d T=%d chunk=%d backend=%s: %s",
            static_cast<unsigned long long>(tr.seed),
            static_cast<int>(tr.n), tr.threads, static_cast<int>(tr.chunk),
            exec_backend_name(tr.backend), msg.c_str());
}

}  // namespace

int main() {
  constexpr int kTrials = 120;
  constexpr index_t kChunks[] = {1, 2, 3, 5, 8, 32};
  for (int trial = 0; trial < kTrials; ++trial) {
    std::uint64_t st = 0x5EED0000ULL + static_cast<std::uint64_t>(trial);
    Trial tr;
    tr.seed = splitmix(st);
    tr.n = static_cast<index_t>(16 + splitmix(st) % 285);
    tr.threads = static_cast<int>(1 + splitmix(st) % 8);
    tr.chunk = kChunks[splitmix(st) % 6];
    tr.backend =
        (splitmix(st) & 1) != 0 ? ExecBackend::kP2P : ExecBackend::kBarrier;
    const std::string failure = run_trial(tr);
    if (!failure.empty()) {
      shrink_and_report(tr, failure);
      break;  // one minimal repro is worth more than a wall of failures
    }
  }
  return javelin::test::finish("test_schedprop");
}
