// Property tests of the pluggable execution-backend layer (exec/):
//
//   * retarget(s, deps, T) is bitwise-identical — every schedule field — to
//     a fresh build at T, for T ∈ {1, 2, 4, 8}, forward and backward, and
//     the fused-SpMV companion rebuilt against a retargeted schedule equals
//     one built against a fresh schedule;
//   * a runtime team below the factor-time plan RETARGETS the solve paths
//     (the workspace cache fills for the real team) instead of degrading to
//     a serial sweep, and stays bitwise-identical to the serial reference;
//   * the barrier (CSR-LS) backend is bitwise-identical to the P2P backend
//     and to the serial reference at every thread count, for ilu_apply, the
//     fused apply+SpMV, and full Krylov trajectories;
//   * set_exec_backend flips a factor between backends in place.
#include "javelin/exec/run.hpp"
#include "javelin/gen/generators.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::bitwise_equal;
using javelin::test::random_vector;

namespace {

template <class T>
bool vec_eq(const char* what, const std::vector<T>& a, const std::vector<T>& b) {
  if (a == b) return true;
  std::printf("  schedule field %s differs (%zu vs %zu entries)\n", what,
              a.size(), b.size());
  return false;
}

bool schedules_equal(const ExecSchedule& a, const ExecSchedule& b) {
  bool ok = a.backend == b.backend && a.threads == b.threads &&
            a.n_total == b.n_total && a.chunk_rows == b.chunk_rows &&
            a.num_levels == b.num_levels && a.deps_total == b.deps_total &&
            a.deps_kept == b.deps_kept;
  if (!ok) std::printf("  schedule scalars differ\n");
  ok = vec_eq("thread_ptr", a.thread_ptr, b.thread_ptr) && ok;
  ok = vec_eq("item_ptr", a.item_ptr, b.item_ptr) && ok;
  ok = vec_eq("rows", a.rows, b.rows) && ok;
  ok = vec_eq("wait_ptr", a.wait_ptr, b.wait_ptr) && ok;
  ok = vec_eq("wait_thread", a.wait_thread, b.wait_thread) && ok;
  ok = vec_eq("wait_count", a.wait_count, b.wait_count) && ok;
  ok = vec_eq("level_ptr", a.level_ptr, b.level_ptr) && ok;
  ok = vec_eq("serial_order", a.serial_order, b.serial_order) && ok;
  return ok;
}

bool fused_equal(const FusedApplySpmv& a, const FusedApplySpmv& b) {
  bool ok = a.threads == b.threads && a.n == b.n &&
            a.chunk_rows == b.chunk_rows && a.deps_total == b.deps_total &&
            a.deps_kept == b.deps_kept;
  if (!ok) std::printf("  fused scalars differ\n");
  ok = vec_eq("fs.thread_ptr", a.thread_ptr, b.thread_ptr) && ok;
  ok = vec_eq("fs.chunk_begin", a.chunk_begin, b.chunk_begin) && ok;
  ok = vec_eq("fs.chunk_end", a.chunk_end, b.chunk_end) && ok;
  ok = vec_eq("fs.wait_ptr", a.wait_ptr, b.wait_ptr) && ok;
  ok = vec_eq("fs.wait_thread", a.wait_thread, b.wait_thread) && ok;
  ok = vec_eq("fs.wait_count", a.wait_count, b.wait_count) && ok;
  return ok;
}

/// Retargeting a factor's schedules must reproduce a fresh build at every
/// team size, for both directions and the fused companion.
void check_retarget_identity(const char* name, const CsrMatrix& a,
                             ExecBackend backend) {
  ThreadCountGuard guard(8);
  IluOptions opts;
  opts.num_threads = 8;
  opts.exec_backend = backend;
  opts.retarget_oversubscribed = false;
  Factorization f = ilu_factor(a, opts);

  const DepsFn low = lower_triangular_deps(f.lu);
  const DepsFn up = upper_triangular_deps(f.lu);
  for (int T : {1, 2, 4, 8}) {
    const ExecSchedule fresh_fwd = build_upper_forward_schedule(
        f.lu, f.plan.upper_level_ptr, backend, T, f.fwd.chunk_rows);
    const ExecSchedule fresh_bwd =
        build_backward_schedule(f.lu, backend, T, f.bwd.chunk_rows);
    CHECK_MSG(schedules_equal(retarget(f.fwd, low, T), fresh_fwd),
              "%s fwd retarget(%d)", name, T);
    CHECK_MSG(schedules_equal(retarget(f.bwd, up, T), fresh_bwd),
              "%s bwd retarget(%d)", name, T);
    CHECK_MSG(fused_equal(build_fused_apply_spmv(retarget(f.bwd, up, T),
                                                 f.plan, a),
                          build_fused_apply_spmv(fresh_bwd, f.plan, a)),
              "%s fused retarget(%d)", name, T);
  }
  // Round trip back to the planned team reproduces the factor's own.
  CHECK_MSG(schedules_equal(retarget(retarget(f.fwd, low, 3), low, 8), f.fwd),
            "%s fwd retarget round trip", name);
}

/// A runtime team below the plan must RETARGET (cache fills for the real
/// team) and stay bitwise-identical to the serial reference.
void check_runtime_retarget(const char* name, const CsrMatrix& a,
                            ExecBackend backend) {
  Factorization f = [&] {
    ThreadCountGuard guard(4);
    IluOptions opts;
    opts.num_threads = 4;
    opts.exec_backend = backend;
    opts.retarget_oversubscribed = false;  // isolate the runtime-team clamp
    return ilu_factor(a, opts);
  }();
  const auto r = random_vector(f.n(), 0xFACE);
  std::vector<value_t> z_ref(r.size());
  SolveWorkspace ws_ref;
  ilu_apply_serial(f, r, z_ref, ws_ref);

  const FusedApplySpmv fs = build_fused_apply_spmv(f, a);
  const RowPartition part = RowPartition::build(a, 1);
  std::vector<value_t> t_ref(r.size());
  spmv(a, part, z_ref, t_ref);

  for (int team : {1, 2, 3}) {
    ThreadCountGuard guard(team);
    std::vector<value_t> z(r.size());
    SolveWorkspace ws;
    ilu_apply(f, r, z, ws);
    CHECK_MSG(bitwise_equal(z, z_ref), "%s apply at runtime team %d", name,
              team);
    // The mismatch re-planned instead of walking the serial order: the
    // workspace cache targets exactly the runtime team.
    CHECK_MSG(ws.sched.threads == team, "%s cache team %d != %d", name,
              ws.sched.threads, team);
    CHECK_MSG(ws.sched.fwd.threads == team && ws.sched.bwd.threads == team,
              "%s cached schedules target %d/%d, want %d", name,
              ws.sched.fwd.threads, ws.sched.bwd.threads, team);

    // Fused pass under the shrunk team: bitwise against the references and
    // retargeted chunk structure for team > 1.
    std::vector<value_t> zf(r.size()), tf(r.size());
    SolveWorkspace wsf;
    ilu_apply_spmv(f, a, fs, r, zf, tf, wsf);
    CHECK_MSG(bitwise_equal(zf, z_ref), "%s fused z at team %d", name, team);
    CHECK_MSG(bitwise_equal(tf, t_ref), "%s fused t at team %d", name, team);
    if (team > 1) {
      CHECK_MSG(wsf.sched.fused && wsf.sched.fused->threads == team,
                "%s fused chunks retargeted to %d", name, team);
    }
  }
}

/// Default policy: a planned team that oversubscribes the hardware retargets
/// down to the core count; a matched team leaves the cache untouched.
void check_oversubscription_policy(const CsrMatrix& a) {
  ThreadCountGuard guard(4);
  IluOptions opts;
  opts.num_threads = 4;  // retarget_oversubscribed stays default (true)
  Factorization f = ilu_factor(a, opts);
  const int hw = hardware_cores();
  const int expected = hw > 0 ? std::min(4, hw) : 4;

  const auto r = random_vector(f.n(), 0xB00);
  std::vector<value_t> z(r.size()), z_ref(r.size());
  SolveWorkspace ws, ws_ref;
  ilu_apply(f, r, z, ws);
  ilu_apply_serial(f, r, z_ref, ws_ref);
  CHECK(bitwise_equal(z, z_ref));
  if (expected == 4) {
    CHECK_MSG(ws.sched.threads == 0, "matched team must not fill the cache");
  } else {
    CHECK_MSG(ws.sched.threads == expected,
              "oversubscribed plan retargets to %d, cache says %d", expected,
              ws.sched.threads);
  }
}

/// Barrier (CSR-LS) backend: bitwise-identical to P2P and to the serial
/// reference at every thread count, standalone and fused.
void check_backend_parity(const char* name, const CsrMatrix& a, int threads) {
  ThreadCountGuard guard(threads);
  IluOptions opts;
  opts.num_threads = threads;
  opts.retarget_oversubscribed = false;

  opts.exec_backend = ExecBackend::kP2P;
  FusedIluOperator p2p(a, opts);
  opts.exec_backend = ExecBackend::kBarrier;
  FusedIluOperator ls(a, opts);
  CHECK(ls.factorization().fwd.backend == ExecBackend::kBarrier);

  const auto r = random_vector(a.rows(), 0xC5A);
  const std::size_t un = static_cast<std::size_t>(a.rows());
  std::vector<value_t> z_p(un), z_b(un), z_s(un), t_p(un), t_b(un);
  p2p.apply_spmv(r, z_p, t_p);
  ls.apply_spmv(r, z_b, t_b);
  SolveWorkspace ws;
  ilu_apply_serial(p2p.factorization(), r, z_s, ws);
  CHECK_MSG(bitwise_equal(z_b, z_p), "%s z barrier vs p2p (t=%d)", name,
            threads);
  CHECK_MSG(bitwise_equal(z_b, z_s), "%s z barrier vs serial (t=%d)", name,
            threads);
  CHECK_MSG(bitwise_equal(t_b, t_p), "%s t barrier vs p2p (t=%d)", name,
            threads);

  // Full PCG trajectories must coincide exactly.
  const auto b = random_vector(a.rows(), 0x51D);
  SolverOptions sopts;
  sopts.max_iterations = 120;
  sopts.tolerance = 1e-10;
  std::vector<value_t> x_p(un, 0), x_b(un, 0);
  const SolverResult rp = pcg(a, b, x_p, p2p.fn(), sopts);
  const SolverResult rb = pcg(a, b, x_b, ls.fn(), sopts);
  CHECK_MSG(rp.iterations == rb.iterations &&
                rp.relative_residual == rb.relative_residual,
            "%s pcg it %d/%d res %.17g/%.17g", name, rp.iterations,
            rb.iterations, rp.relative_residual, rb.relative_residual);
  CHECK_MSG(bitwise_equal(x_p, x_b), "%s pcg solution p2p vs barrier (t=%d)",
            name, threads);
}

}  // namespace

int main() {
  CsrMatrix grid = gen::laplacian2d(24, 24, 5);
  CsrMatrix chain = gen::long_chain(1400, 10, 4, 3);
  CsrMatrix fem = gen::random_fem(1000, 8, 21, 0.02);

  check_retarget_identity("grid", grid, ExecBackend::kP2P);
  check_retarget_identity("grid-ls", grid, ExecBackend::kBarrier);
  check_retarget_identity("chain", chain, ExecBackend::kP2P);
  check_retarget_identity("fem", fem, ExecBackend::kP2P);

  check_runtime_retarget("grid", grid, ExecBackend::kP2P);
  check_runtime_retarget("grid-ls", grid, ExecBackend::kBarrier);
  check_runtime_retarget("chain", chain, ExecBackend::kP2P);

  check_oversubscription_policy(grid);

  for (int threads : {1, 2, 4}) {
    check_backend_parity("grid", grid, threads);
    check_backend_parity("fem", fem, threads);
  }

  // In-place backend flip: one factor, both backends, one workspace.
  {
    ThreadCountGuard guard(4);
    IluOptions opts;
    opts.num_threads = 4;
    opts.retarget_oversubscribed = false;
    Factorization f = ilu_factor(grid, opts);
    const auto r = random_vector(f.n(), 0xF11);
    std::vector<value_t> z1(r.size()), z2(r.size());
    SolveWorkspace ws;
    ilu_apply(f, r, z1, ws);
    set_exec_backend(f, ExecBackend::kBarrier);
    CHECK(f.bwd.backend == ExecBackend::kBarrier);
    ilu_apply(f, r, z2, ws);
    CHECK(bitwise_equal(z1, z2));
  }

  return javelin::test::finish("test_exec");
}
