// Property tests of the batched many-RHS path (ilu/batch.hpp,
// solver/batch.hpp): a batched solve of k right-hand sides must be bitwise
// equal to k independent scalar solves at every thread count, under both
// exec backends, fused and unfused; entry validation must throw instead of
// reading out of bounds; WorkspacePool must serve concurrent streams on one
// shared factorization; and pcg_many must reproduce scalar pcg per column.
#include <atomic>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/batch.hpp"
#include "javelin/solver/batch.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::bitwise_equal;
using javelin::test::random_vector;

namespace {

/// n×k column-major panel with deterministic pseudo-random entries.
std::vector<value_t> random_panel(index_t n, index_t k, std::uint64_t seed) {
  std::vector<value_t> panel;
  panel.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    const auto col = random_vector(n, seed + static_cast<std::uint64_t>(j));
    panel.insert(panel.end(), col.begin(), col.end());
  }
  return panel;
}

std::span<value_t> panel_col(std::vector<value_t>& p, index_t n, index_t j) {
  return std::span<value_t>(p).subspan(
      static_cast<std::size_t>(j) * static_cast<std::size_t>(n),
      static_cast<std::size_t>(n));
}

/// Batched vs k-independent-scalar parity for one matrix under one
/// (threads, backend) configuration, across panel widths that exercise the
/// 8/4/2/1 register-block tail dispatch. Returns the k = 8 panel result for
/// cross-configuration comparison.
std::vector<value_t> check_batch_parity(const char* name, const CsrMatrix& a,
                                        IluOptions opts) {
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  opts.batch_rhs = 4;  // force solve_many to split k > 4 into several panels
  const Factorization f = ilu_factor(a, opts);
  const FusedApplySpmv fs = build_fused_apply_spmv(f, a);
  const RowPartition part = RowPartition::build(a);
  SolveWorkspace ws_scalar, ws_panel;
  std::vector<value_t> k8_result;

  for (index_t k : {index_t{1}, index_t{3}, index_t{8}, index_t{17}}) {
    const std::size_t nk = un * static_cast<std::size_t>(k);
    std::vector<value_t> r = random_panel(n, k, 0xBA7C4 + static_cast<std::uint64_t>(k));

    // Scalar reference: k independent applies (and fused apply+spmv pairs).
    std::vector<value_t> z_ref(nk), t_ref(nk);
    for (index_t j = 0; j < k; ++j) {
      ilu_apply(f, panel_col(r, n, j), panel_col(z_ref, n, j), ws_scalar);
      spmv(a, part, panel_col(z_ref, n, j), panel_col(t_ref, n, j));
    }

    // Scheduled panel apply.
    std::vector<value_t> z(nk, 0);
    ilu_apply_panel(f, r, z, k, ws_panel);
    CHECK_MSG(bitwise_equal(z, z_ref), "%s panel vs scalar (T=%d k=%d)", name,
              opts.num_threads, static_cast<int>(k));

    // Serial-reference panel apply.
    std::vector<value_t> z_ser(nk, 0);
    SolveWorkspace ws_ser;
    ilu_apply_panel_serial(f, r, z_ser, k, ws_ser);
    CHECK_MSG(bitwise_equal(z_ser, z_ref), "%s serial panel (T=%d k=%d)", name,
              opts.num_threads, static_cast<int>(k));

    // solve_many splits into batch_rhs-wide panels; still bitwise.
    std::vector<value_t> z_many(nk, 0);
    solve_many(f, r, z_many, k, ws_panel);
    CHECK_MSG(bitwise_equal(z_many, z_ref), "%s solve_many (T=%d k=%d)", name,
              opts.num_threads, static_cast<int>(k));

    // Fused panel pass: z AND t must match the scalar pair columnwise.
    std::vector<value_t> z_fused(nk, 0), t_fused(nk, 0);
    ilu_apply_spmv_panel(f, a, fs, r, z_fused, t_fused, k, ws_panel);
    CHECK_MSG(bitwise_equal(z_fused, z_ref), "%s fused z (T=%d k=%d)", name,
              opts.num_threads, static_cast<int>(k));
    CHECK_MSG(bitwise_equal(t_fused, t_ref), "%s fused t (T=%d k=%d)", name,
              opts.num_threads, static_cast<int>(k));

    // Workspace reuse at a different width must not perturb results.
    std::vector<value_t> z2(nk, 0);
    ilu_apply_panel(f, r, z2, k, ws_panel);
    CHECK(bitwise_equal(z2, z_ref));

    if (k == 8) k8_result = std::move(z);
  }
  return k8_result;
}

void check_validation(const CsrMatrix& a) {
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const Factorization f = ilu_factor(a, {});
  SolveWorkspace ws;
  std::vector<value_t> r(un * 4), z(un * 4);

  const auto throws = [](auto&& fn) {
    try {
      fn();
    } catch (const Error&) {
      return true;
    }
    return false;
  };
  CHECK(throws([&] { ilu_apply_panel(f, r, z, 0, ws); }));
  CHECK(throws([&] { ilu_apply_panel(f, r, z, -3, ws); }));
  CHECK(throws([&] { ilu_apply_panel(f, std::span<const value_t>(r).first(un * 2), z, 4, ws); }));
  CHECK(throws([&] { ilu_apply_panel(f, r, std::span<value_t>(z).first(un * 3), 4, ws); }));
  CHECK(throws([&] { solve_many(f, r, z, 0, ws); }));
  CHECK(throws([&] { solve_many(f, std::span<const value_t>(r).first(un), z, 4, ws); }));
  const FusedApplySpmv fs = build_fused_apply_spmv(f, a);
  std::vector<value_t> t(un * 4);
  CHECK(throws([&] {
    ilu_apply_spmv_panel(f, a, fs, r, z, std::span<value_t>(t).first(un * 2), 4, ws);
  }));
  CHECK(throws([&] {
    std::vector<value_t> b(un * 2), x(un * 2);
    pcg_many(a, b, x, 4, identity_panel_preconditioner());
  }));
  CHECK(throws([&] {
    std::vector<value_t> b(un), x(un);
    pcg_many(a, b, x, 0, identity_panel_preconditioner());
  }));
}

void check_pcg_many(const char* name, const CsrMatrix& a, IluOptions opts) {
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const index_t k = 5;
  const Factorization f = ilu_factor(a, opts);
  SolverOptions sopts;
  sopts.max_iterations = 300;
  sopts.tolerance = 1e-10;

  std::vector<value_t> b = random_panel(n, k, 0x5EED);
  // Column 2 scaled up (retires at a different iteration), column 4 zero
  // (exercises the bnorm == 0 immediate-converge path).
  for (std::size_t i = 0; i < un; ++i) b[2 * un + i] *= 1e3;
  for (std::size_t i = 0; i < un; ++i) b[4 * un + i] = 0;

  // Scalar reference trajectories on the SAME factorization.
  SolveWorkspace ws_scalar;
  const PrecondFn scalar_m = [&](std::span<const value_t> r,
                                 std::span<value_t> z) {
    ilu_apply(f, r, z, ws_scalar);
  };
  std::vector<value_t> x_ref(un * static_cast<std::size_t>(k), 0);
  std::vector<SolverResult> res_ref;
  for (index_t j = 0; j < k; ++j) {
    res_ref.push_back(
        pcg(a, panel_col(b, n, j), panel_col(x_ref, n, j), scalar_m, sopts));
  }

  WorkspacePool pool;
  std::vector<value_t> x(un * static_cast<std::size_t>(k), 0);
  const std::vector<SolverResult> res =
      pcg_many(a, b, x, k, ilu_panel_preconditioner(f, pool), sopts);

  CHECK(res.size() == static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    const SolverResult& rj = res[static_cast<std::size_t>(j)];
    const SolverResult& sj = res_ref[static_cast<std::size_t>(j)];
    CHECK_MSG(rj.iterations == sj.iterations && rj.converged == sj.converged,
              "%s col %d: many it=%d conv=%d vs scalar it=%d conv=%d", name,
              static_cast<int>(j), rj.iterations, rj.converged, sj.iterations,
              sj.converged);
    CHECK_MSG(rj.relative_residual == sj.relative_residual,
              "%s col %d residual %.17g vs %.17g", name, static_cast<int>(j),
              rj.relative_residual, sj.relative_residual);
  }
  CHECK_MSG(bitwise_equal(x, x_ref), "%s pcg_many solutions (T=%d)", name,
            opts.num_threads);
  CHECK_MSG(res[0].converged && res[2].converged,
            "%s pcg_many converged (res0=%.3g res2=%.3g)", name,
            res[0].relative_residual, res[2].relative_residual);
}

void check_workspace_pool(const CsrMatrix& a) {
  const index_t n = a.rows();
  const std::size_t un = static_cast<std::size_t>(n);
  const Factorization f = ilu_factor(a, {});
  WorkspacePool pool;

  // Leases are exclusive and return their workspace on release.
  {
    auto l1 = pool.acquire();
    auto l2 = pool.acquire();
    CHECK(&*l1 != &*l2);
    CHECK(pool.idle() == 0);
  }
  CHECK(pool.idle() == 2);
  {
    auto l3 = pool.acquire();  // recycles, no new allocation needed
    CHECK(pool.idle() == 1);
  }
  CHECK(pool.idle() == 2);

  // Concurrent serving streams on ONE factorization: every stream leases its
  // own workspace, solves a private panel, and must reproduce the reference
  // bitwise — interleaving cannot leak state across streams.
  const index_t k = 6;
  const std::size_t nk = un * static_cast<std::size_t>(k);
  std::vector<value_t> r = random_panel(n, k, 0xC0FFEE);
  std::vector<value_t> z_ref(nk, 0);
  solve_many(f, r, z_ref, k);

  const int streams = 4;
  std::atomic<int> mismatches{0};
#pragma omp parallel num_threads(streams)
  {
#pragma omp for schedule(static)
    for (int s = 0; s < streams * 4; ++s) {
      std::vector<value_t> z(nk, 0);
      solve_many(f, r, z, k, pool);
      if (!bitwise_equal(z, z_ref)) mismatches.fetch_add(1);
    }
  }
  CHECK_MSG(mismatches.load() == 0, "%d stream(s) diverged", mismatches.load());
  CHECK(pool.idle() >= 1);  // the streams' workspaces were returned
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(24, 24, 5);
  CsrMatrix fem = gen::random_fem(800, 8, 21, 0.02);
  CsrMatrix chain = gen::long_chain(1200, 10, 4, 3);
  CsrMatrix cube = gen::laplacian3d(10, 10, 10, 7);
  CsrMatrix aniso = gen::anisotropic3d(10, 10, 10, 0.1, 0.01);
  CsrMatrix jump = gen::jump3d(10, 10, 10, 3, 1e3, 77);
  gen::make_diagonally_dominant(fem);
  gen::make_diagonally_dominant(chain);

  struct Entry {
    const char* name;
    const CsrMatrix* a;
  };
  const Entry entries[] = {{"grid", &grid}, {"fem", &fem},    {"chain", &chain},
                           {"cube", &cube}, {"aniso", &aniso}, {"jump", &jump}};

  // Batched parity across thread counts and both backends; panel results
  // must also be bitwise-identical ACROSS configurations.
  for (const Entry& e : entries) {
    std::vector<value_t> ref;
    for (ExecBackend backend : {ExecBackend::kP2P, ExecBackend::kBarrier}) {
      for (int threads : {1, 2, 4, 8}) {
        IluOptions opts;
        opts.num_threads = threads;
        opts.exec_backend = backend;
        opts.retarget_oversubscribed = false;  // planned-width schedules
        std::vector<value_t> z = check_batch_parity(e.name, *e.a, opts);
        if (ref.empty()) {
          ref = std::move(z);
        } else {
          CHECK_MSG(bitwise_equal(z, ref),
                    "%s panel across configs (backend=%d T=%d)", e.name,
                    static_cast<int>(backend), threads);
        }
      }
    }
  }

  check_validation(grid);

  for (int threads : {1, 4}) {
    IluOptions opts;
    opts.num_threads = threads;
    opts.retarget_oversubscribed = false;
    check_pcg_many("grid", grid, opts);
    check_pcg_many("jump", jump, opts);
  }

  check_workspace_pool(grid);

  return javelin::test::finish("test_batch");
}
