// Property tests of the fused solve+SpMV path: ilu_apply_spmv must be
// bitwise-identical to the unfused reference (ilu_apply followed by a
// partitioned spmv) at every thread count, and the restructured Krylov
// drivers must produce bitwise-identical trajectories whether they consume
// the fused or the unfused operator — the ISSUE-4 acceptance contract.
#include "javelin/gen/generators.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::bitwise_equal;
using javelin::test::random_vector;

namespace {

/// Fused vs unfused operator outputs for one matrix at one thread count;
/// returns the fused (z, t) pair for cross-thread-count comparison.
std::pair<std::vector<value_t>, std::vector<value_t>> check_operator_parity(
    const char* name, const CsrMatrix& a, IluOptions opts) {
  FusedIluOperator fused(a, opts);
  const auto r = random_vector(a.rows(), 0xF00D);
  const std::size_t un = static_cast<std::size_t>(a.rows());

  std::vector<value_t> z_f(un), t_f(un), z_u(un), t_u(un);
  fused.apply_spmv(r, z_f, t_f);

  // Unfused reference: the same factorization applied as two kernel calls.
  const RowPartition part = RowPartition::build(a);
  fused.apply(r, z_u);
  spmv(a, part, z_u, t_u);

  CHECK_MSG(bitwise_equal(z_f, z_u), "%s z fused vs unfused (threads=%d)",
            name, opts.num_threads);
  CHECK_MSG(bitwise_equal(t_f, t_u), "%s t fused vs unfused (threads=%d)",
            name, opts.num_threads);

  // Workspace reuse must not perturb results.
  std::vector<value_t> z2(un), t2(un);
  fused.apply_spmv(r, z2, t2);
  CHECK(bitwise_equal(z2, z_f));
  CHECK(bitwise_equal(t2, t_f));
  return {std::move(z_f), std::move(t_f)};
}

void check_solver_parity(const char* name, const CsrMatrix& a, bool spd,
                         IluOptions opts, std::vector<value_t>* x_across) {
  const auto b = random_vector(a.rows(), 0x5EED);
  const std::size_t un = static_cast<std::size_t>(a.rows());
  SolverOptions sopts;
  sopts.max_iterations = 200;
  sopts.tolerance = 1e-10;

  FusedIluOperator fused(a, opts);
  const KrylovOperator unfused = unfused_operator(a, fused.fn());

  std::vector<value_t> x_f(un, 0), x_u(un, 0);
  const SolverResult rf = spd ? pcg_fused(a, b, x_f, fused.op(), sopts)
                              : gmres_fused(a, b, x_f, fused.op(), sopts);
  const SolverResult ru = spd ? pcg_fused(a, b, x_u, unfused, sopts)
                              : gmres_fused(a, b, x_u, unfused, sopts);
  CHECK_MSG(rf.iterations == ru.iterations && rf.converged == ru.converged,
            "%s fused it=%d conv=%d vs unfused it=%d conv=%d", name,
            rf.iterations, rf.converged, ru.iterations, ru.converged);
  CHECK_MSG(rf.relative_residual == ru.relative_residual,
            "%s residual fused %.17g vs unfused %.17g", name,
            rf.relative_residual, ru.relative_residual);
  CHECK_MSG(bitwise_equal(x_f, x_u), "%s solution fused vs unfused threads=%d",
            name, opts.num_threads);
  CHECK_MSG(rf.converged, "%s fused solve rel res %.3g after %d iters", name,
            rf.relative_residual, rf.iterations);

  // Across thread counts the trajectory must also be bitwise-identical
  // (deterministic blocked dot + thread-invariant apply/spmv kernels).
  if (x_across->empty()) {
    *x_across = x_f;
  } else {
    CHECK_MSG(bitwise_equal(x_f, *x_across),
              "%s solution across thread counts (threads=%d)", name,
              opts.num_threads);
  }
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(24, 24, 5);
  CsrMatrix fem = gen::random_fem(1000, 8, 21, 0.02);
  CsrMatrix power = gen::power_system(900, 18, 50, 13);
  CsrMatrix chain = gen::long_chain(1400, 10, 4, 3);

  // Operator-level parity, plus cross-thread-count bitwise identity.
  struct Entry {
    const char* name;
    const CsrMatrix* a;
  };
  for (const Entry& e : {Entry{"grid", &grid}, Entry{"fem", &fem},
                         Entry{"power", &power}, Entry{"chain", &chain}}) {
    std::vector<value_t> z_ref, t_ref;
    for (int threads : {1, 2, 4}) {
      IluOptions opts;
      opts.num_threads = threads;
      opts.retarget_oversubscribed = false;  // force planned-width schedules
      auto [z, t] = check_operator_parity(e.name, *e.a, opts);
      if (z_ref.empty()) {
        z_ref = std::move(z);
        t_ref = std::move(t);
      } else {
        CHECK_MSG(bitwise_equal(z, z_ref), "%s z across thread counts (t=%d)",
                  e.name, threads);
        CHECK_MSG(bitwise_equal(t, t_ref), "%s t across thread counts (t=%d)",
                  e.name, threads);
      }
    }
  }

  // SR lower stage exercises the corner/tail paths of the fused forward.
  {
    IluOptions opts;
    opts.num_threads = 4;
    opts.retarget_oversubscribed = false;
    opts.lower_method = LowerMethod::kSegmentedRows;
    check_operator_parity("chain-sr", chain, opts);
    opts.fill_level = 1;
    opts.lower_method = LowerMethod::kAuto;
    check_operator_parity("grid-f1", grid, opts);
  }

  // Full solver trajectories: fused vs unfused and across thread counts.
  {
    std::vector<value_t> x_pcg, x_gmres;
    for (int threads : {1, 2, 4}) {
      IluOptions opts;
      opts.num_threads = threads;
      opts.retarget_oversubscribed = false;  // force planned-width schedules
      check_solver_parity("pcg-grid", grid, /*spd=*/true, opts, &x_pcg);
      check_solver_parity("gmres-power", power, /*spd=*/false, opts, &x_gmres);
    }
  }

  // Force the SCHEDULED fused path (oversubscription retarget off) so the
  // combined backward+SpMV region and its sparsified waits are exercised
  // even on machines where the team oversubscribes the hardware and the
  // autotune policy would re-plan down to the core count.
  for (const Entry& e : {Entry{"grid", &grid}, Entry{"fem", &fem},
                         Entry{"power", &power}, Entry{"chain", &chain}}) {
    for (int threads : {2, 4}) {
      IluOptions opts;
      opts.num_threads = threads;
      opts.retarget_oversubscribed = false;  // force planned-width schedules
      Factorization f = ilu_factor(*e.a, opts);
      FusedApplySpmv fs = build_fused_apply_spmv(f, *e.a);
      const auto r = random_vector(e.a->rows(), 0xF00D);
      const std::size_t un = static_cast<std::size_t>(e.a->rows());
      std::vector<value_t> z_f(un), t_f(un), z_u(un), t_u(un);
      SolveWorkspace ws_f, ws_u;
      ilu_apply_spmv(f, *e.a, fs, r, z_f, t_f, ws_f);
      ilu_apply(f, r, z_u, ws_u);
      spmv(*e.a, RowPartition::build(*e.a), z_u, t_u);
      CHECK_MSG(bitwise_equal(z_f, z_u), "%s scheduled z (threads=%d)",
                e.name, threads);
      CHECK_MSG(bitwise_equal(t_f, t_u), "%s scheduled t (threads=%d)",
                e.name, threads);
    }
  }

  // A non-default schedule chunk must not change any value, only the
  // synchronization granularity.
  {
    IluOptions opts;
    opts.num_threads = 4;
    opts.retarget_oversubscribed = false;
    opts.p2p_chunk_rows = 1;
    auto [z1, t1] = check_operator_parity("grid-chunk1", grid, opts);
    opts.p2p_chunk_rows = 64;
    auto [z64, t64] = check_operator_parity("grid-chunk64", grid, opts);
    CHECK(bitwise_equal(z1, z64));
    CHECK(bitwise_equal(t1, t64));
  }

  return javelin::test::finish("test_fused");
}
