// Tests of the factor-time autotuner (tune/) and hybrid per-level-regime
// execution:
//
//   * deterministic-policy mode: with the injected cost model the tuning
//     decision is a pure function of the schedule shape — the same factor
//     always picks the same candidate, re-tuning is idempotent, and the
//     chosen policy never beats-by-losing (chosen <= serial by argmin);
//   * every policy the tuner can pin is bitwise-neutral: the tuned factor's
//     plain, fused and panel applies stay bitwise equal to the serial
//     reference;
//   * hybrid schedules (forced regime mixes) are bitwise-identical to
//     serial across backends and T in {1, 2, 4, 8} on the plain, fused and
//     panel paths;
//   * set_exec_backend after a hybrid pin returns to a race-free uniform
//     schedule (the pruned waits are rebuilt);
//   * TuneReport::export_metrics emits the decision counters.
#include <string>
#include <vector>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/batch.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "javelin/tune/tune.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::bitwise_equal;
using javelin::test::random_vector;

namespace {

std::vector<value_t> serial_apply(const Factorization& f,
                                  std::span<const value_t> r) {
  std::vector<value_t> z(r.size());
  SolveWorkspace ws;
  ilu_apply_serial(f, r, z, ws);
  return z;
}

/// Plain/fused/panel applies of `f` (whatever policy it carries) vs the
/// serial reference — the bitwise-neutrality bar every pinned policy meets.
void check_policy_parity(const char* name, const char* what,
                         const Factorization& f, const CsrMatrix& a) {
  const index_t n = f.n();
  const std::size_t un = static_cast<std::size_t>(n);
  const auto r = random_vector(n, 0xAB12);
  const auto z_ref = serial_apply(f, r);

  SolveWorkspace ws;
  std::vector<value_t> z(un);
  ilu_apply(f, r, z, ws);
  CHECK_MSG(bitwise_equal(z, z_ref), "%s %s plain apply", name, what);

  const FusedApplySpmv fs = build_fused_apply_spmv(f, a);
  std::vector<value_t> z_f(un), t_f(un), t_u(un);
  ilu_apply_spmv(f, a, fs, r, z_f, t_f, ws);
  CHECK_MSG(bitwise_equal(z_f, z_ref), "%s %s fused z", name, what);
  const RowPartition part = RowPartition::build(a);
  spmv(a, part, z_ref, t_u);
  CHECK_MSG(bitwise_equal(t_f, t_u), "%s %s fused t", name, what);

  const index_t k = 3;
  std::vector<value_t> rp(un * static_cast<std::size_t>(k));
  std::vector<value_t> zp(un * static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    const auto col = random_vector(n, 0xAB12 + static_cast<std::uint64_t>(j));
    std::copy(col.begin(), col.end(),
              rp.begin() + static_cast<std::size_t>(j) * un);
  }
  ilu_apply_panel(f, rp, zp, k, ws);
  for (index_t j = 0; j < k; ++j) {
    const std::span<const value_t> rj(rp.data() + static_cast<std::size_t>(j) * un, un);
    const std::span<const value_t> zj(zp.data() + static_cast<std::size_t>(j) * un, un);
    const auto ref = serial_apply(f, rj);
    CHECK_MSG(bitwise_equal(zj, ref), "%s %s panel col %d", name, what,
              static_cast<int>(j));
  }
}

/// Force a hybrid regime mix on `f` (serial below the team width, barrier
/// below 4x) and reset the derived caches.
bool force_hybrid(Factorization& f, int threads) {
  const auto tf = tune::derive_hybrid_tags(
      f.fwd, static_cast<index_t>(threads), static_cast<index_t>(4 * threads));
  const auto tb = tune::derive_hybrid_tags(
      f.bwd, static_cast<index_t>(threads), static_cast<index_t>(4 * threads));
  apply_level_tags(f.fwd, tf);
  apply_level_tags(f.bwd, tb);
  f.numeric_cache = ScheduleCache{};
  return f.fwd.hybrid() || f.bwd.hybrid();
}

/// Hybrid schedules stay bitwise-identical to serial across teams on every
/// apply path.
void check_hybrid_parity(const char* name, const CsrMatrix& a) {
  bool any_hybrid = false;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    IluOptions opts;
    opts.num_threads = threads;
    opts.retarget_oversubscribed = false;
    Factorization f = ilu_factor(a, opts);
    any_hybrid = force_hybrid(f, threads) || any_hybrid;
    check_policy_parity(name, "hybrid", f, a);

    // Pinning a uniform backend afterwards must rebuild the pruned waits
    // (a racy schedule here would show up as a parity break or a hang).
    set_exec_backend(f, ExecBackend::kBarrier);
    CHECK_MSG(!f.fwd.hybrid() && !f.bwd.hybrid(),
              "%s t=%d tags survive set_exec_backend", name, threads);
    check_policy_parity(name, "post-hybrid barrier", f, a);
  }
  CHECK_MSG(any_hybrid, "%s never produced a hybrid schedule", name);
}

void check_deterministic_tuner(const char* name, const CsrMatrix& a) {
  ThreadCountGuard guard(4);
  IluOptions opts;
  opts.num_threads = 4;
  opts.retarget_oversubscribed = false;
  Factorization f = ilu_factor(a, opts);

  tune::TuneOptions topt;
  topt.cost_model = tune::deterministic_cost_model();
  topt.max_threads = 8;
  topt.chunk_candidates = {16, 64};
  const tune::TuneReport rep1 = tune::autotune(f, topt);
  CHECK(rep1.applied);
  CHECK(!rep1.measured.empty());
  CHECK_MSG(rep1.measured.front().cand.threads == 1,
            "%s grid does not lead with serial", name);
  CHECK_MSG(rep1.chosen_seconds <= rep1.serial_seconds,
            "%s chosen %.3g worse than serial %.3g", name, rep1.chosen_seconds,
            rep1.serial_seconds);

  // Pure function of the schedule shape: a fresh identical factor picks the
  // same candidate...
  Factorization f2 = ilu_factor(a, opts);
  const tune::TuneReport rep2 = tune::autotune(f2, topt);
  CHECK_MSG(rep1.chosen.name() == rep2.chosen.name(), "%s chose %s then %s",
            name, rep1.chosen.name().c_str(), rep2.chosen.name().c_str());
  // ...and re-tuning the already-tuned factor is idempotent.
  const tune::TuneReport rep3 = tune::autotune(f, topt);
  CHECK_MSG(rep3.chosen.name() == rep1.chosen.name(), "%s re-tune %s vs %s",
            name, rep3.chosen.name().c_str(), rep1.chosen.name().c_str());

  // The pinned winner changes nothing numerically.
  check_policy_parity(name, "tuned", f, a);

  // Decision counters for the bench's metrics block.
  obs::MetricsRegistry reg;
  rep1.export_metrics(reg);
  CHECK(reg.counters().at("tune.candidates") == rep1.measured.size());
  CHECK(reg.counters().at("tune.chosen_threads") ==
        static_cast<std::uint64_t>(rep1.chosen.threads));
  CHECK(reg.counters().count("tune.chosen_ns") == 1);
  CHECK(reg.counters().count("tune.serial_ns") == 1);
}

/// A rigged cost model must be obeyed verbatim — this is how tests and
/// bench --verify pin an exact policy.
void check_forced_winner(const char* name, const CsrMatrix& a) {
  ThreadCountGuard guard(4);
  IluOptions opts;
  opts.num_threads = 4;
  opts.retarget_oversubscribed = false;
  Factorization f = ilu_factor(a, opts);

  tune::TuneOptions topt;
  topt.cost_model = [](const tune::TuneContext&,
                       const tune::TuneCandidate& c) {
    return (c.hybrid && c.threads == 4) ? 1.0 : 100.0;
  };
  const tune::TuneReport rep = tune::autotune(f, topt);
  CHECK_MSG(rep.chosen.name() == "hybrid/t4", "%s chose %s", name,
            rep.chosen.name().c_str());
  CHECK(f.opts.tuned_threads == 4);
  CHECK_MSG(rep.hybrid_applied, "%s hybrid tags did not survive", name);
  check_policy_parity(name, "forced-hybrid", f, a);
}

/// Wall-clock mode smoke: times real sweeps, applies the argmin, results
/// unchanged. (Timings are noise on a loaded runner; only the invariants
/// are asserted.)
void check_wallclock_smoke(const char* name, const CsrMatrix& a) {
  ThreadCountGuard guard(2);
  IluOptions opts;
  opts.num_threads = 2;
  opts.retarget_oversubscribed = false;
  Factorization f = ilu_factor(a, opts);

  tune::TuneOptions topt;
  topt.reps = 1;
  const tune::TuneReport rep = tune::autotune(f, topt);
  CHECK(rep.applied);
  CHECK(rep.serial_seconds > 0.0);
  CHECK(rep.chosen_seconds <= rep.serial_seconds);
  check_policy_parity(name, "wallclock-tuned", f, a);
}

}  // namespace

int main() {
  const CsrMatrix grid = gen::laplacian2d(20, 20, 5);
  const CsrMatrix chain = gen::long_chain(1200, 10, 4, 3);
  const CsrMatrix power = gen::power_system(600, 15, 40, 13);

  check_hybrid_parity("grid", grid);
  check_hybrid_parity("chain", chain);
  check_hybrid_parity("power", power);

  check_deterministic_tuner("grid", grid);
  check_deterministic_tuner("chain", chain);

  check_forced_winner("chain", chain);
  check_wallclock_smoke("grid", grid);

  return javelin::test::finish("test_tune");
}
