// SpMV variants against the serial reference, and the nnz-balanced
// RowPartition invariants.
#include <sstream>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/io.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/sparse/spmv.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::random_vector;

namespace {

void check_partition(const CsrMatrix& a, int parts) {
  const RowPartition p = RowPartition::build(a, parts);
  CHECK(p.parts() == parts);
  CHECK(p.bounds.front() == 0);
  CHECK(p.bounds.back() == a.rows());
  for (int t = 0; t < parts; ++t) {
    CHECK(p.bounds[static_cast<std::size_t>(t)] <=
          p.bounds[static_cast<std::size_t>(t) + 1]);
  }
  // Each chunk's nonzero load is within one max-row of the ideal share
  // (row-aligned splitting cannot do better than row granularity).
  index_t max_row_nnz = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    max_row_nnz = std::max(max_row_nnz, a.row_nnz(r));
  }
  const double ideal =
      static_cast<double>(a.nnz()) / static_cast<double>(parts);
  for (int t = 0; t < parts; ++t) {
    const index_t lo = p.bounds[static_cast<std::size_t>(t)];
    const index_t hi = p.bounds[static_cast<std::size_t>(t) + 1];
    const index_t load = a.row_ptr()[static_cast<std::size_t>(hi)] -
                         a.row_ptr()[static_cast<std::size_t>(lo)];
    CHECK_MSG(static_cast<double>(load) <=
                  ideal + static_cast<double>(max_row_nnz),
              "part %d load %d ideal %.1f max_row %d", t, load, ideal,
              max_row_nnz);
  }
}

void check_spmv_variants(const CsrMatrix& a, std::uint64_t seed) {
  const auto x = random_vector(a.cols(), seed);
  std::vector<value_t> y_ref(static_cast<std::size_t>(a.rows()));
  spmv_serial(a, x, y_ref);

  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), -1);
  spmv(a, x, y);
  // Row sums accumulate in the same CSR order regardless of which thread
  // owns the row, so the parallel kernels are bitwise-identical.
  CHECK(javelin::test::bitwise_equal(y, y_ref));

  for (int parts : {1, 2, 3, 7}) {
    const RowPartition p = RowPartition::build(a, parts);
    std::fill(y.begin(), y.end(), -1);
    spmv(a, p, x, y);
    CHECK(javelin::test::bitwise_equal(y, y_ref));
  }

  // axpby: y = 2*A x - y0.
  auto y0 = random_vector(a.rows(), seed ^ 0xABCD);
  std::vector<value_t> want(y0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = 2.0 * y_ref[i] - y0[i];
  }
  std::vector<value_t> got(y0);
  spmv_axpby(a, 2.0, x, -1.0, got);
  CHECK(javelin::test::bitwise_equal(got, want));
  got = y0;
  spmv_axpby(a, RowPartition::build(a, 5), 2.0, x, -1.0, got);
  CHECK(javelin::test::bitwise_equal(got, want));

  // Segmented spmv stitches rows with atomics: compare with tolerance.
  const SegmentedTiles tiles = SegmentedTiles::build(a, 128);
  std::fill(y.begin(), y.end(), -1);
  spmv_segmented(a, tiles, x, y);
  CHECK_MSG(javelin::test::max_abs_diff(y, y_ref) < 1e-12,
            "segmented diff %.3g", javelin::test::max_abs_diff(y, y_ref));
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  CsrMatrix grid = gen::laplacian2d(23, 19, 5);
  CsrMatrix circ = gen::circuit(1100, 6.0, 42, /*symmetric_pattern=*/false, 8);
  CsrMatrix power = gen::power_system(900, 20, 60, 7);

  for (const CsrMatrix* a : {&grid, &circ, &power}) {
    check_spmv_variants(*a, 123);
    for (int parts : {1, 2, 4, 9}) check_partition(*a, parts);
  }

  // Degenerate shapes.
  check_partition(CsrMatrix::zeros(10, 10), 4);
  check_partition(CsrMatrix::identity(1), 3);

  // --- Matrix-Market reader: well-formed round trip -----------------------
  {
    std::stringstream ss;
    write_matrix_market(ss, grid);
    const CsrMatrix back = read_matrix_market(ss);
    CHECK(back.rows() == grid.rows() && back.nnz() == grid.nnz());
    CHECK(max_abs_difference(back, grid) == 0);
  }

  // --- Matrix-Market reader: out-of-range indices must throw --------------
  // (regression: entries used to pass through with only an integer-width
  // check, producing out-of-bounds COO entries and downstream OOB access)
  {
    const auto expect_throw = [&](const char* body, const char* what) {
      std::istringstream in(body);
      bool threw = false;
      try {
        read_matrix_market(in);
      } catch (const Error&) {
        threw = true;
      }
      CHECK_MSG(threw, "reader accepted %s", what);
    };
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n5 2 2.0\n",
        "row index above declared rows");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n2 7 1.0\n",
        "col index above declared cols");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 2 1.0\n",
        "zero (not 1-based) row index");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n2 -1 1.0\n",
        "negative col index");
    expect_throw(
        "%%MatrixMarket matrix coordinate real symmetric\n3 3 1\n4 1 1.0\n",
        "out-of-range row in a symmetric file");

    // Non-finite and overflowing VALUES must be rejected at the door too
    // (regression: NaN/Inf used to pass through and poison the factor; the
    // solvers guard, but the matrix itself must never be built).
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n2 2 nan\n",
        "NaN value");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 inf\n",
        "Inf value");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 -inf\n",
        "-Inf value");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 1e999999\n",
        "value overflowing double");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 abc\n",
        "malformed value token");
    expect_throw(
        "%%MatrixMarket matrix coordinate real general\n3 3 1\n99999999999999999999999999 1 1.0\n",
        "row index overflowing int64");

    // The thrown message carries the 1-based ENTRY NUMBER so a bad line in a
    // million-entry file is findable.
    {
      std::istringstream in(
          "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n2 2 nan\n");
      std::string what;
      try {
        read_matrix_market(in);
      } catch (const Error& e) {
        what = e.what();
      }
      CHECK_MSG(what.find("entry 2") != std::string::npos,
                "entry number missing from '%s'", what.c_str());
    }
  }

  return javelin::test::finish("test_sparse");
}
