// Property tests of the observability layer (obs/):
//
//   * the instrumented template instantiations are BITWISE inert: factor,
//     ilu_apply and the fused apply+SpMV with an ExecObs attached reproduce
//     the uninstrumented and serial results exactly, at T ∈ {1, 2, 4, 8}
//     under both backends;
//   * trace sessions record well-formed streams: balanced B/E pairs with
//     per-thread monotone timestamps, and the Chrome JSON export parses as
//     one traceEvents object;
//   * the spin-wait counters obey their accounting identities
//     (waits == waits_immediate + waits_stalled, spins >= waits_stalled,
//     per-thread slots sum to the region total) and their deterministic
//     components (wait calls per sweep == deps_kept; barrier crossings ==
//     sweeps × levels × threads) are exact;
//   * MetricsRegistry merges are order-invariant and the schedule-shape
//     metrics (rows_per_level) are identical across thread counts.
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "javelin/gen/generators.hpp"
#include "javelin/ilu/fused.hpp"
#include "javelin/ilu/solve.hpp"
#include "javelin/obs/exec_obs.hpp"
#include "javelin/obs/metrics.hpp"
#include "javelin/obs/trace.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::bitwise_equal;
using javelin::test::random_vector;

namespace {

CsrMatrix test_matrix() { return gen::laplacian3d(12, 12, 12, 7); }

IluOptions base_opts(ExecBackend be, int t) {
  IluOptions opts;
  opts.num_threads = t;
  opts.exec_backend = be;
  opts.retarget_oversubscribed = false;
  return opts;
}

// --- (a) instrumentation is bitwise inert --------------------------------

void check_parity(const CsrMatrix& a, ExecBackend be, int t) {
  ThreadCountGuard guard(t);
  const char* bname = be == ExecBackend::kP2P ? "p2p" : "barrier";

  const Factorization f_plain = ilu_factor(a, base_opts(be, t));

  obs::ExecObs eo;
  IluOptions iopts = base_opts(be, t);
  iopts.exec_obs = &eo;
  const Factorization f_obs = ilu_factor(a, iopts);
  CHECK_MSG(bitwise_equal(f_plain.lu.values(), f_obs.lu.values()),
            "%s t=%d instrumented factor", bname, t);
  CHECK_MSG(eo.has(obs::Region::kFactor), "%s t=%d factor stats", bname, t);

  const auto r = random_vector(a.rows(), 0xFACE);
  std::vector<value_t> z_plain(r.size()), z_obs(r.size()), z_ser(r.size());
  SolveWorkspace ws_plain, ws_obs, ws_ser;
  ilu_apply(f_plain, r, z_plain, ws_plain);
  ilu_apply(f_obs, r, z_obs, ws_obs);
  ilu_apply_serial(f_plain, r, z_ser, ws_ser);
  CHECK_MSG(bitwise_equal(z_obs, z_plain), "%s t=%d apply obs vs plain",
            bname, t);
  CHECK_MSG(bitwise_equal(z_obs, z_ser), "%s t=%d apply obs vs serial",
            bname, t);
  CHECK_MSG(eo.has(obs::Region::kForward) && eo.has(obs::Region::kBackward),
            "%s t=%d sweep stats", bname, t);

  // Fused apply+SpMV: the hand-rolled region has its own instrumented body.
  const FusedApplySpmv fs_plain = build_fused_apply_spmv(f_plain, a);
  const FusedApplySpmv fs_obs = build_fused_apply_spmv(f_obs, a);
  std::vector<value_t> t_plain(r.size()), t_obs(r.size());
  ilu_apply_spmv(f_plain, a, fs_plain, r, z_plain, t_plain, ws_plain);
  ilu_apply_spmv(f_obs, a, fs_obs, r, z_obs, t_obs, ws_obs);
  CHECK_MSG(bitwise_equal(z_obs, z_plain), "%s t=%d fused z", bname, t);
  CHECK_MSG(bitwise_equal(t_obs, t_plain), "%s t=%d fused t", bname, t);
  CHECK_MSG(t <= 1 || eo.has(obs::Region::kFused), "%s t=%d fused stats",
            bname, t);
}

// --- (b) trace streams are well-formed -----------------------------------

void check_trace_stream() {
  obs::TraceSession& ts = obs::TraceSession::instance();
  ts.clear();
  ts.enable();
  {
    const CsrMatrix a = test_matrix();
    ThreadCountGuard guard(4);
    obs::ExecObs eo;
    IluOptions iopts = base_opts(ExecBackend::kP2P, 4);
    iopts.exec_obs = &eo;
    Factorization f = ilu_factor(a, iopts);
    const auto r = random_vector(a.rows(), 0xCAFE);
    std::vector<value_t> z(r.size());
    SolveWorkspace ws;
    ilu_apply(f, r, z, ws);
    // A short Krylov run for the per-iteration spans.
    SolverOptions so;
    so.max_iterations = 3;
    so.tolerance = 0;
    std::vector<value_t> x(r.size(), 0);
    pcg(
        a, r, x,
        [&](std::span<const value_t> rr, std::span<value_t> zz) {
          ilu_apply(f, rr, zz, ws);
        },
        so);
  }
  ts.disable();

  CHECK_MSG(ts.event_count() > 0, "no trace events recorded");
  bool saw_level_span = false, saw_iter_span = false;
  for (const auto& [tid, events] : ts.snapshot()) {
    std::vector<const char*> stack;
    std::int64_t last_ts = 0;
    bool first = true;
    for (const obs::TraceEvent& e : events) {
      if (e.ph == 'X') continue;  // cross-thread spans carry their own start
      CHECK_MSG(first || e.ts_ns >= last_ts,
                "tid %d: non-monotone ts for %s", tid, e.name);
      first = false;
      last_ts = e.ts_ns;
      if (e.ph == 'B') {
        stack.push_back(e.name);
        // Per-level sweep spans reuse the region name with the level index
        // as the argument (the arg-less span of the same name is the region
        // envelope).
        if ((std::strcmp(e.name, "fwd") == 0 ||
             std::strcmp(e.name, "bwd") == 0) &&
            e.arg != kInvalidIndex) {
          saw_level_span = true;
        }
        if (std::strcmp(e.name, "pcg_iter") == 0) saw_iter_span = true;
      } else if (e.ph == 'E') {
        CHECK_MSG(!stack.empty(), "tid %d: E(%s) without B", tid, e.name);
        if (!stack.empty()) {
          CHECK_MSG(std::strcmp(stack.back(), e.name) == 0,
                    "tid %d: E(%s) closes B(%s)", tid, e.name, stack.back());
          stack.pop_back();
        }
      }
    }
    CHECK_MSG(stack.empty(), "tid %d: %zu unbalanced B events", tid,
              stack.size());
  }
  CHECK_MSG(saw_level_span, "no per-level sweep spans recorded");
  CHECK_MSG(saw_iter_span, "no Krylov iteration spans recorded");

  std::ostringstream os;
  ts.write_chrome_json(os);
  const std::string json = os.str();
  CHECK_MSG(json.find("\"traceEvents\"") != std::string::npos,
            "chrome export missing traceEvents");
  // Structural smoke parse: brackets and braces must balance.
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  CHECK_MSG(braces == 0 && brackets == 0,
            "chrome export unbalanced: braces %ld brackets %ld", braces,
            brackets);
  ts.clear();
}

// --- (c) counter accounting identities -----------------------------------

void check_counter_identities(const CsrMatrix& a, ExecBackend be, int t) {
  ThreadCountGuard guard(t);
  const char* bname = be == ExecBackend::kP2P ? "p2p" : "barrier";
  obs::ExecObs eo;
  IluOptions iopts = base_opts(be, t);
  iopts.exec_obs = &eo;
  Factorization f = ilu_factor(a, iopts);
  eo.reset();  // keep the sweep arithmetic below to the applies

  const auto r = random_vector(a.rows(), 0xB00);
  std::vector<value_t> z(r.size());
  SolveWorkspace ws;
  constexpr int kSweeps = 3;
  for (int i = 0; i < kSweeps; ++i) ilu_apply(f, r, z, ws);

  for (const obs::Region reg :
       {obs::Region::kForward, obs::Region::kBackward}) {
    const obs::ExecStats& st = eo.stats(reg);
    const char* rname = obs::region_name(reg);
    CHECK_MSG(st.sweeps == static_cast<std::uint64_t>(kSweeps),
              "%s %s t=%d sweeps %llu", bname, rname, t,
              static_cast<unsigned long long>(st.sweeps));
    const obs::WaitCounters& c = st.total;
    CHECK_MSG(c.waits == c.waits_immediate + c.waits_stalled,
              "%s %s t=%d waits identity", bname, rname, t);
    CHECK_MSG(c.spins >= c.waits_stalled, "%s %s t=%d spins vs stalled",
              bname, rname, t);
    CHECK_MSG(c.yields <= c.spins, "%s %s t=%d yields vs spins", bname, rname,
              t);
    CHECK_MSG(c.busy_ns > 0, "%s %s t=%d zero busy time", bname, rname, t);
    CHECK_MSG(st.wall_ns > 0, "%s %s t=%d zero wall time", bname, rname, t);

    // Per-thread slots merge to the total, field by field.
    obs::WaitCounters sum;
    for (const obs::WaitCounters& pc : st.per_thread) sum.merge(pc);
    CHECK_MSG(sum.waits == c.waits && sum.spins == c.spins &&
                  sum.busy_ns == c.busy_ns && sum.wait_ns == c.wait_ns &&
                  sum.barrier_ns == c.barrier_ns &&
                  sum.barrier_waits == c.barrier_waits,
              "%s %s t=%d per-thread sum != total", bname, rname, t);

    const ExecSchedule& s =
        reg == obs::Region::kForward ? f.fwd : f.bwd;
    CHECK_MSG(st.levels == s.num_levels, "%s %s t=%d levels", bname, rname, t);
    if (t == 1) {
      // Serial dispatch: no synchronization of either kind.
      CHECK_MSG(c.waits == 0 && c.barrier_waits == 0,
                "%s %s t=1 sync counters nonzero", bname, rname);
    } else if (be == ExecBackend::kP2P) {
      // One wait_for call per stored (pruned) dependency, per sweep.
      CHECK_MSG(c.waits == static_cast<std::uint64_t>(kSweeps) *
                               static_cast<std::uint64_t>(s.deps_kept),
                "%s %s t=%d waits %llu != sweeps*deps_kept %llu", bname,
                rname, t, static_cast<unsigned long long>(c.waits),
                static_cast<unsigned long long>(kSweeps) *
                    static_cast<unsigned long long>(s.deps_kept));
      CHECK_MSG(c.barrier_waits == 0, "%s %s t=%d p2p barrier_waits", bname,
                rname, t);
    } else {
      // Every thread crosses every level barrier, every sweep.
      CHECK_MSG(c.barrier_waits == static_cast<std::uint64_t>(kSweeps) *
                                       static_cast<std::uint64_t>(t) *
                                       static_cast<std::uint64_t>(s.num_levels),
                "%s %s t=%d barrier_waits %llu != sweeps*t*levels", bname,
                rname, t, static_cast<unsigned long long>(c.barrier_waits));
      CHECK_MSG(c.waits == 0, "%s %s t=%d barrier-path waits", bname, rname,
                t);
    }

    // Per-level attribution covers every level and accounts the rows.
    CHECK_MSG(st.level_rows.size() == static_cast<std::size_t>(s.num_levels),
              "%s %s t=%d level_rows size", bname, rname, t);
    std::uint64_t rows = 0;
    for (index_t lr : st.level_rows) rows += static_cast<std::uint64_t>(lr);
    CHECK_MSG(rows == static_cast<std::uint64_t>(s.num_rows()),
              "%s %s t=%d level_rows sum", bname, rname, t);
    CHECK_MSG(st.critical_path_ns <= st.wall_ns * static_cast<std::uint64_t>(
                                                      std::max(1, t)),
              "%s %s t=%d critical path exceeds t*wall", bname, rname, t);
  }
}

// --- (d) deterministic metrics -------------------------------------------

void check_metrics_determinism(const CsrMatrix& a) {
  // Merge-order invariance on synthetic registries.
  obs::MetricsRegistry r1, r2, r3;
  r1.add("x", 3);
  r1.record("h", 0);
  r1.record("h", 7);
  r2.add("x", 5);
  r2.add("y", 1);
  r2.record("h", 1u << 20);
  r3.record("g", 42);
  obs::MetricsRegistry ab, ba;
  ab.merge(r1);
  ab.merge(r2);
  ab.merge(r3);
  ba.merge(r3);
  ba.merge(r2);
  ba.merge(r1);
  CHECK_MSG(ab == ba, "registry merge is order-dependent");
  CHECK(ab.counters().at("x") == 8);
  CHECK(ab.histograms().at("h").total() == 3);

  // Log2 bucket arithmetic.
  obs::FixedHistogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  CHECK(h.count(0) == 1 && h.count(1) == 1 && h.count(2) == 2);
  CHECK(obs::FixedHistogram::bucket_of(~std::uint64_t{0}) ==
        obs::FixedHistogram::kBuckets - 1);

  // Exported metrics: identical key sets and identical schedule-shape
  // histograms across thread counts (the timing counters differ, the
  // structure must not), and the deterministic counters repeat exactly.
  const auto run_metrics = [&](int t) {
    ThreadCountGuard guard(t);
    obs::ExecObs eo;
    IluOptions iopts = base_opts(ExecBackend::kP2P, t);
    iopts.exec_obs = &eo;
    Factorization f = ilu_factor(a, iopts);
    eo.reset();
    const auto r = random_vector(a.rows(), 0xD1CE);
    std::vector<value_t> z(r.size());
    SolveWorkspace ws;
    ilu_apply(f, r, z, ws);
    obs::MetricsRegistry reg;
    eo.export_metrics(reg);
    return reg;
  };
  const obs::MetricsRegistry m2 = run_metrics(2);
  const obs::MetricsRegistry m4 = run_metrics(4);
  const obs::MetricsRegistry m4b = run_metrics(4);

  std::set<std::string> k2, k4;
  for (const auto& [name, v] : m2.counters()) k2.insert(name);
  for (const auto& [name, v] : m4.counters()) k4.insert(name);
  CHECK_MSG(k2 == k4, "metric key sets differ across thread counts");
  CHECK_MSG(m2.histograms().at("exec.fwd.rows_per_level") ==
                m4.histograms().at("exec.fwd.rows_per_level"),
            "rows_per_level differs across thread counts");
  // Deterministic counters repeat bit-for-bit between identical runs.
  for (const char* key : {"exec.fwd.waits", "exec.fwd.sweeps",
                          "exec.bwd.waits", "exec.bwd.sweeps"}) {
    CHECK_MSG(m4.counters().at(key) == m4b.counters().at(key),
              "counter %s not deterministic", key);
  }

  std::ostringstream os;
  m4.export_json(os);
  CHECK_MSG(os.str().find("\"counters\"") != std::string::npos,
            "metrics export missing counters object");
}

}  // namespace

int main() {
  const CsrMatrix a = test_matrix();
  for (const ExecBackend be : {ExecBackend::kP2P, ExecBackend::kBarrier}) {
    for (const int t : {1, 2, 4, 8}) {
      check_parity(a, be, t);
      check_counter_identities(a, be, t);
    }
  }
  check_trace_stream();
  check_metrics_determinism(a);
  return javelin::test::finish("test_obs");
}
