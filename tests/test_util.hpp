// Minimal check/report harness for the ctest-registered property tests: no
// external framework in the container, so tests are plain executables whose
// exit code is the failure count.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "javelin/support/types.hpp"

namespace javelin::test {

/// Deterministic uniform(-1, 1) vector shared by the solver-class tests.
inline std::vector<value_t> random_vector(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

inline int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);       \
      ++::javelin::test::failures;                                      \
    }                                                                   \
  } while (0)

#define CHECK_MSG(cond, ...)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::printf("FAIL %s:%d: %s (", __FILE__, __LINE__, #cond);       \
      std::printf(__VA_ARGS__);                                         \
      std::printf(")\n");                                               \
      ++::javelin::test::failures;                                      \
    }                                                                   \
  } while (0)

/// Exact (bitwise) equality of two value sequences; reports the first
/// mismatch location and magnitude.
inline bool bitwise_equal(std::span<const value_t> a,
                          std::span<const value_t> b) {
  if (a.size() != b.size()) {
    std::printf("  size mismatch: %zu vs %zu\n", a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::printf("  first mismatch at %zu: %.17g vs %.17g (diff %.3g)\n", i,
                  a[i], b[i], std::abs(a[i] - b[i]));
      return false;
    }
  }
  return true;
}

inline value_t max_abs_diff(std::span<const value_t> a,
                            std::span<const value_t> b) {
  value_t d = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

inline int finish(const char* name) {
  if (failures == 0) {
    std::printf("PASS %s\n", name);
  } else {
    std::printf("%d FAILURE(S) in %s\n", failures, name);
  }
  return failures;
}

}  // namespace javelin::test
