// End-to-end Krylov convergence on suite-class matrices: PCG on SPD, right-
// preconditioned GMRES(m) on unsymmetric, both with and without the Javelin
// ILU preconditioner. Residuals are re-verified from scratch — the solver's
// own bookkeeping is not trusted.
#include <cmath>

#include "javelin/gen/generators.hpp"
#include "javelin/solver/krylov.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;
using javelin::test::random_vector;

namespace {

double true_relative_residual(const CsrMatrix& a, std::span<const value_t> b,
                              std::span<const value_t> x) {
  std::vector<value_t> r(b.size());
  spmv_serial(a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r) / norm2(b);
}

}  // namespace

int main() {
  ThreadCountGuard guard(2);
  SolverOptions sopts;
  sopts.max_iterations = 1200;
  sopts.tolerance = 1e-9;

  // --- PCG on SPD ----------------------------------------------------------
  {
    CsrMatrix a = gen::laplacian2d(40, 40, 5);
    const auto b = random_vector(a.rows(), 0x11);

    IluOptions iopts;
    iopts.num_threads = 2;
    IluPreconditioner m(a, iopts);

    std::vector<value_t> x(b.size(), 0);
    const SolverResult plain = pcg(a, b, x, identity_preconditioner(), sopts);
    CHECK_MSG(plain.converged, "plain CG rel res %.3g after %d iters",
              plain.relative_residual, plain.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-7);

    std::fill(x.begin(), x.end(), 0);
    const SolverResult pre = pcg(a, b, x, m.fn(), sopts);
    CHECK_MSG(pre.converged, "ILU-PCG rel res %.3g after %d iters",
              pre.relative_residual, pre.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-7);
    CHECK_MSG(pre.iterations < plain.iterations,
              "ILU-PCG %d iters vs plain %d", pre.iterations,
              plain.iterations);
  }

  // --- GMRES(m) on an unsymmetric circuit matrix ---------------------------
  {
    CsrMatrix a = gen::circuit(1500, 6.0, 0x77, /*symmetric_pattern=*/false, 10);
    const auto b = random_vector(a.rows(), 0x22);

    IluOptions iopts;
    iopts.num_threads = 2;
    IluPreconditioner m(a, iopts);

    std::vector<value_t> x(b.size(), 0);
    const SolverResult pre = gmres(a, b, x, m.fn(), sopts);
    CHECK_MSG(pre.converged, "ILU-GMRES rel res %.3g after %d iters",
              pre.relative_residual, pre.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-7);

    std::fill(x.begin(), x.end(), 0);
    const SolverResult plain =
        gmres(a, b, x, identity_preconditioner(), sopts);
    if (plain.converged) {
      CHECK_MSG(pre.iterations <= plain.iterations,
                "ILU-GMRES %d iters vs plain %d", pre.iterations,
                plain.iterations);
    }
  }

  // --- GMRES on a power-system matrix (dense rows, unsym pattern) ----------
  {
    CsrMatrix a = gen::power_system(1200, 24, 70, 0x33);
    const auto b = random_vector(a.rows(), 0x44);
    IluOptions iopts;
    iopts.num_threads = 2;
    IluPreconditioner m(a, iopts);
    std::vector<value_t> x(b.size(), 0);
    const SolverResult res = gmres(a, b, x, m.fn(), sopts);
    CHECK_MSG(res.converged, "power ILU-GMRES rel res %.3g after %d iters",
              res.relative_residual, res.iterations);
    CHECK(true_relative_residual(a, b, x) < 1e-7);
  }

  // --- GMRES happy breakdown: exact Krylov-space termination mid-restart --
  {
    // 4-cycle permutation matrix: A e_i = e_{i+1 mod 4}. With b = e_0 the
    // Arnoldi vectors are exactly e_0, e_1, e_2, e_3; at step j = 3 (well
    // inside the restart window) orthogonalization cancels EXACTLY, so
    // hnext == 0 — the engineered happy breakdown. The inner loop must stop
    // after applying the rotation (v[4] was never written) and
    // back-substitute the exact solution x = e_3 from the 4 columns.
    CsrMatrix cyc(4, 4, {0, 1, 2, 3, 4}, {3, 0, 1, 2}, {1, 1, 1, 1});
    std::vector<value_t> b(4, 0), x(4, 0);
    b[0] = 1;
    const SolverResult res =
        gmres(cyc, b, x, identity_preconditioner(), sopts);
    CHECK_MSG(res.converged && res.iterations == 4,
              "happy breakdown converged=%d iters=%d rel=%.3g", res.converged,
              res.iterations, res.relative_residual);
    CHECK(true_relative_residual(cyc, b, x) < 1e-14);
    std::vector<value_t> expect(4, 0);
    expect[3] = 1;
    CHECK_MSG(javelin::test::max_abs_diff(x, expect) < 1e-14,
              "happy breakdown x diff %.3g",
              javelin::test::max_abs_diff(x, expect));
  }

  // --- PCG breakdown on non-SPD input must report an honest residual ------
  {
    // Indefinite diagonal: the search direction hits p^T A p == 0 at the
    // second iteration; the solver must return the TRUE residual of the
    // iterate it actually produced instead of a stale recurrence value.
    CsrMatrix ind(2, 2, {0, 1, 2}, {0, 1}, {1, -1});
    std::vector<value_t> b = {1, 1};
    std::vector<value_t> x(2, 0);
    const SolverResult res = pcg(ind, b, x, identity_preconditioner(), sopts);
    CHECK_MSG(!res.converged, "indefinite PCG claimed convergence");
    std::vector<value_t> r(2);
    spmv_serial(ind, x, r);
    for (std::size_t i = 0; i < 2; ++i) r[i] = b[i] - r[i];
    const double true_rel = norm2(r) / norm2(std::span<const value_t>(b));
    CHECK_MSG(std::abs(res.relative_residual - true_rel) < 1e-15,
              "breakdown residual %.17g vs true %.17g", res.relative_residual,
              true_rel);
  }

  // --- PCG rz == 0 breakdown must exit honestly, not poison x with NaN ----
  {
    // With M = A = diag(1, -1) (ILU is exact on a diagonal), z = M^{-1} r
    // is exactly orthogonal to r for b = (1, 1): rz == 0 at the first
    // iteration. Without the guard the next beta would be 0/0 = NaN.
    CsrMatrix ind(2, 2, {0, 1, 2}, {0, 1}, {1, -1});
    std::vector<value_t> b = {1, 1};
    std::vector<value_t> x(2, 0);
    IluPreconditioner m(ind, {});
    const SolverResult res = pcg(ind, b, x, m.fn(), sopts);
    CHECK_MSG(!res.converged, "rz breakdown claimed convergence");
    CHECK_MSG(std::isfinite(res.relative_residual) &&
                  std::isfinite(x[0]) && std::isfinite(x[1]),
              "rz breakdown left NaN: rel=%.3g x=(%.3g, %.3g)",
              res.relative_residual, x[0], x[1]);
  }

  // --- warm start: an already-solved system must report convergence --------
  {
    CsrMatrix a = gen::laplacian2d(25, 25, 5);
    const auto b = random_vector(a.rows(), 0x66);
    std::vector<value_t> x(b.size(), 0);
    CHECK(pcg(a, b, x, identity_preconditioner(), sopts).converged);
    const SolverResult warm = pcg(a, b, x, identity_preconditioner(), sopts);
    CHECK_MSG(warm.converged && warm.iterations == 0,
              "warm PCG converged=%d iters=%d", warm.converged,
              warm.iterations);
    const SolverResult warm_g =
        gmres(a, b, x, identity_preconditioner(), sopts);
    CHECK_MSG(warm_g.converged && warm_g.iterations == 0,
              "warm GMRES converged=%d iters=%d", warm_g.converged,
              warm_g.iterations);
  }

  // --- refactor-then-resolve (the time-stepping loop) ----------------------
  {
    CsrMatrix a = gen::laplacian2d(30, 30, 5);
    IluOptions iopts;
    iopts.num_threads = 2;
    IluPreconditioner m(a, iopts);
    const auto b = random_vector(a.rows(), 0x55);
    std::vector<value_t> x(b.size(), 0);
    CHECK(pcg(a, b, x, m.fn(), sopts).converged);

    // Perturb values (same pattern), refactor in place, solve again.
    CsrMatrix a2 = a;
    for (auto& v : a2.values_mut()) v *= 1.25;
    ilu_refactor(m.factorization(), a2);
    std::fill(x.begin(), x.end(), 0);
    const SolverResult res = pcg(a2, b, x, m.fn(), sopts);
    CHECK_MSG(res.converged, "post-refactor PCG rel res %.3g",
              res.relative_residual);
    CHECK(true_relative_residual(a2, b, x) < 1e-7);
  }

  return javelin::test::finish("test_solver");
}
