// SpGEMM and transpose against dense references: random and structured
// matrices, rectangular shapes, empty rows, unsorted column input, and
// bitwise serial-vs-parallel parity (same discipline as test_factor_parity).
#include <algorithm>
#include <random>

#include "javelin/gen/generators.hpp"
#include "javelin/sparse/ops.hpp"
#include "javelin/support/parallel.hpp"
#include "test_util.hpp"

using namespace javelin;

namespace {

/// Random rectangular CSR with ~density fill; some rows intentionally empty.
CsrMatrix random_rect(index_t rows, index_t cols, double density,
                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<value_t> val(-2.0, 2.0);
  std::vector<index_t> rp(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> ci;
  std::vector<value_t> vv;
  for (index_t r = 0; r < rows; ++r) {
    const bool empty_row = coin(rng) < 0.15;  // exercise empty rows
    if (!empty_row) {
      for (index_t c = 0; c < cols; ++c) {
        if (coin(rng) < density) {
          ci.push_back(c);
          vv.push_back(val(rng));
        }
      }
    }
    rp[static_cast<std::size_t>(r) + 1] = static_cast<index_t>(ci.size());
  }
  return CsrMatrix(rows, cols, std::move(rp), std::move(ci), std::move(vv));
}

/// Deterministically shuffle each row's (col, val) pairs — spgemm and
/// transpose must accept unsorted input rows.
CsrMatrix shuffle_rows(const CsrMatrix& a, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<index_t> rp(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<index_t> ci(a.col_idx().begin(), a.col_idx().end());
  std::vector<value_t> vv(a.values().begin(), a.values().end());
  for (index_t r = 0; r < a.rows(); ++r) {
    const std::size_t lo = static_cast<std::size_t>(a.row_begin(r));
    const std::size_t hi = static_cast<std::size_t>(a.row_end(r));
    for (std::size_t i = hi; i > lo + 1; --i) {
      const std::size_t j = lo + rng() % (i - lo);
      std::swap(ci[i - 1], ci[j]);
      std::swap(vv[i - 1], vv[j]);
    }
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(rp), std::move(ci),
                   std::move(vv));
}

void check_transpose(const CsrMatrix& a) {
  const CsrMatrix at = transpose(a);
  CHECK(at.rows() == a.cols() && at.cols() == a.rows());
  CHECK(at.nnz() == a.nnz());
  CHECK(at.rows_sorted_and_unique());

  // Dense cross-check.
  const auto da = to_dense(a);
  const auto dat = to_dense(at);
  bool ok = true;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t c = 0; c < a.cols(); ++c) {
      ok = ok && da[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.cols()) +
                    static_cast<std::size_t>(c)] ==
                     dat[static_cast<std::size_t>(c) * static_cast<std::size_t>(at.cols()) +
                         static_cast<std::size_t>(r)];
    }
  }
  CHECK(ok);

  // Involution (requires sorted input for exact layout equality).
  if (a.rows_sorted_and_unique()) {
    CHECK(transpose(at) == a);
  }
}

void check_spgemm_dense(const CsrMatrix& a, const CsrMatrix& b) {
  const CsrMatrix c = spgemm(a, b);
  CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  CHECK(c.rows_sorted_and_unique());

  // dense_matmul accumulates per output entry in the SAME A-row-major,
  // B-row-major order spgemm does, so stored products agree bitwise.
  const auto ref = dense_matmul(a, b);
  const auto dc = to_dense(c);
  CHECK(dc.size() == ref.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (dc[i] != ref[i]) ++mismatches;
  }
  CHECK_MSG(mismatches == 0, "%zu dense mismatches", mismatches);
}

/// Outputs must be bitwise identical at every thread count.
void check_thread_parity(const CsrMatrix& a, const CsrMatrix& b) {
  CsrMatrix c1, t1;
  {
    ThreadCountGuard g(1);
    c1 = spgemm(a, b);
    t1 = transpose(a);
  }
  for (int threads : {2, 3, 8}) {
    ThreadCountGuard g(threads);
    const CsrMatrix c = spgemm(a, b);
    const CsrMatrix t = transpose(a);
    CHECK_MSG(c == c1, "spgemm differs at %d threads", threads);
    CHECK_MSG(t == t1, "transpose differs at %d threads", threads);
  }
}

/// Plain serial counting transpose, independent of the library path, for
/// validating the chunked parallel variant on inputs big enough to take it.
CsrMatrix reference_transpose(const CsrMatrix& a) {
  std::vector<index_t> rp(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (index_t c : a.col_idx()) ++rp[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < rp.size(); ++i) rp[i] += rp[i - 1];
  std::vector<index_t> cursor(rp.begin(), rp.end() - 1);
  std::vector<index_t> ci(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vv(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    for (index_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_idx()[static_cast<std::size_t>(k)];
      const index_t pos = cursor[static_cast<std::size_t>(c)]++;
      ci[static_cast<std::size_t>(pos)] = r;
      vv[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
    }
  }
  return CsrMatrix(a.cols(), a.rows(), std::move(rp), std::move(ci),
                   std::move(vv));
}

}  // namespace

int main() {
  ThreadCountGuard guard(4);

  // Structured square: 2-D grid times itself and times its transpose.
  {
    CsrMatrix g = gen::laplacian2d(17, 13, 9);
    check_transpose(g);
    check_spgemm_dense(g, g);
    check_thread_parity(g, g);
  }

  // Random rectangular chain: (40×70)·(70×55), empty rows on both sides.
  {
    CsrMatrix a = random_rect(40, 70, 0.12, 0xA11CE);
    CsrMatrix b = random_rect(70, 55, 0.10, 0xB0B);
    check_transpose(a);
    check_transpose(b);
    check_spgemm_dense(a, b);
    check_thread_parity(a, b);

    // Unsorted input rows: same dense product (dense_matmul walks storage
    // order too, so even the accumulation order matches).
    CsrMatrix au = shuffle_rows(a, 0x5EED);
    CsrMatrix bu = shuffle_rows(b, 0xFEED);
    check_transpose(au);
    check_spgemm_dense(au, bu);
    const CsrMatrix cu = spgemm(au, bu);
    CHECK(cu.rows_sorted_and_unique());
  }

  // Unsymmetric suite-class matrix against its transpose (A·Aᵀ pattern).
  {
    CsrMatrix a = gen::circuit(500, 5.0, 99, /*symmetric_pattern=*/false, 4);
    const CsrMatrix at = transpose(a);
    check_transpose(a);
    check_spgemm_dense(a, at);
    check_thread_parity(a, at);
  }

  // Galerkin triple product R·A·P against the dense reference (the AMG
  // setup path): P is a tall-thin aggregation-like matrix.
  {
    CsrMatrix a = gen::laplacian2d(12, 12, 5);
    CsrMatrix p = random_rect(144, 30, 0.05, 0x77);
    const CsrMatrix r = transpose(p);
    const CsrMatrix ap = spgemm(a, p);
    const CsrMatrix rap = spgemm(r, ap);
    CHECK(rap.rows() == 30 && rap.cols() == 30);
    check_spgemm_dense(r, ap);  // second hop vs dense, bitwise
    // Full chain with tolerance (different association than dense·dense).
    const auto dr = to_dense(r);
    const auto dap = to_dense(ap);
    const auto drap = to_dense(rap);
    for (index_t i = 0; i < 30; ++i) {
      for (index_t j = 0; j < 30; ++j) {
        value_t s = 0;
        for (index_t k = 0; k < 144; ++k) {
          s += dr[static_cast<std::size_t>(i) * 144 + static_cast<std::size_t>(k)] *
               dap[static_cast<std::size_t>(k) * 30 + static_cast<std::size_t>(j)];
        }
        const value_t got =
            drap[static_cast<std::size_t>(i) * 30 + static_cast<std::size_t>(j)];
        CHECK_MSG(std::abs(got - s) < 1e-10, "RAP(%d,%d) %.17g vs %.17g", i, j,
                  got, s);
      }
    }
  }

  // Large structured case: nnz well past the serial-fallback cutoff, so the
  // chunked parallel transpose actually runs. Too big for dense references;
  // validated against an independent serial transpose plus symmetry of A².
  {
    CsrMatrix g3 = gen::laplacian3d(20, 20, 20, 7);
    CHECK(g3.nnz() > (1 << 15));
    const CsrMatrix ref = reference_transpose(g3);
    for (int threads : {1, 2, 4, 8}) {
      ThreadCountGuard g(threads);
      CHECK_MSG(transpose(g3) == ref, "big transpose differs at %d threads",
                threads);
    }
    const CsrMatrix sq1 = [&] {
      ThreadCountGuard g(1);
      return spgemm(g3, g3);
    }();
    CHECK(pattern_symmetric(sq1));
    CHECK(max_abs_difference(sq1, transpose(sq1)) == 0);
    for (int threads : {2, 8}) {
      ThreadCountGuard g(threads);
      CHECK_MSG(spgemm(g3, g3) == sq1, "big spgemm differs at %d threads",
                threads);
    }
  }

  // Degenerate shapes.
  {
    const CsrMatrix z = CsrMatrix::zeros(6, 4);
    const CsrMatrix zt = transpose(z);
    CHECK(zt.rows() == 4 && zt.cols() == 6 && zt.nnz() == 0);
    const CsrMatrix zz = spgemm(z, CsrMatrix::zeros(4, 3));
    CHECK(zz.rows() == 6 && zz.cols() == 3 && zz.nnz() == 0);

    const CsrMatrix i5 = CsrMatrix::identity(5);
    CHECK(transpose(i5) == i5);
    CHECK(spgemm(i5, i5) == i5);
    CsrMatrix a = random_rect(5, 5, 0.4, 0x123);
    CHECK(spgemm(i5, a) == a);
    CHECK(spgemm(a, i5) == a);
  }

  return javelin::test::finish("test_ops");
}
